//! A zero-dependency JSON value, encoder, and decoder.
//!
//! The registry is unreachable in this build environment, so the wire
//! format is handled by ~300 lines of std-only code instead of serde.
//! The surface is deliberately small: one [`Json`] tree type, a strict
//! parser ([`Json::parse`]) with a recursion-depth cap (the server
//! feeds it network input), and a compact serializer
//! ([`Json::encode`]). Numbers are `f64`; integers round-trip exactly
//! up to 2⁵³, far beyond any engine counter a deployment reaches
//! (§PROTOCOL.md documents the limit).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts. Request bodies are flat
/// (depth ≤ 3); the cap exists so hostile input cannot overflow the
/// stack of a worker thread.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap), making encoding
    /// deterministic — handy for tests and cache keys.
    Obj(BTreeMap<String, Json>),
}

/// A JSON syntax or shape error, with a byte offset for syntax errors.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where parsing failed (0 for shape
    /// errors raised after parsing).
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(message: impl Into<String>, offset: usize) -> Result<T, JsonError> {
    Err(JsonError {
        message: message.into(),
        offset,
    })
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number from a `u64` counter (exact up to 2⁵³; engine counters
    /// never get near that).
    pub fn u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// A number from a `usize`.
    pub fn usize(v: usize) -> Json {
        Json::Num(v as f64)
    }

    // --- readers ---------------------------------------------------------

    /// Member of an object, if this is an object holding `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// This value as a non-negative integer (rejects fractional and
    /// negative numbers rather than truncating them silently).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 9_007_199_254_740_992.0 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    // --- encoding --------------------------------------------------------

    /// Serializes to compact JSON (no whitespace, keys in sorted order).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => encode_number(*v, out),
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    // --- decoding --------------------------------------------------------

    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return err("trailing characters after JSON value", pos);
        }
        Ok(value)
    }
}

fn encode_number(v: f64, out: &mut String) {
    if !v.is_finite() {
        // JSON has no NaN/Inf; `null` is the least-surprising encoding
        // (estimates are documented finite, so this is belt-and-braces).
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return err("nesting too deep", *pos);
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => err("unexpected end of input", *pos),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return err("expected ',' or ']' in array", *pos),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return err("expected ':' after object key", *pos);
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return err("expected ',' or '}' in object", *pos),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&c) => err(format!("unexpected byte {:#04x}", c), *pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        err(format!("expected '{literal}'"), *pos)
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    match text.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(Json::Num(v)),
        _ => err(format!("invalid number '{text}'"), start),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return err("expected string", *pos);
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return err("unterminated string", *pos),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok());
                        let Some(code) = hex else {
                            return err("bad \\u escape", *pos);
                        };
                        // Surrogate pairs: decode \uD800-\uDBFF followed
                        // by \uDC00-\uDFFF; lone surrogates are errors.
                        *pos += 4;
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                return err("lone high surrogate", *pos);
                            }
                            let low = bytes
                                .get(*pos + 3..*pos + 7)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(low) = low.filter(|l| (0xDC00..0xE000).contains(l)) else {
                                return err("bad low surrogate", *pos);
                            };
                            *pos += 6;
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        } else if (0xDC00..0xE000).contains(&code) {
                            return err("lone low surrogate", *pos);
                        } else {
                            code
                        };
                        match char::from_u32(c) {
                            Some(c) => out.push(c),
                            None => return err("invalid \\u code point", *pos),
                        }
                    }
                    _ => return err("unknown escape", *pos),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => return err("raw control character in string", *pos),
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so the
                // encoding is already valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).expect("input was a &str");
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::Num(0.0)),
            ("-17", Json::Num(-17.0)),
            ("3.25", Json::Num(3.25)),
            ("1e3", Json::Num(1000.0)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(text).unwrap(), value, "{text}");
        }
        assert_eq!(
            Json::parse("  [1, 2]  ").unwrap().as_arr().unwrap().len(),
            2
        );
    }

    #[test]
    fn object_roundtrip_is_deterministic() {
        let v = Json::obj([
            ("tau", Json::Num(0.8)),
            ("id", Json::u64(42)),
            ("tag", Json::str("a\"b\\c\nd")),
            ("arr", Json::Arr(vec![Json::Null, Json::Bool(true)])),
        ]);
        let text = v.encode();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Keys are sorted → stable bytes.
        assert_eq!(text, Json::parse(&text).unwrap().encode());
    }

    #[test]
    fn integers_are_exact_and_safe() {
        let v = Json::u64(9_007_199_254_740_992); // 2^53
        assert_eq!(Json::parse(&v.encode()).unwrap().as_u64(), Some(1 << 53));
        assert_eq!(Json::Num(1.5).as_u64(), None, "fractional is not a u64");
        assert_eq!(Json::Num(-1.0).as_u64(), None, "negative is not a u64");
    }

    #[test]
    fn escapes_and_unicode() {
        let parsed = Json::parse(r#""a\u00e9\t\ud83d\ude00z""#).unwrap();
        assert_eq!(parsed.as_str().unwrap(), "aé\t😀z");
        let tricky = Json::str("line\nbreak \u{1} €");
        assert_eq!(Json::parse(&tricky.encode()).unwrap(), tricky);
    }

    #[test]
    fn malformed_inputs_fail_cleanly() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "\"unterminated",
            "tru",
            "1.2.3",
            "[1] trailing",
            "\"\\ud800\"",
            "{\"a\" 1}",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn depth_cap_stops_hostile_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(Json::parse(&ok).is_ok());
    }
}
