//! A blocking client for the `vsj-server` wire protocol — what the
//! examples, tests, and CI smoke job speak. One client holds one
//! keep-alive connection; it is `Send` but not `Sync` (clone the
//! address and connect per thread for concurrent load).

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use vsj_vector::SparseVector;

use crate::http::{self, ReadError, Response};
use crate::json::Json;

/// Largest response body the client accepts.
const MAX_RESPONSE: usize = 4 << 20;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server shed the request (`429`); retry after the hint.
    Overloaded {
        /// Server-provided retry hint.
        retry_after: Duration,
        /// The server's explanation.
        message: String,
    },
    /// The estimate missed its deadline (`504`).
    DeadlineExceeded,
    /// Any other non-`200` answer.
    Status {
        /// HTTP status code.
        status: u16,
        /// The server's `error` message (or raw body).
        message: String,
    },
    /// The response was not parseable protocol JSON.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Overloaded {
                retry_after,
                message,
            } => write!(f, "shed by server (retry after {retry_after:?}): {message}"),
            Self::DeadlineExceeded => write!(f, "estimate deadline exceeded"),
            Self::Status { status, message } => write!(f, "server answered {status}: {message}"),
            Self::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// One served estimate, as decoded from the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimated {
    /// The join-size estimate Ĵ(τ).
    pub value: f64,
    /// Epoch of the snapshot it was computed on.
    pub epoch: u64,
    /// Live vectors in that snapshot.
    pub n: usize,
    /// The threshold asked for.
    pub tau: f64,
    /// Served from the engine's estimate cache.
    pub cached: bool,
    /// Shared sampling pass that served it: answers with equal `batch`
    /// ids were computed together (one pass, one epoch).
    pub batch: u64,
    /// Requests that rode in that pass.
    pub batch_size: usize,
    /// Standard error of the estimate — present only when the request
    /// asked for intervals ([`Client::estimate_with_ci`]).
    pub std_err: Option<f64>,
    /// ~95% confidence interval, low edge (requires `estimate_with_ci`).
    pub ci_low: Option<f64>,
    /// ~95% confidence interval, high edge (requires
    /// `estimate_with_ci`).
    pub ci_high: Option<f64>,
}

/// Blocking protocol client over one keep-alive connection.
///
/// Reconnects transparently if the server closed the connection between
/// requests (e.g. after an error response).
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    stream: Option<BufReader<TcpStream>>,
}

impl Client {
    /// Connects to a server (see [`Server::addr`](crate::Server::addr)).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Protocol("address resolved to nothing".into()))?;
        let mut client = Self { addr, stream: None };
        client.reconnect()?;
        Ok(client)
    }

    fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = TcpStream::connect_timeout(&self.addr, Duration::from_secs(5))?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
        self.stream = Some(BufReader::new(stream));
        Ok(())
    }

    /// One request/response exchange, reconnecting once if the
    /// keep-alive connection had gone away. **Only `idempotent`
    /// requests are resent** after a failure past the initial write:
    /// once the bytes may have reached the server, replaying an
    /// `insert`/`publish`/… would silently apply it twice (duplicate
    /// vector, extra epoch). Estimates are deterministic per
    /// `(epoch, τ)` and reads have no side effects, so those retry
    /// freely; for the rest the error is surfaced and the *next* call
    /// reconnects.
    fn exchange(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
        idempotent: bool,
    ) -> Result<Response, ClientError> {
        let encoded = body.map(Json::encode).unwrap_or_default();
        for attempt in 0..2 {
            if self.stream.is_none() {
                self.reconnect()?;
            }
            let reader = self.stream.as_mut().expect("just connected");
            let request = format!(
                "{method} {path} HTTP/1.1\r\nhost: vsj\r\ncontent-length: {}\r\ncontent-type: application/json\r\n\r\n{encoded}",
                encoded.len()
            );
            use std::io::Write;
            let sent = reader
                .get_ref()
                .try_clone()
                .and_then(|mut w| w.write_all(request.as_bytes()));
            let response = match sent {
                Ok(()) => http::read_response(reader, MAX_RESPONSE),
                Err(e) => Err(ReadError::Io(e)),
            };
            match response {
                Ok(response) => {
                    if response.wants_close() {
                        self.stream = None;
                    }
                    return Ok(response);
                }
                // A dead keep-alive connection surfaces as Closed/Io on
                // the first attempt; retry once on a fresh socket —
                // idempotent requests only (see above).
                Err(ReadError::Closed | ReadError::Io(_)) if attempt == 0 && idempotent => {
                    self.stream = None;
                }
                Err(ReadError::Closed) => {
                    self.stream = None;
                    return Err(ClientError::Protocol("server closed the connection".into()));
                }
                Err(ReadError::Io(e)) => {
                    self.stream = None;
                    return Err(ClientError::Io(e));
                }
                Err(e) => return Err(ClientError::Protocol(format!("{e:?}"))),
            }
        }
        unreachable!("second attempt returns")
    }

    /// A side-effect-free (or deterministically replayable) call:
    /// retried once on a dead keep-alive connection.
    fn call_idempotent(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<Json, ClientError> {
        self.call_inner(method, path, body, true)
    }

    /// A state-changing call: never auto-resent.
    fn call(&mut self, method: &str, path: &str, body: Option<&Json>) -> Result<Json, ClientError> {
        self.call_inner(method, path, body, false)
    }

    fn call_inner(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
        idempotent: bool,
    ) -> Result<Json, ClientError> {
        let response = self.exchange(method, path, body, idempotent)?;
        let text = std::str::from_utf8(&response.body)
            .map_err(|_| ClientError::Protocol("non-UTF-8 response body".into()))?;
        let json = Json::parse(text)
            .map_err(|e| ClientError::Protocol(format!("bad response JSON: {e}")))?;
        if response.status == 200 {
            return Ok(json);
        }
        let message = json
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or(text)
            .to_string();
        Err(match response.status {
            429 => ClientError::Overloaded {
                retry_after: response
                    .headers
                    .get("retry-after")
                    .and_then(|v| v.parse::<u64>().ok())
                    .map_or(Duration::from_secs(1), Duration::from_secs),
                message,
            },
            504 => ClientError::DeadlineExceeded,
            status => ClientError::Status { status, message },
        })
    }

    fn field_u64(json: &Json, field: &str) -> Result<u64, ClientError> {
        json.get(field)
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol(format!("response lacks {field}")))
    }

    fn field_bool(json: &Json, field: &str) -> Result<bool, ClientError> {
        json.get(field)
            .and_then(Json::as_bool)
            .ok_or_else(|| ClientError::Protocol(format!("response lacks {field}")))
    }

    // --- endpoints -------------------------------------------------------

    /// `POST /estimate` with the server's default deadline.
    pub fn estimate(&mut self, tau: f64) -> Result<Estimated, ClientError> {
        self.estimate_request(tau, None, false)
    }

    /// `POST /estimate` with an explicit deadline.
    pub fn estimate_within(
        &mut self,
        tau: f64,
        deadline: Duration,
    ) -> Result<Estimated, ClientError> {
        self.estimate_request(tau, Some(deadline), false)
    }

    /// `POST /estimate` asking for the interval fields: the returned
    /// [`Estimated`] carries `std_err`/`ci_low`/`ci_high` (a ~95%
    /// normal-approximation interval around the point estimate).
    pub fn estimate_with_ci(&mut self, tau: f64) -> Result<Estimated, ClientError> {
        self.estimate_request(tau, None, true)
    }

    fn estimate_request(
        &mut self,
        tau: f64,
        deadline: Option<Duration>,
        with_ci: bool,
    ) -> Result<Estimated, ClientError> {
        let mut body = vec![("tau", Json::Num(tau))];
        if let Some(deadline) = deadline {
            body.push(("deadline_ms", Json::u64(deadline.as_millis() as u64)));
        }
        if with_ci {
            body.push(("ci", Json::Bool(true)));
        }
        let body = Json::Obj(body.into_iter().map(|(k, v)| (k.to_string(), v)).collect());
        // Deterministic per (epoch, τ): safe to replay on a dead
        // keep-alive connection.
        let json = self.call_idempotent("POST", "/estimate", Some(&body))?;
        Ok(Estimated {
            value: json
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| ClientError::Protocol("response lacks value".into()))?,
            epoch: Self::field_u64(&json, "epoch")?,
            n: Self::field_u64(&json, "n")? as usize,
            tau: json.get("tau").and_then(Json::as_f64).unwrap_or(tau),
            cached: Self::field_bool(&json, "cached")?,
            batch: Self::field_u64(&json, "batch")?,
            batch_size: Self::field_u64(&json, "batch_size")? as usize,
            std_err: json.get("std_err").and_then(Json::as_f64),
            ci_low: json.get("ci_low").and_then(Json::as_f64),
            ci_high: json.get("ci_high").and_then(Json::as_f64),
        })
    }

    /// `POST /insert` of a binary vector; returns the assigned id.
    pub fn insert_members(&mut self, members: &[u32]) -> Result<u64, ClientError> {
        let body = Json::obj([(
            "members",
            Json::Arr(members.iter().map(|&m| Json::u64(m as u64)).collect()),
        )]);
        let json = self.call("POST", "/insert", Some(&body))?;
        Self::field_u64(&json, "id")
    }

    /// `POST /insert` of an arbitrary sparse vector.
    pub fn insert(&mut self, vector: &SparseVector) -> Result<u64, ClientError> {
        let body = vector_json(vector);
        let json = self.call("POST", "/insert", Some(&body))?;
        Self::field_u64(&json, "id")
    }

    /// `POST /remove`; `true` when the id was live.
    pub fn remove(&mut self, id: u64) -> Result<bool, ClientError> {
        let body = Json::obj([("id", Json::u64(id))]);
        let json = self.call("POST", "/remove", Some(&body))?;
        Self::field_bool(&json, "removed")
    }

    /// `POST /upsert`; `true` when an existing vector was replaced.
    pub fn upsert(&mut self, id: u64, vector: &SparseVector) -> Result<bool, ClientError> {
        let mut body = vector_json(vector);
        if let Json::Obj(map) = &mut body {
            map.insert("id".into(), Json::u64(id));
        }
        let json = self.call("POST", "/upsert", Some(&body))?;
        Self::field_bool(&json, "replaced")
    }

    /// `POST /publish`; returns the new epoch.
    pub fn publish(&mut self) -> Result<u64, ClientError> {
        let json = self.call("POST", "/publish", None)?;
        Self::field_u64(&json, "epoch")
    }

    /// `POST /checkpoint`; returns the checkpointed epoch (`409` →
    /// [`ClientError::Status`] when the engine is not durable).
    pub fn checkpoint(&mut self) -> Result<u64, ClientError> {
        let json = self.call("POST", "/checkpoint", None)?;
        Self::field_u64(&json, "epoch")
    }

    /// `POST /compact`; returns the cut epoch (`409` →
    /// [`ClientError::Status`] when the engine is not durable). On a
    /// mapped-tier engine this folds the overlay and tombstones into a
    /// fresh container; on the heap tier it degenerates to a
    /// checkpoint.
    pub fn compact(&mut self) -> Result<u64, ClientError> {
        let json = self.call("POST", "/compact", None)?;
        Self::field_u64(&json, "epoch")
    }

    /// `GET /stats`: the raw stats document (`engine` and `server`
    /// objects, see `docs/PROTOCOL.md`).
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.call_idempotent("GET", "/stats", None)
    }

    /// `GET /healthz`; returns the current epoch.
    pub fn health(&mut self) -> Result<u64, ClientError> {
        let json = self.call_idempotent("GET", "/healthz", None)?;
        Self::field_u64(&json, "epoch")
    }

    /// `GET /metrics`: the raw Prometheus text exposition (engine and
    /// server registries concatenated). Returned untouched so callers
    /// can feed it to a scraper or to
    /// [`vsj_obs::validate_exposition`].
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let response = self.exchange("GET", "/metrics", None, true)?;
        let text = String::from_utf8(response.body)
            .map_err(|_| ClientError::Protocol("non-UTF-8 metrics body".into()))?;
        if response.status != 200 {
            return Err(ClientError::Status {
                status: response.status,
                message: text,
            });
        }
        Ok(text)
    }

    /// `GET /trace/slow`: the slow-request trace ring (`threshold_us`,
    /// `captured`, and `traces` newest-first, each with a stage
    /// breakdown — see `docs/OBSERVABILITY.md`).
    pub fn slow_traces(&mut self) -> Result<Json, ClientError> {
        self.call_idempotent("GET", "/trace/slow", None)
    }

    /// `GET /quality`: the estimator-quality audit summary (CI-coverage
    /// counters, signed-relative-error summary, worst-calibrated ring —
    /// see `docs/OBSERVABILITY.md`).
    pub fn quality(&mut self) -> Result<Json, ClientError> {
        self.call_idempotent("GET", "/quality", None)
    }
}

/// The wire encoding of a vector: binary vectors travel as `members`
/// (compact), weighted ones as `indices` + `weights`.
fn vector_json(vector: &SparseVector) -> Json {
    if vector.is_binary() {
        Json::obj([(
            "members",
            Json::Arr(
                vector
                    .indices()
                    .iter()
                    .map(|&m| Json::u64(m as u64))
                    .collect(),
            ),
        )])
    } else {
        Json::obj([
            (
                "indices",
                Json::Arr(
                    vector
                        .indices()
                        .iter()
                        .map(|&m| Json::u64(m as u64))
                        .collect(),
                ),
            ),
            (
                "weights",
                Json::Arr(
                    vector
                        .values()
                        .iter()
                        .map(|&w| Json::Num(w as f64))
                        .collect(),
                ),
            ),
        ])
    }
}
