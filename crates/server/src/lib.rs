//! `vsj-server` — the network serving layer over
//! [`vsj_service::EstimationEngine`].
//!
//! PR 1–3 built a concurrent, durable, incrementally-publishing
//! estimation engine — but only as an in-process library. This crate
//! puts a wire in front of it: a small HTTP/1.1 JSON protocol
//! (`docs/PROTOCOL.md`) served entirely on `std::net` blocking sockets
//! (the build environment has no registry access, so no tokio/hyper —
//! a bounded thread-pool acceptor plus one dedicated batcher thread).
//!
//! ```text
//!   clients ──► acceptor ──► bounded conn queue ──► workers
//!                                                     │
//!                     ingests (shed 429 on publish lag)│estimates
//!                                                     ▼
//!                               batcher: coalesce concurrent requests
//!                               into ONE estimate_batch sampling pass
//! ```
//!
//! Three properties define the layer:
//!
//! * **Batching without bias** — concurrent `estimate` requests are
//!   coalesced onto one shared sampling pass
//!   ([`EstimationEngine::estimate_batch`]). The engine's batch RNG is
//!   keyed by the epoch alone, so each τ's answer is bit-identical
//!   whether it rode alone or with others: batching changes cost, never
//!   answers. One pass serves one epoch — the batcher can never mix
//!   epochs inside a pass, because the pass pins a single snapshot
//!   (cache-served answers keep the older epoch they were computed at).
//! * **Backpressure, not queues** — ingest requests are shed with `429`
//!   once the engine's publish lag crosses
//!   [`ServerConfig::max_publish_lag`], and estimate requests once the
//!   batch queue hits [`ServerConfig::max_queue_depth`]; the connection
//!   queue is bounded too. Nothing in the server grows without bound
//!   under overload (the I/O-efficient-join lesson: keep the hot path
//!   batch-friendly and refuse work you cannot finish).
//! * **Graceful shutdown** — [`Server::shutdown`] stops intake, drains
//!   queued connections and in-flight batches (every accepted request
//!   gets a real answer), and optionally cuts a final checkpoint on a
//!   durable engine.
//!
//! [`EstimationEngine::estimate_batch`]: vsj_service::EstimationEngine::estimate_batch
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use vsj_server::{Client, Server, ServerConfig};
//! use vsj_service::{EstimationEngine, ServiceConfig};
//!
//! let engine = Arc::new(EstimationEngine::new(
//!     ServiceConfig::builder().shards(2).k(8).seed(42).build(),
//! ));
//! let server = Server::start(engine, ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(server.addr()).unwrap();
//! for i in 0..50u32 {
//!     client.insert_members(&[i % 8, 100 + i % 5]).unwrap();
//! }
//! client.publish().unwrap();
//! let answer = client.estimate(0.7).unwrap();
//! assert_eq!(answer.epoch, 1);
//! assert_eq!(answer.n, 50);
//! server.shutdown().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod client;
mod http;
pub mod json;
mod server;

pub use batch::BatchedEstimate;
pub use client::{Client, ClientError, Estimated};
pub use server::{Server, ServerConfig, ServerConfigBuilder, ServerStats};
pub use vsj_obs::ObsOptions;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;
    use vsj_service::{EstimationEngine, IndexFamily, ServiceConfig};

    fn engine() -> Arc<EstimationEngine> {
        Arc::new(EstimationEngine::new(
            ServiceConfig::builder()
                .shards(4)
                .k(8)
                .seed(9)
                .family(IndexFamily::MinHash)
                .build(),
        ))
    }

    fn start(engine: Arc<EstimationEngine>, config: ServerConfig) -> Server {
        Server::start(engine, config).expect("bind ephemeral port")
    }

    #[test]
    fn full_protocol_roundtrip() {
        let server = start(engine(), ServerConfig::default());
        let mut client = Client::connect(server.addr()).unwrap();

        // Ingest, publish, estimate.
        let a = client.insert_members(&[1, 2, 3]).unwrap();
        let b = client.insert_members(&[1, 2, 3]).unwrap();
        let c = client.insert_members(&[9, 10]).unwrap();
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(client.publish().unwrap(), 1);
        let answer = client.estimate(0.9).unwrap();
        assert_eq!(answer.epoch, 1);
        assert_eq!(answer.n, 3);
        assert!(answer.value >= 1.0, "the duplicate pair joins at τ=0.9");

        // Remove + upsert round-trip.
        assert!(client.remove(c).unwrap());
        assert!(!client.remove(c).unwrap(), "double remove is a no-op");
        let vec = vsj_vector::SparseVector::from_entries(vec![(4, 0.5), (7, 1.5)]).unwrap();
        assert!(!client.upsert(77, &vec).unwrap(), "fresh id inserted");
        assert!(client.upsert(77, &vec).unwrap(), "second upsert replaces");
        assert_eq!(client.publish().unwrap(), 2);

        // The server answer equals the engine's own batch answer.
        let served = client.estimate(0.5).unwrap();
        let direct = server.engine().estimate_batch(&[0.5])[0];
        assert_eq!(served.value, direct.estimate.value);
        assert_eq!(served.epoch, direct.epoch);

        // Health + stats.
        assert_eq!(client.health().unwrap(), 2);
        let stats = client.stats().unwrap();
        assert_eq!(
            stats
                .get("engine")
                .and_then(|e| e.get("epoch"))
                .and_then(json::Json::as_u64),
            Some(2)
        );
        assert!(
            stats
                .get("server")
                .and_then(|s| s.get("requests"))
                .and_then(json::Json::as_u64)
                .unwrap()
                > 0
        );
        server.shutdown().unwrap();
    }

    #[test]
    fn checkpoint_on_non_durable_engine_is_conflict() {
        let server = start(engine(), ServerConfig::default());
        let mut client = Client::connect(server.addr()).unwrap();
        match client.checkpoint() {
            Err(ClientError::Status { status: 409, .. }) => {}
            other => panic!("expected 409, got {other:?}"),
        }
        server.shutdown().unwrap();
    }

    #[test]
    fn malformed_requests_get_clean_errors() {
        let server = start(engine(), ServerConfig::builder().max_body(256).build());
        let mut client = Client::connect(server.addr()).unwrap();
        match client.estimate(7.0) {
            Err(ClientError::Status {
                status: 400,
                message,
            }) => {
                assert!(message.contains("outside"), "{message}")
            }
            other => panic!("expected 400, got {other:?}"),
        }
        // The connection survives an application-level 400.
        client.insert_members(&[1]).unwrap();

        // Raw probes: unknown path, bad method, bad JSON, oversized body.
        let probe = |raw: &str| -> u16 {
            use std::io::Write;
            let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
            stream.write_all(raw.as_bytes()).unwrap();
            let mut response = String::new();
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let mut reader = std::io::BufReader::new(&mut stream);
            std::io::BufRead::read_line(&mut reader, &mut response).unwrap();
            response
                .split_whitespace()
                .nth(1)
                .and_then(|code| code.parse().ok())
                .unwrap_or_else(|| panic!("no status in {response:?}"))
        };
        assert_eq!(
            probe("POST /nope HTTP/1.1\r\ncontent-length: 0\r\n\r\n"),
            404
        );
        assert_eq!(
            probe("PUT /estimate HTTP/1.1\r\ncontent-length: 0\r\n\r\n"),
            405
        );
        assert_eq!(
            probe("POST /estimate HTTP/1.1\r\ncontent-length: 3\r\n\r\n{{{"),
            400
        );
        assert_eq!(
            probe("POST /insert HTTP/1.1\r\ncontent-length: 9999\r\n\r\n"),
            413
        );
        assert_eq!(probe("GARBAGE\r\n\r\n"), 400);
        server.shutdown().unwrap();
    }

    #[test]
    fn publish_lag_sheds_ingests_until_publish() {
        let server = start(
            engine(),
            ServerConfig::builder().max_publish_lag(10).build(),
        );
        let mut client = Client::connect(server.addr()).unwrap();
        let mut accepted = 0u64;
        let mut shed = 0u64;
        for i in 0..40u32 {
            match client.insert_members(&[i, i + 1]) {
                Ok(_) => accepted += 1,
                Err(ClientError::Overloaded { retry_after, .. }) => {
                    assert!(retry_after >= Duration::from_secs(1));
                    shed += 1;
                }
                Err(other) => panic!("unexpected {other}"),
            }
        }
        assert_eq!(accepted, 10, "exactly the lag budget is accepted");
        assert_eq!(shed, 30);
        assert_eq!(server.stats().shed_ingests, 30);

        // A publish clears the lag; ingests flow again.
        client.publish().unwrap();
        client.insert_members(&[500, 501]).unwrap();
        server.shutdown().unwrap();
    }

    #[test]
    fn estimate_deadline_is_enforced() {
        let server = start(
            engine(),
            ServerConfig::builder()
                .batch_gather(Duration::from_millis(200))
                .build(),
        );
        let mut client = Client::connect(server.addr()).unwrap();
        client.insert_members(&[1, 2]).unwrap();
        client.publish().unwrap();
        // A 1 ms deadline dies inside the 200 ms gather window.
        match client.estimate_within(0.5, Duration::from_millis(1)) {
            Err(ClientError::DeadlineExceeded) => {}
            other => panic!("expected deadline error, got {other:?}"),
        }
        assert_eq!(server.stats().estimate_timeouts, 1);
        server.shutdown().unwrap();
    }

    #[test]
    fn shutdown_cuts_final_checkpoint_when_asked() {
        let dir = std::env::temp_dir().join(format!("vsj-server-shutdown-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServiceConfig::builder()
            .shards(2)
            .k(8)
            .seed(4)
            .family(IndexFamily::MinHash)
            .build();
        let durable = Arc::new(EstimationEngine::durable(config, &dir).unwrap());
        let server = start(
            durable,
            ServerConfig::builder().checkpoint_on_shutdown(true).build(),
        );
        let mut client = Client::connect(server.addr()).unwrap();
        for i in 0..20u32 {
            client.insert_members(&[i % 4, 50 + i % 3]).unwrap();
        }
        let answer = client.estimate(0.6).unwrap();
        let final_epoch = server.shutdown().unwrap();
        assert!(final_epoch.is_some(), "shutdown checkpointed");

        // The checkpoint holds everything — recovery needs no WAL tail.
        let revived = EstimationEngine::recover(&dir).unwrap();
        assert_eq!(revived.wal_pending(), 0);
        assert_eq!(revived.current_epoch(), final_epoch.unwrap());
        assert_eq!(revived.snapshot().len(), 20);
        let _ = answer;
        std::fs::remove_dir_all(&dir).ok();
    }
}
