//! The server proper: acceptor, worker pool, router, backpressure.
//!
//! ```text
//!            TcpListener (acceptor thread)
//!                  │ bounded connection queue (503 when full)
//!        ┌─────────┼─────────┐
//!     worker …  worker …  worker        parse HTTP → route
//!        │         │         │
//!   ingest ops   estimate    admin (publish/checkpoint/stats)
//!   (shed 429    requests
//!    on publish    │  bounded batch queue (shed 429 when full)
//!    lag)       batcher thread → one estimate_batch pass per drain
//! ```
//!
//! See `docs/PROTOCOL.md` for the wire format and
//! `docs/ARCHITECTURE.md` for the batching/backpressure contract.

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use vsj_core::EstimateKind;
use vsj_obs::{
    render_registries, Counter, Gauge, Histogram, ObsOptions, Registry, Trace, TraceRing,
};
use vsj_service::{AuditRecord, EstimationEngine, FsyncPolicy, PersistError, StorageTier};
use vsj_vector::SparseVector;

use crate::batch::{BatchCounters, BatchMetrics, BatchRejected, Batcher};
use crate::http::{self, ReadError, Request};
use crate::json::Json;

/// How long an idle keep-alive connection may sit between requests
/// before the worker re-checks the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(100);
/// Transport timeout while a request is actually being read/written.
const ACTIVE_TIMEOUT: Duration = Duration::from_secs(10);

/// Tunables of a [`Server`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back from
    /// [`Server::addr`]).
    pub addr: String,
    /// Worker threads parsing and answering requests.
    pub workers: usize,
    /// Bound on accepted-but-unserviced connections; past it the
    /// acceptor sheds with `503` instead of queuing.
    pub max_pending_connections: usize,
    /// Bound on queued estimate requests (the batcher's inbox); past it
    /// estimate requests are shed with `429`.
    pub max_queue_depth: usize,
    /// Ingest backpressure: when the engine's publish lag (ingests not
    /// yet visible to reads) exceeds this, `insert`/`upsert`/`remove`
    /// are shed with `429` until a publish catches the view up. `None`
    /// disables shedding.
    pub max_publish_lag: Option<u64>,
    /// Durable-write backpressure: when the deepest per-shard WAL
    /// backlog (records past the checkpoint cut on any one shard's
    /// segment chain) reaches this, ingests are shed with `429` whose
    /// `Retry-After` scales with how far past the limit the backlog is
    /// — a checkpoint (manual or background) drains it. `None` disables
    /// shedding; it is also inert on non-durable engines (depth 0).
    pub max_wal_depth: Option<u64>,
    /// Deadline applied to estimate requests that do not carry their
    /// own `deadline_ms`.
    pub default_deadline: Duration,
    /// How long the batcher waits after the first queued request before
    /// cutting a pass. Zero (default) drains continuously — under load,
    /// requests arriving while a pass samples coalesce naturally.
    pub batch_gather: Duration,
    /// Largest accepted request body.
    pub max_body: usize,
    /// Cut a final checkpoint during [`Server::shutdown`] when the
    /// engine is durable.
    pub checkpoint_on_shutdown: bool,
    /// Observability knobs for the server's own registry and slow-trace
    /// ring (histogram bucket shapes, slow-query threshold, ring
    /// capacity). The engine carries its own copy — see
    /// [`EstimationEngine::with_obs`](vsj_service::EstimationEngine::with_obs);
    /// `GET /metrics` serves both registries concatenated.
    pub obs: ObsOptions,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            max_pending_connections: 128,
            max_queue_depth: 1024,
            max_publish_lag: None,
            max_wal_depth: None,
            default_deadline: Duration::from_secs(2),
            batch_gather: Duration::ZERO,
            max_body: 1 << 20,
            checkpoint_on_shutdown: false,
            obs: ObsOptions::default(),
        }
    }
}

impl ServerConfig {
    /// Starts a builder from the defaults.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: Self::default(),
        }
    }
}

/// Builder for [`ServerConfig`] (validates on [`build`]).
///
/// [`build`]: ServerConfigBuilder::build
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Sets the bind address (default `127.0.0.1:0`).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.config.addr = addr.into();
        self
    }

    /// Sets the worker thread count (≥ 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the connection queue bound (≥ 1).
    pub fn max_pending_connections(mut self, bound: usize) -> Self {
        self.config.max_pending_connections = bound;
        self
    }

    /// Sets the estimate queue bound (≥ 1).
    pub fn max_queue_depth(mut self, bound: usize) -> Self {
        self.config.max_queue_depth = bound;
        self
    }

    /// Sets the ingest-shedding publish-lag threshold.
    pub fn max_publish_lag(mut self, lag: u64) -> Self {
        self.config.max_publish_lag = Some(lag);
        self
    }

    /// Sets the ingest-shedding per-shard WAL depth threshold.
    pub fn max_wal_depth(mut self, depth: u64) -> Self {
        self.config.max_wal_depth = Some(depth);
        self
    }

    /// Sets the default estimate deadline.
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.config.default_deadline = deadline;
        self
    }

    /// Sets the batcher gather window.
    pub fn batch_gather(mut self, gather: Duration) -> Self {
        self.config.batch_gather = gather;
        self
    }

    /// Sets the request body cap.
    pub fn max_body(mut self, bytes: usize) -> Self {
        self.config.max_body = bytes;
        self
    }

    /// Cut a final checkpoint on graceful shutdown (durable engines).
    pub fn checkpoint_on_shutdown(mut self, yes: bool) -> Self {
        self.config.checkpoint_on_shutdown = yes;
        self
    }

    /// Sets the server-side observability options (bucket shapes,
    /// slow-query threshold, trace-ring capacity).
    pub fn obs(mut self, obs: ObsOptions) -> Self {
        self.config.obs = obs;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Panics
    /// Panics when `workers`, `max_pending_connections`, or
    /// `max_queue_depth` is zero.
    pub fn build(self) -> ServerConfig {
        let c = self.config;
        assert!(c.workers >= 1, "a server needs at least one worker");
        assert!(
            c.max_pending_connections >= 1,
            "connection queue needs capacity"
        );
        assert!(c.max_queue_depth >= 1, "estimate queue needs capacity");
        c.obs.validate();
        c
    }
}

/// Point-in-time server statistics (the engine's own counters live in
/// [`EngineStats`](vsj_service::EngineStats), served alongside these by
/// `GET /stats`).
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Requests routed (any endpoint, any outcome).
    pub requests: u64,
    /// Connections accepted into the queue.
    pub connections: u64,
    /// Connections refused because the queue was full.
    pub rejected_connections: u64,
    /// Shared sampling passes the batcher ran.
    pub batches: u64,
    /// Estimate requests answered through a batcher pass.
    pub batched_estimates: u64,
    /// Requests beyond the first in their pass — the passes batching
    /// saved.
    pub merged_estimates: u64,
    /// Largest single pass (requests).
    pub max_batch: u64,
    /// Estimate requests shed with `429` (queue full).
    pub shed_estimates: u64,
    /// Ingest requests shed with `429` (publish lag).
    pub shed_ingests: u64,
    /// Ingest requests shed with `429` (per-shard WAL depth).
    pub shed_wal: u64,
    /// Estimate requests that missed their deadline.
    pub estimate_timeouts: u64,
    /// Momentary batcher queue depth.
    pub queue_depth: usize,
}

/// The routes the server knows, each with a per-route counter and
/// latency histogram under static Prometheus labels. Unknown paths
/// aggregate under `other` so an attacker probing random URLs cannot
/// grow the registry.
const ROUTE_LABELS: &[(&str, &[(&str, &str)])] = &[
    ("/estimate", &[("route", "/estimate")]),
    ("/insert", &[("route", "/insert")]),
    ("/remove", &[("route", "/remove")]),
    ("/upsert", &[("route", "/upsert")]),
    ("/publish", &[("route", "/publish")]),
    ("/checkpoint", &[("route", "/checkpoint")]),
    ("/compact", &[("route", "/compact")]),
    ("/stats", &[("route", "/stats")]),
    ("/healthz", &[("route", "/healthz")]),
    ("/metrics", &[("route", "/metrics")]),
    ("/quality", &[("route", "/quality")]),
    ("/trace/slow", &[("route", "/trace/slow")]),
    ("other", &[("route", "other")]),
];

/// One route's always-on instrumentation.
struct RouteMetrics {
    label: &'static str,
    requests: Counter,
    latency_us: Histogram,
}

/// The server's own metric registry and the lock-free handles the hot
/// path records into. The engine keeps a separate registry
/// ([`EstimationEngine::metrics`](vsj_service::EstimationEngine::metrics));
/// `GET /metrics` concatenates the two renders (their name spaces are
/// disjoint: `vsj_engine_*`/`vsj_wal_*` vs `vsj_server_*`).
struct ServerMetrics {
    registry: Registry,
    requests: Counter,
    connections: Counter,
    rejected_connections: Counter,
    shed_estimates: Counter,
    shed_ingests: Counter,
    shed_wal: Counter,
    queue_depth: Gauge,
    publish_lag: Gauge,
    slow_traces: Counter,
    routes: Vec<RouteMetrics>,
    queue_wait_us: Histogram,
    batch_wait_us: Histogram,
    coalesce: Histogram,
}

impl ServerMetrics {
    fn new(obs: &ObsOptions) -> Self {
        let registry = Registry::new();
        let latency = obs.latency_spec();
        let routes = ROUTE_LABELS
            .iter()
            .map(|&(label, labels)| RouteMetrics {
                label,
                requests: registry.counter_with(
                    "vsj_server_route_requests_total",
                    "Requests routed, by endpoint",
                    labels,
                ),
                latency_us: registry.histogram_with(
                    "vsj_server_route_latency_us",
                    "Request handling latency by endpoint (µs, read to reply)",
                    labels,
                    latency,
                ),
            })
            .collect();
        Self {
            requests: registry.counter(
                "vsj_server_requests_total",
                "Requests routed (any endpoint, any outcome)",
            ),
            connections: registry.counter(
                "vsj_server_connections_total",
                "Connections accepted into the queue",
            ),
            rejected_connections: registry.counter(
                "vsj_server_rejected_connections_total",
                "Connections refused because the queue was full",
            ),
            shed_estimates: registry.counter_with(
                "vsj_server_shed_total",
                "Requests shed with 429, by cause",
                &[("cause", "estimate_queue")],
            ),
            shed_ingests: registry.counter_with(
                "vsj_server_shed_total",
                "Requests shed with 429, by cause",
                &[("cause", "publish_lag")],
            ),
            shed_wal: registry.counter_with(
                "vsj_server_shed_total",
                "Requests shed with 429, by cause",
                &[("cause", "wal_depth")],
            ),
            queue_depth: registry.gauge(
                "vsj_server_queue_depth",
                "Momentary batcher queue depth (set at scrape time)",
            ),
            publish_lag: registry.gauge(
                "vsj_server_publish_lag",
                "Engine publish lag: ingests not yet visible to reads (set at scrape time)",
            ),
            slow_traces: registry.counter(
                "vsj_server_slow_traces_total",
                "Requests slower than the slow-query threshold, captured into the trace ring",
            ),
            routes,
            queue_wait_us: registry.histogram(
                "vsj_server_queue_wait_us",
                "Estimate queue wait: enqueue to batcher wake (µs)",
                latency,
            ),
            batch_wait_us: registry.histogram(
                "vsj_server_batch_wait_us",
                "Batch gather wait: batcher wake to sampling start (µs)",
                latency,
            ),
            coalesce: registry.histogram(
                "vsj_server_batch_coalesce_size",
                "Estimate requests coalesced per shared sampling pass",
                obs.size_spec(),
            ),
            registry,
        }
    }

    /// The metrics slot for `path` (unknown paths land on `other`).
    fn route(&self, path: &str) -> &RouteMetrics {
        self.routes
            .iter()
            .find(|r| r.label == path)
            .unwrap_or_else(|| self.routes.last().expect("`other` route is always present"))
    }

    /// Histogram clones for the batcher thread.
    fn batch_metrics(&self) -> BatchMetrics {
        BatchMetrics {
            queue_wait_us: self.queue_wait_us.clone(),
            batch_wait_us: self.batch_wait_us.clone(),
            coalesce: self.coalesce.clone(),
        }
    }
}

struct ConnectionQueue {
    queue: Mutex<(VecDeque<TcpStream>, bool)>,
    wake: Condvar,
    capacity: usize,
}

impl ConnectionQueue {
    fn new(capacity: usize) -> Self {
        Self {
            queue: Mutex::new((VecDeque::new(), false)),
            wake: Condvar::new(),
            capacity,
        }
    }

    /// `false` when the queue is at capacity or closed (caller sheds).
    fn push(&self, stream: TcpStream) -> bool {
        let mut guard = self.queue.lock().expect("connection queue");
        if guard.1 || guard.0.len() >= self.capacity {
            return false;
        }
        guard.0.push_back(stream);
        drop(guard);
        self.wake.notify_one();
        true
    }

    /// Blocks for the next connection; `None` once closed **and**
    /// drained (shutdown finishes queued clients).
    fn pop(&self) -> Option<TcpStream> {
        let mut guard = self.queue.lock().expect("connection queue");
        loop {
            if let Some(stream) = guard.0.pop_front() {
                return Some(stream);
            }
            if guard.1 {
                return None;
            }
            guard = self.wake.wait(guard).expect("connection queue");
        }
    }

    fn close(&self) {
        self.queue.lock().expect("connection queue").1 = true;
        self.wake.notify_all();
    }
}

struct Inner {
    engine: Arc<EstimationEngine>,
    config: ServerConfig,
    metrics: ServerMetrics,
    traces: Arc<TraceRing>,
    started: Instant,
    batch_counters: Arc<BatchCounters>,
    batcher: Batcher,
    connections: ConnectionQueue,
    shutting_down: AtomicBool,
}

/// A running VSJ estimation server: the network front-end over an
/// [`EstimationEngine`].
///
/// Start with [`Server::start`], talk to it with
/// [`Client`](crate::Client) (or any HTTP client speaking
/// `docs/PROTOCOL.md`), stop it with [`Server::shutdown`] — which
/// drains in-flight work and, when configured, cuts a final checkpoint.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use vsj_server::{Client, Server, ServerConfig};
/// use vsj_service::{EstimationEngine, ServiceConfig};
///
/// let engine = Arc::new(EstimationEngine::new(
///     ServiceConfig::builder().shards(2).k(8).seed(1).build(),
/// ));
/// let server = Server::start(engine, ServerConfig::default()).unwrap();
/// let mut client = Client::connect(server.addr()).unwrap();
///
/// let id = client.insert_members(&[1, 2, 3]).unwrap();
/// assert_eq!(id, 0);
/// assert_eq!(client.publish().unwrap(), 1);
/// let answer = client.estimate(0.8).unwrap();
/// assert_eq!(answer.epoch, 1);
///
/// server.shutdown().unwrap();
/// ```
pub struct Server {
    addr: SocketAddr,
    inner: Arc<Inner>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor + worker pool + batcher, and returns
    /// the handle. With port 0 the chosen port is in [`Server::addr`].
    pub fn start(engine: Arc<EstimationEngine>, config: ServerConfig) -> std::io::Result<Server> {
        assert!(config.workers >= 1, "a server needs at least one worker");
        assert!(
            config.max_pending_connections >= 1 && config.max_queue_depth >= 1,
            "server queues need capacity"
        );
        config.obs.validate();
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = ServerMetrics::new(&config.obs);
        let traces = Arc::new(TraceRing::new(
            config.obs.trace_ring,
            config.obs.slow_query_threshold,
        ));
        let batch_counters = Arc::new(BatchCounters::default());
        let batcher = Batcher::spawn(
            engine.clone(),
            batch_counters.clone(),
            metrics.batch_metrics(),
            config.max_queue_depth,
            config.batch_gather,
        );
        let inner = Arc::new(Inner {
            engine,
            metrics,
            traces,
            started: Instant::now(),
            batch_counters,
            batcher,
            connections: ConnectionQueue::new(config.max_pending_connections),
            shutting_down: AtomicBool::new(false),
            config,
        });

        let acceptor_inner = inner.clone();
        let acceptor = std::thread::Builder::new()
            .name("vsj-acceptor".into())
            .spawn(move || accept_loop(listener, acceptor_inner))?;

        let workers = (0..inner.config.workers)
            .map(|i| {
                let worker_inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("vsj-worker-{i}"))
                    .spawn(move || worker_loop(worker_inner))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        Ok(Server {
            addr,
            inner,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &Arc<EstimationEngine> {
        &self.inner.engine
    }

    /// The slow-trace ring `GET /trace/slow` serves. Hand a clone to
    /// [`Checkpointer::spawn_traced`](vsj_service::Checkpointer::spawn_traced),
    /// [`Compactor::spawn_traced`](vsj_service::Compactor::spawn_traced),
    /// or [`Auditor::spawn_traced`](vsj_service::Auditor::spawn_traced)
    /// so background maintenance cycles land in the same ring as slow
    /// requests (told apart by the `op` field).
    pub fn trace_ring(&self) -> Arc<TraceRing> {
        self.inner.traces.clone()
    }

    /// Point-in-time server statistics.
    pub fn stats(&self) -> ServerStats {
        stats_of(&self.inner)
    }

    /// Graceful shutdown: stop accepting, finish queued connections and
    /// in-flight batches, join every thread, and — when
    /// [`ServerConfig::checkpoint_on_shutdown`] is set and the engine
    /// is durable — cut a final checkpoint. Returns the checkpointed
    /// epoch, if one was taken.
    pub fn shutdown(mut self) -> Result<Option<u64>, PersistError> {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        self.inner.connections.close();
        // Unblock the acceptor's blocking `accept` with a no-op connect.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.inner.batcher.close();
        if self.inner.config.checkpoint_on_shutdown && self.inner.engine.is_durable() {
            return self.inner.engine.checkpoint().map(Some);
        }
        Ok(None)
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if inner.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            // Persistent accept errors (EMFILE under fd exhaustion,
            // ENOBUFS, …) would otherwise busy-spin this thread at
            // 100% CPU — exactly when the workers need cycles to close
            // connections and clear the condition.
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        if inner.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        inner.metrics.connections.inc();
        if !inner.connections.push(stream) {
            // Bounded queue full: shed the connection, never buffer it.
            // (The stream drops here; a 503 body would require blocking
            // the acceptor on a possibly-unwritable socket.)
            inner.metrics.rejected_connections.inc();
        }
    }
}

fn worker_loop(inner: Arc<Inner>) {
    while let Some(stream) = inner.connections.pop() {
        // Backstop for panics outside the routed handler (route() has
        // its own catch): the connection is lost, the worker survives.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = serve_connection(&inner, stream);
        }));
    }
}

/// Keep-alive loop over one connection. Idle waits poll at
/// [`IDLE_POLL`] so shutdown is observed promptly without dropping
/// half-read requests.
fn serve_connection(inner: &Arc<Inner>, stream: TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        // Wait (peek, consuming nothing) for the next request's first
        // byte so a transport timeout can never tear a request apart.
        reader.get_ref().set_read_timeout(Some(IDLE_POLL))?;
        use std::io::BufRead;
        match reader.fill_buf() {
            Ok([]) => return Ok(()), // clean EOF between requests
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if inner.shutting_down.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        reader.get_ref().set_read_timeout(Some(ACTIVE_TIMEOUT))?;
        let request = match http::read_request(&mut reader, inner.config.max_body) {
            Ok(request) => request,
            Err(ReadError::Closed) => return Ok(()),
            Err(ReadError::Io(e)) => return Err(e),
            Err(ReadError::Malformed(reason)) => {
                let body = error_body(&reason);
                return http::write_response(
                    &mut writer,
                    400,
                    "application/json",
                    &body,
                    true,
                    None,
                );
            }
            Err(ReadError::BodyTooLarge { declared, limit }) => {
                let body = error_body(&format!("body of {declared} bytes exceeds limit {limit}"));
                return http::write_response(
                    &mut writer,
                    413,
                    "application/json",
                    &body,
                    true,
                    None,
                );
            }
        };
        inner.metrics.requests.inc();
        let close = request.wants_close();
        let handling_started = Instant::now();
        // Panic isolation: a handler panic (most plausibly a durable
        // engine refusing an unlogged write after a WAL I/O failure)
        // must cost a 500, not a worker thread — a shrinking pool would
        // eventually strand accepted connections forever.
        let reply =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(inner, &request)))
                .unwrap_or_else(|panic| {
                    let reason = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "handler panicked".into());
                    Reply::error(500, format!("internal error: {reason}"))
                });
        let elapsed = handling_started.elapsed();
        let route_metrics = inner.metrics.route(&request.path);
        route_metrics.requests.inc();
        route_metrics.latency_us.record_duration(elapsed);
        // Every request carries a trace on the stack; it crosses into
        // the ring (the only allocation/lock on this path) only when
        // slower than the threshold. Handlers that know their pipeline
        // attach stage timings; for the rest the total alone is kept.
        let mut trace = reply
            .trace
            .map(|boxed| *boxed)
            .unwrap_or_else(|| Trace::new(route_metrics.label));
        trace.total_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        if inner.traces.offer(trace) {
            inner.metrics.slow_traces.inc();
        }
        http::write_response(
            &mut writer,
            reply.status,
            reply.content_type,
            &reply.body,
            close,
            reply.retry_after,
        )?;
        if close {
            return Ok(());
        }
    }
}

struct Reply {
    status: u16,
    body: String,
    content_type: &'static str,
    retry_after: Option<Duration>,
    /// Stage timings the handler collected; the serve loop stamps the
    /// total and offers it to the slow-trace ring. Boxed to keep the
    /// common traceless `Reply` small (clippy::result_large_err).
    trace: Option<Box<Trace>>,
}

impl Reply {
    fn ok(body: Json) -> Self {
        Self {
            status: 200,
            body: body.encode(),
            content_type: "application/json",
            retry_after: None,
            trace: None,
        }
    }

    /// A non-JSON body (the Prometheus text exposition).
    fn text(content_type: &'static str, body: String) -> Self {
        Self {
            status: 200,
            body,
            content_type,
            retry_after: None,
            trace: None,
        }
    }

    fn error(status: u16, message: impl AsRef<str>) -> Self {
        Self {
            status,
            body: Json::obj([("error", Json::str(message.as_ref()))]).encode(),
            content_type: "application/json",
            retry_after: None,
            trace: None,
        }
    }

    /// Attaches handler-collected stage timings.
    fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = Some(Box::new(trace));
        self
    }

    fn shed(message: impl AsRef<str>) -> Self {
        Self::shed_after(Duration::from_secs(1), message)
    }

    fn shed_after(retry_after: Duration, message: impl AsRef<str>) -> Self {
        Self {
            retry_after: Some(retry_after),
            ..Self::error(429, message)
        }
    }
}

fn error_body(message: &str) -> String {
    Json::obj([("error", Json::str(message))]).encode()
}

fn route(inner: &Arc<Inner>, request: &Request) -> Reply {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/estimate") => handle_estimate(inner, request),
        ("POST", "/insert") => handle_insert(inner, request),
        ("POST", "/remove") => handle_remove(inner, request),
        ("POST", "/upsert") => handle_upsert(inner, request),
        ("POST", "/publish") => {
            let mut trace = Trace::new("/publish");
            let publish_started = Instant::now();
            let epoch = inner.engine.publish();
            trace.stage("publish", micros(publish_started.elapsed()));
            Reply::ok(Json::obj([("epoch", Json::u64(epoch))])).with_trace(trace)
        }
        ("POST", "/checkpoint") => match inner.engine.checkpoint() {
            Ok(epoch) => Reply::ok(Json::obj([("epoch", Json::u64(epoch))])),
            Err(PersistError::NotDurable) => {
                Reply::error(409, "engine has no storage attached (not durable)")
            }
            Err(e) => Reply::error(500, format!("checkpoint failed: {e}")),
        },
        ("POST", "/compact") => match inner.engine.compact() {
            Ok(epoch) => Reply::ok(Json::obj([("epoch", Json::u64(epoch))])),
            Err(PersistError::NotDurable) => {
                Reply::error(409, "engine has no storage attached (not durable)")
            }
            Err(e) => Reply::error(500, format!("compaction failed: {e}")),
        },
        ("GET", "/stats") => handle_stats(inner),
        ("GET", "/healthz") => Reply::ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("epoch", Json::u64(inner.engine.current_epoch())),
            ("uptime_secs", Json::u64(inner.started.elapsed().as_secs())),
            ("version", Json::str(env!("CARGO_PKG_VERSION"))),
            ("fsync", Json::str(fsync_str(inner.engine.fsync_policy()))),
            (
                "storage_tier",
                Json::str(tier_str(inner.engine.storage_tier())),
            ),
            ("compactions", Json::u64(inner.engine.stats().compactions)),
        ])),
        ("GET", "/metrics") => handle_metrics(inner),
        ("GET", "/quality") => handle_quality(inner),
        ("GET", "/trace/slow") => handle_trace_slow(inner),
        ("GET" | "POST", _) => Reply::error(404, format!("no such endpoint {}", request.path)),
        _ => Reply::error(405, format!("method {} not supported", request.method)),
    }
}

/// Saturating whole-microseconds of a duration (trace stages).
fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// The engine's fsync policy as a stable string for `/healthz` and
/// `/stats` (`none` = the engine has no storage attached).
fn fsync_str(policy: Option<FsyncPolicy>) -> &'static str {
    match policy {
        None => "none",
        Some(FsyncPolicy::Always) => "always",
        Some(FsyncPolicy::GroupCommit { .. }) => "group_commit",
        Some(FsyncPolicy::Never) => "never",
    }
}

/// The engine's serving tier as a stable string for `/healthz` and
/// `/stats` (`mapped` = estimates are served from the mmapped
/// checkpoint base plus a heap overlay; `heap` = fully materialized).
fn tier_str(tier: StorageTier) -> &'static str {
    match tier {
        StorageTier::Heap => "heap",
        StorageTier::Mapped => "mapped",
    }
}

/// `GET /metrics`: the engine's and the server's registries rendered as
/// one Prometheus text exposition. Point-in-time gauges are refreshed
/// here, at scrape time — a gauge is a sample, not an event stream.
/// [`render_registries`] merges the two with cross-registry name
/// deduplication, so a name accidentally registered in both (their
/// namespaces are disjoint by convention, not by construction) cannot
/// produce an exposition that fails
/// [`validate_exposition`](vsj_obs::validate_exposition); the
/// `vsj_obs_duplicate_metric_names` gauge it always emits makes such a
/// collision loud instead of silent.
fn handle_metrics(inner: &Arc<Inner>) -> Reply {
    inner
        .metrics
        .queue_depth
        .set(inner.batch_counters.queue_depth.load(Ordering::Relaxed) as u64);
    inner.metrics.publish_lag.set(inner.engine.publish_lag());
    let mut text = String::new();
    render_registries(
        &[inner.engine.metrics(), &inner.metrics.registry],
        &mut text,
    );
    Reply::text("text/plain; version=0.0.4", text)
}

/// `GET /quality`: the engine's estimator-quality audit summary —
/// CI-coverage counters, the signed-relative-error summary, and the
/// worst-calibrated ring (see `docs/OBSERVABILITY.md`).
fn handle_quality(inner: &Arc<Inner>) -> Reply {
    let report = inner.engine.quality_report();
    let coverage = report.coverage.map_or(Json::Null, Json::Num);
    let error_mean = if report.errors.count() == 0 {
        Json::Null
    } else {
        Json::Num(report.errors.mean())
    };
    let error_std = if report.errors.count() < 2 {
        Json::Null
    } else {
        Json::Num(report.errors.std())
    };
    Reply::ok(Json::obj([
        ("cycles", Json::u64(report.cycles)),
        ("skipped", Json::u64(report.skipped)),
        ("within_ci", Json::u64(report.within_ci)),
        ("outside_ci", Json::u64(report.outside_ci)),
        ("coverage", coverage),
        ("error_count", Json::u64(report.errors.count())),
        ("error_mean", error_mean),
        ("error_std", error_std),
        ("served_taus", Json::usize(report.served_taus)),
        (
            "worst",
            Json::Arr(report.worst.iter().map(audit_record_json).collect()),
        ),
    ]))
}

/// One [`AuditRecord`] as protocol JSON (the `worst` array of
/// `GET /quality`).
fn audit_record_json(r: &AuditRecord) -> Json {
    // +∞ (truth 0, estimate not) has no JSON number; travel it as null.
    let signed_error = if r.signed_error.is_finite() {
        Json::Num(r.signed_error)
    } else {
        Json::Null
    };
    Json::obj([
        ("tau", Json::Num(r.tau)),
        ("epoch", Json::u64(r.epoch)),
        ("n", Json::usize(r.n)),
        ("audited_n", Json::usize(r.audited_n)),
        ("estimate", Json::Num(r.estimate)),
        ("std_err", Json::Num(r.std_err)),
        ("ci_low", Json::Num(r.ci_low)),
        ("ci_high", Json::Num(r.ci_high)),
        ("truth", Json::Num(r.truth)),
        ("signed_error", signed_error),
        ("within_ci", Json::Bool(r.within_ci)),
        ("cached", Json::Bool(r.cached)),
        ("serve_us", Json::u64(r.serve_us)),
        ("exact_us", Json::u64(r.exact_us)),
    ])
}

/// `GET /trace/slow`: the slow-request ring as JSON, newest first, each
/// trace with its stage-by-stage breakdown.
fn handle_trace_slow(inner: &Arc<Inner>) -> Reply {
    let traces = inner
        .traces
        .recent()
        .iter()
        .map(|t| {
            Json::obj([
                ("seq", Json::u64(t.seq)),
                ("route", Json::str(t.label)),
                ("op", Json::str(op_str(t.label))),
                ("total_us", Json::u64(t.total_us)),
                (
                    "stages",
                    Json::Arr(
                        t.stages()
                            .iter()
                            .map(|s| {
                                Json::obj([
                                    ("stage", Json::str(s.name)),
                                    ("us", Json::u64(s.micros)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Reply::ok(Json::obj([
        ("threshold_us", Json::u64(inner.traces.threshold_us())),
        ("captured", Json::u64(inner.traces.captured())),
        ("traces", Json::Arr(traces)),
    ]))
}

/// Classifies a trace label for the `op` field of `GET /trace/slow`:
/// background maintenance cycles (checkpoint/compaction/audit) keep
/// their cycle name, everything else is a served request.
fn op_str(label: &str) -> &'static str {
    match label {
        "checkpoint" => "checkpoint",
        "compaction" => "compaction",
        "audit" => "audit",
        _ => "request",
    }
}

fn parse_body(request: &Request) -> Result<Json, Reply> {
    if request.body.is_empty() {
        return Ok(Json::obj([]));
    }
    let text =
        std::str::from_utf8(&request.body).map_err(|_| Reply::error(400, "body is not UTF-8"))?;
    Json::parse(text).map_err(|e| Reply::error(400, format!("bad JSON: {e}")))
}

/// Decodes the vector encodings the protocol accepts: binary
/// `{"members": [u32…]}` or weighted `{"indices": […], "weights": […]}`.
fn parse_vector(body: &Json) -> Result<SparseVector, String> {
    if let Some(members) = body.get("members") {
        let members = members
            .as_arr()
            .ok_or("members must be an array")?
            .iter()
            .map(|m| {
                m.as_u64()
                    .filter(|&v| v <= u32::MAX as u64)
                    .map(|v| v as u32)
                    .ok_or("members must be u32 dimensions")
            })
            .collect::<Result<Vec<u32>, _>>()?;
        return Ok(SparseVector::binary_from_members(members));
    }
    let (Some(indices), Some(weights)) = (body.get("indices"), body.get("weights")) else {
        return Err("vector needs either members or indices+weights".into());
    };
    let indices = indices
        .as_arr()
        .ok_or("indices must be an array")?
        .iter()
        .map(|m| {
            m.as_u64()
                .filter(|&v| v <= u32::MAX as u64)
                .map(|v| v as u32)
                .ok_or("indices must be u32 dimensions")
        })
        .collect::<Result<Vec<u32>, _>>()?;
    let weights = weights
        .as_arr()
        .ok_or("weights must be an array")?
        .iter()
        .map(|w| {
            w.as_f64()
                .map(|v| v as f32)
                .ok_or("weights must be numbers")
        })
        .collect::<Result<Vec<f32>, _>>()?;
    if indices.len() != weights.len() {
        return Err(format!(
            "{} indices but {} weights",
            indices.len(),
            weights.len()
        ));
    }
    SparseVector::from_entries(indices.into_iter().zip(weights).collect())
        .map_err(|e| format!("invalid vector: {e:?}"))
}

/// Ingest backpressure: `Some(reply)` when the publish lag or the
/// per-shard durable-write backlog says shed.
fn ingest_pressure(inner: &Arc<Inner>) -> Option<Reply> {
    if let Some(limit) = inner.config.max_publish_lag {
        let lag = inner.engine.publish_lag();
        if lag >= limit {
            inner.metrics.shed_ingests.inc();
            return Some(Reply::shed(format!(
                "publish lag {lag} at or past the shed threshold {limit}; publish (or wait for auto-publish) and retry"
            )));
        }
    }
    if let Some(limit) = inner.config.max_wal_depth {
        let depth = inner.engine.max_wal_shard_pending();
        if depth >= limit {
            inner.metrics.shed_wal.inc();
            // Retry-After keys off how deep past the limit the worst
            // shard is: a checkpoint drains the whole backlog, so a 2×
            // overshoot roughly doubles the useful wait.
            let factor = (depth / limit.max(1)).clamp(1, 8);
            return Some(Reply::shed_after(
                Duration::from_secs(factor),
                format!(
                    "WAL depth {depth} on the deepest shard at or past the shed threshold {limit}; checkpoint and retry"
                ),
            ));
        }
    }
    None
}

fn handle_estimate(inner: &Arc<Inner>, request: &Request) -> Reply {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(reply) => return reply,
    };
    let Some(tau) = body.get("tau").and_then(Json::as_f64) else {
        return Reply::error(400, "estimate needs a numeric tau");
    };
    if !(0.0..=1.0).contains(&tau) {
        return Reply::error(400, format!("tau {tau} outside [0, 1]"));
    }
    let deadline = match body.get("deadline_ms") {
        None => inner.config.default_deadline,
        Some(ms) => match ms.as_u64() {
            Some(ms) => Duration::from_millis(ms),
            None => return Reply::error(400, "deadline_ms must be a non-negative integer"),
        },
    };
    // Opt-in interval fields: responses without `"ci": true` stay
    // byte-identical to the pre-interval protocol, so old clients (and
    // byte-level response pins) are unaffected.
    let with_ci = match body.get("ci") {
        None => false,
        Some(flag) => match flag.as_bool() {
            Some(flag) => flag,
            None => return Reply::error(400, "ci must be a boolean"),
        },
    };
    match inner.batcher.estimate(tau, Instant::now() + deadline) {
        Ok(answer) => {
            let e = answer.estimate;
            // The estimate pipeline's stage breakdown, as measured by
            // the batcher: where did this request's latency go?
            let mut trace = Trace::new("/estimate");
            trace.stage("queue_wait", micros(answer.queue_wait));
            trace.stage("batch_wait", micros(answer.batch_wait));
            trace.stage("sampling", micros(answer.sampling));
            let mut fields = vec![
                ("value", Json::Num(e.estimate.value)),
                ("kind", Json::str(kind_str(e.estimate.kind))),
                ("epoch", Json::u64(e.epoch)),
                ("n", Json::usize(e.n)),
                ("tau", Json::Num(e.tau)),
                ("cached", Json::Bool(e.cached)),
                ("batch", Json::u64(answer.batch)),
                ("batch_size", Json::usize(answer.batch_size)),
            ];
            if with_ci {
                fields.push(("std_err", Json::Num(e.std_err)));
                fields.push(("ci_low", Json::Num(e.ci_low())));
                fields.push(("ci_high", Json::Num(e.ci_high())));
            }
            Reply::ok(Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            ))
            .with_trace(trace)
        }
        Err(BatchRejected::QueueFull) => {
            inner.metrics.shed_estimates.inc();
            Reply::shed(format!(
                "estimate queue at capacity ({})",
                inner.config.max_queue_depth
            ))
        }
        Err(BatchRejected::DeadlineExceeded) => Reply::error(504, "deadline exceeded"),
        Err(BatchRejected::ShuttingDown) => Reply::error(503, "server is shutting down"),
    }
}

fn handle_insert(inner: &Arc<Inner>, request: &Request) -> Reply {
    if let Some(shed) = ingest_pressure(inner) {
        return shed;
    }
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(reply) => return reply,
    };
    match parse_vector(&body) {
        Ok(vector) => {
            // On a durable engine the apply stage includes the WAL
            // append and commit wait (fsync, under Always/GroupCommit).
            let mut trace = Trace::new("/insert");
            let apply_started = Instant::now();
            let id = inner.engine.insert(vector);
            trace.stage("apply", micros(apply_started.elapsed()));
            Reply::ok(Json::obj([("id", Json::u64(id))])).with_trace(trace)
        }
        Err(reason) => Reply::error(400, reason),
    }
}

fn handle_remove(inner: &Arc<Inner>, request: &Request) -> Reply {
    if let Some(shed) = ingest_pressure(inner) {
        return shed;
    }
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(reply) => return reply,
    };
    let Some(id) = body.get("id").and_then(Json::as_u64) else {
        return Reply::error(400, "remove needs a numeric id");
    };
    let mut trace = Trace::new("/remove");
    let apply_started = Instant::now();
    let removed = inner.engine.remove(id);
    trace.stage("apply", micros(apply_started.elapsed()));
    Reply::ok(Json::obj([("removed", Json::Bool(removed))])).with_trace(trace)
}

fn handle_upsert(inner: &Arc<Inner>, request: &Request) -> Reply {
    if let Some(shed) = ingest_pressure(inner) {
        return shed;
    }
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(reply) => return reply,
    };
    let Some(id) = body.get("id").and_then(Json::as_u64) else {
        return Reply::error(400, "upsert needs a numeric id");
    };
    match parse_vector(&body) {
        Ok(vector) => {
            let mut trace = Trace::new("/upsert");
            let apply_started = Instant::now();
            let replaced = inner.engine.upsert(id, vector);
            trace.stage("apply", micros(apply_started.elapsed()));
            Reply::ok(Json::obj([("replaced", Json::Bool(replaced))])).with_trace(trace)
        }
        Err(reason) => Reply::error(400, reason),
    }
}

fn handle_stats(inner: &Arc<Inner>) -> Reply {
    let engine = inner.engine.stats();
    let server = stats_of(inner);
    Reply::ok(Json::obj([
        (
            "engine",
            Json::obj([
                ("epoch", Json::u64(engine.epoch)),
                ("live", Json::usize(engine.live)),
                ("ingests", Json::u64(engine.ingests)),
                ("publish_lag", Json::u64(engine.publish_lag)),
                ("publishes", Json::u64(engine.publishes)),
                ("delta_publishes", Json::u64(engine.delta_publishes)),
                ("full_publishes", Json::u64(engine.full_publishes)),
                ("shards", Json::usize(engine.shards.len())),
                ("cache_hits", Json::u64(engine.cache_hits)),
                ("cache_misses", Json::u64(engine.cache_misses)),
                ("cache_entries", Json::usize(engine.cache_entries)),
                ("sampling_passes", Json::u64(engine.sampling_passes)),
                ("sampled_pairs", Json::u64(engine.sampled_pairs)),
                ("wal_pending", Json::u64(engine.wal_pending)),
                (
                    "wal_max_shard_pending",
                    Json::u64(engine.wal_shard_pending.iter().copied().max().unwrap_or(0)),
                ),
                ("wal_segments", Json::u64(engine.wal_segments)),
                ("wal_fsyncs", Json::u64(engine.wal_fsyncs)),
                ("wal_rotations", Json::u64(engine.wal_rotations)),
                ("compactions", Json::u64(engine.compactions)),
                ("overlay_bytes", Json::u64(engine.overlay_bytes)),
                ("tombstones", Json::usize(engine.tombstones)),
            ]),
        ),
        (
            "server",
            Json::obj([
                ("uptime_secs", Json::u64(inner.started.elapsed().as_secs())),
                ("version", Json::str(env!("CARGO_PKG_VERSION"))),
                ("fsync", Json::str(fsync_str(inner.engine.fsync_policy()))),
                (
                    "storage_tier",
                    Json::str(tier_str(inner.engine.storage_tier())),
                ),
                ("requests", Json::u64(server.requests)),
                ("connections", Json::u64(server.connections)),
                (
                    "rejected_connections",
                    Json::u64(server.rejected_connections),
                ),
                ("batches", Json::u64(server.batches)),
                ("batched_estimates", Json::u64(server.batched_estimates)),
                ("merged_estimates", Json::u64(server.merged_estimates)),
                ("max_batch", Json::u64(server.max_batch)),
                ("shed_estimates", Json::u64(server.shed_estimates)),
                ("shed_ingests", Json::u64(server.shed_ingests)),
                ("shed_wal", Json::u64(server.shed_wal)),
                ("estimate_timeouts", Json::u64(server.estimate_timeouts)),
                ("queue_depth", Json::usize(server.queue_depth)),
            ]),
        ),
    ]))
}

fn stats_of(inner: &Inner) -> ServerStats {
    let m = &inner.metrics;
    let b = &inner.batch_counters;
    ServerStats {
        requests: m.requests.get(),
        connections: m.connections.get(),
        rejected_connections: m.rejected_connections.get(),
        batches: b.batches.load(Ordering::Relaxed),
        batched_estimates: b.batched_estimates.load(Ordering::Relaxed),
        merged_estimates: b.merged_estimates.load(Ordering::Relaxed),
        max_batch: b.max_batch.load(Ordering::Relaxed),
        shed_estimates: m.shed_estimates.get(),
        shed_ingests: m.shed_ingests.get(),
        shed_wal: m.shed_wal.get(),
        estimate_timeouts: b.timeouts.load(Ordering::Relaxed),
        queue_depth: b.queue_depth.load(Ordering::Relaxed),
    }
}

fn kind_str(kind: EstimateKind) -> &'static str {
    match kind {
        EstimateKind::Scaled => "scaled",
        EstimateKind::SafeLowerBound => "safe_lower_bound",
        EstimateKind::Dampened => "dampened",
        EstimateKind::Analytic => "analytic",
    }
}
