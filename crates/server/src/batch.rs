//! The estimate batcher: one dedicated thread that coalesces
//! concurrent estimate requests into shared sampling passes.
//!
//! Worker threads never sample; they enqueue `(τ, deadline)` and block
//! on a reply channel. The batcher thread drains whatever is queued
//! (optionally after a short gather window), deduplicates thresholds,
//! and runs **one**
//! [`estimate_batch`](vsj_service::EstimationEngine::estimate_batch)
//! call for the whole set. Because `estimate_batch` pins a single
//! snapshot internally and the engine's batch RNG is keyed by the epoch
//! alone, every reply in a pass carries the same epoch, and each τ's
//! answer is bit-identical to what a lone request at that epoch would
//! have received — coalescing is invisible except in latency and
//! sampling cost.
//!
//! Backpressure: the queue is bounded; [`Batcher::enqueue`] refuses
//! (rather than queues) when it is full, and the caller sheds the
//! request with a `429`. Expired deadlines are answered with a timeout
//! instead of being sampled for.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use vsj_obs::Histogram;
use vsj_service::{EstimationEngine, ServiceEstimate};

/// One answered estimate, tagged with the shared pass that computed it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchedEstimate {
    /// The engine's answer (epoch-tagged).
    pub estimate: ServiceEstimate,
    /// Sequence number of the shared sampling pass that served it: two
    /// *freshly computed* replies with the same `batch` id came from
    /// one pass and therefore one epoch. Cache-served replies
    /// (`estimate.cached`) carry the id of the pass that *answered*
    /// them but keep their older computed-at epoch — they rode no
    /// sampling.
    pub batch: u64,
    /// How many requests rode in that pass.
    pub batch_size: usize,
    /// How long this request sat in the queue before the batcher woke
    /// for its pass.
    pub queue_wait: Duration,
    /// How long the pass then gathered (the configured window plus
    /// drain bookkeeping) before sampling started.
    pub batch_wait: Duration,
    /// Duration of the shared sampling pass that served it.
    pub sampling: Duration,
}

/// Observability handles the batcher records into (histograms live on
/// the server's registry; the batcher only holds clones).
pub(crate) struct BatchMetrics {
    /// Per-request wait from enqueue to the batcher waking.
    pub queue_wait_us: Histogram,
    /// Per-pass wait from wake to sampling start (gather window).
    pub batch_wait_us: Histogram,
    /// Requests coalesced per pass.
    pub coalesce: Histogram,
}

impl BatchMetrics {
    /// Disabled histograms — unit tests and overhead probes.
    #[cfg(test)]
    pub fn disabled() -> Self {
        Self {
            queue_wait_us: Histogram::disabled(),
            batch_wait_us: Histogram::disabled(),
            coalesce: Histogram::disabled(),
        }
    }
}

/// Why an estimate request was not answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchRejected {
    /// The queue is at capacity — shed, retry later.
    QueueFull,
    /// The request's deadline passed before a pass picked it up.
    DeadlineExceeded,
    /// The server is shutting down.
    ShuttingDown,
}

struct PendingRequest {
    tau: f64,
    deadline: Instant,
    /// When the request entered the queue (queue-wait accounting).
    enqueued: Instant,
    reply: mpsc::SyncSender<Result<BatchedEstimate, BatchRejected>>,
}

#[derive(Default)]
struct BatchQueue {
    pending: Vec<PendingRequest>,
    closed: bool,
}

/// Counters the batcher maintains (read via `Server::stats`).
#[derive(Debug, Default)]
pub(crate) struct BatchCounters {
    /// Shared sampling passes run.
    pub batches: AtomicU64,
    /// Estimate requests answered through a pass.
    pub batched_estimates: AtomicU64,
    /// Requests beyond the first that shared a pass — the work batching
    /// saved. A pass of 5 requests over 3 distinct τ adds 4.
    pub merged_estimates: AtomicU64,
    /// Largest number of requests one pass served.
    pub max_batch: AtomicU64,
    /// Requests answered with a deadline timeout.
    pub timeouts: AtomicU64,
    /// Momentary queue depth (for stats and the backpressure test).
    pub queue_depth: AtomicUsize,
}

struct Shared {
    queue: Mutex<BatchQueue>,
    wake: Condvar,
    counters: Arc<BatchCounters>,
    metrics: BatchMetrics,
    max_queue_depth: usize,
    gather: Duration,
}

/// Handle on the batcher thread. [`close`](Batcher::close) (also run
/// on drop) stops intake, drains the queue, and joins the thread.
pub(crate) struct Batcher {
    shared: Arc<Shared>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Batcher {
    pub(crate) fn spawn(
        engine: Arc<EstimationEngine>,
        counters: Arc<BatchCounters>,
        metrics: BatchMetrics,
        max_queue_depth: usize,
        gather: Duration,
    ) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(BatchQueue::default()),
            wake: Condvar::new(),
            counters,
            metrics,
            max_queue_depth,
            gather,
        });
        let thread_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("vsj-batcher".into())
            .spawn(move || run(engine, thread_shared))
            .expect("spawn batcher thread");
        Self {
            shared,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// Queues one estimate request and blocks until the batcher answers
    /// or the deadline passes. Called from worker threads.
    pub(crate) fn estimate(
        &self,
        tau: f64,
        deadline: Instant,
    ) -> Result<BatchedEstimate, BatchRejected> {
        let (reply, answer) = mpsc::sync_channel(1);
        {
            let mut queue = self.shared.queue.lock().expect("batcher lock");
            if queue.closed {
                return Err(BatchRejected::ShuttingDown);
            }
            if queue.pending.len() >= self.shared.max_queue_depth {
                return Err(BatchRejected::QueueFull);
            }
            queue.pending.push(PendingRequest {
                tau,
                deadline,
                enqueued: Instant::now(),
                reply,
            });
            self.shared
                .counters
                .queue_depth
                .store(queue.pending.len(), Ordering::Relaxed);
        }
        self.shared.wake.notify_one();
        // The batcher replies (possibly with DeadlineExceeded) for every
        // queued request, including during shutdown drain; the timeout
        // is a backstop against the batcher thread dying.
        let backstop = deadline
            .saturating_duration_since(Instant::now())
            .checked_add(Duration::from_secs(30))
            .expect("deadline within range");
        match answer.recv_timeout(backstop) {
            Ok(result) => result,
            Err(_) => Err(BatchRejected::DeadlineExceeded),
        }
    }

    /// Stops accepting requests, drains what is queued (every pending
    /// request still gets a real answer), and joins the thread.
    /// Idempotent.
    pub(crate) fn close(&self) {
        {
            let mut queue = self.shared.queue.lock().expect("batcher lock");
            queue.closed = true;
        }
        self.shared.wake.notify_all();
        let handle = self.handle.lock().expect("batcher handle").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.close();
    }
}

fn run(engine: Arc<EstimationEngine>, shared: Arc<Shared>) {
    loop {
        // Wait for work (or shutdown with an empty queue).
        let (batch, woke) = {
            let mut queue = shared.queue.lock().expect("batcher lock");
            loop {
                if !queue.pending.is_empty() || queue.closed {
                    break;
                }
                queue = shared.wake.wait(queue).expect("batcher lock");
            }
            if queue.pending.is_empty() {
                return; // closed and drained
            }
            // Queue wait ends here; everything until sampling starts is
            // batch wait (the gather window plus drain bookkeeping).
            let woke = Instant::now();
            if !queue.closed && !shared.gather.is_zero() {
                // Gather window: let concurrent requests pile in before
                // cutting the pass. (Under load the natural batching —
                // requests queuing while the previous pass samples —
                // dominates; the window mainly helps sparse traffic and
                // deterministic tests.)
                drop(queue);
                std::thread::sleep(shared.gather);
                queue = shared.queue.lock().expect("batcher lock");
            }
            shared.counters.queue_depth.store(0, Ordering::Relaxed);
            (std::mem::take(&mut queue.pending), woke)
        };

        // Expired deadlines are answered, not sampled for.
        let now = Instant::now();
        let (live, expired): (Vec<_>, Vec<_>) = batch.into_iter().partition(|r| r.deadline > now);
        shared
            .counters
            .timeouts
            .fetch_add(expired.len() as u64, Ordering::Relaxed);
        for request in expired {
            let _ = request.reply.send(Err(BatchRejected::DeadlineExceeded));
        }
        if live.is_empty() {
            continue;
        }

        // One shared pass over the distinct thresholds. Sorting makes
        // the pass order deterministic; the answers are already
        // grid-independent (epoch-keyed batch RNG), so this is pure
        // hygiene.
        let mut taus: Vec<f64> = live.iter().map(|r| r.tau).collect();
        taus.sort_by(f64::total_cmp);
        taus.dedup_by(|a, b| a.to_bits() == b.to_bits());
        let sampling_started = Instant::now();
        let answers = engine.estimate_batch(&taus);
        let sampling = sampling_started.elapsed();

        let batch_wait = sampling_started.saturating_duration_since(woke);
        shared.metrics.batch_wait_us.record_duration(batch_wait);
        shared.metrics.coalesce.record(live.len() as u64);

        let batch_size = live.len();
        let batch_id = shared.counters.batches.fetch_add(1, Ordering::Relaxed) + 1;
        shared
            .counters
            .batched_estimates
            .fetch_add(live.len() as u64, Ordering::Relaxed);
        shared
            .counters
            .merged_estimates
            .fetch_add(live.len() as u64 - 1, Ordering::Relaxed);
        shared
            .counters
            .max_batch
            .fetch_max(live.len() as u64, Ordering::Relaxed);

        for request in live {
            let answer = answers
                .iter()
                .find(|a| a.tau.to_bits() == request.tau.to_bits())
                .copied()
                .expect("every live τ was in the pass");
            let queue_wait = woke.saturating_duration_since(request.enqueued);
            shared.metrics.queue_wait_us.record_duration(queue_wait);
            let _ = request.reply.send(Ok(BatchedEstimate {
                estimate: answer,
                batch: batch_id,
                batch_size,
                queue_wait,
                batch_wait,
                sampling,
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsj_service::{IndexFamily, ServiceConfig};
    use vsj_vector::SparseVector;

    fn engine() -> Arc<EstimationEngine> {
        let engine = EstimationEngine::new(
            ServiceConfig::builder()
                .shards(2)
                .k(8)
                .seed(5)
                .family(IndexFamily::MinHash)
                .build(),
        );
        for i in 0..120u32 {
            engine.insert(SparseVector::binary_from_members(vec![i % 15, 100 + i % 7]));
        }
        engine.publish();
        Arc::new(engine)
    }

    fn far_deadline() -> Instant {
        Instant::now() + Duration::from_secs(5)
    }

    #[test]
    fn single_request_roundtrip_matches_engine_batch() {
        let engine = engine();
        let counters = Arc::new(BatchCounters::default());
        let batcher = Batcher::spawn(
            engine.clone(),
            counters.clone(),
            BatchMetrics::disabled(),
            16,
            Duration::ZERO,
        );
        let served = batcher.estimate(0.7, far_deadline()).unwrap();
        assert_eq!(served.estimate.epoch, 1);
        // Bit-identical to the engine's batch path for a lone τ.
        assert_eq!(
            served.estimate.estimate,
            engine.estimate_batch(&[0.7])[0].estimate
        );
        assert_eq!(counters.batches.load(Ordering::Relaxed), 1);
        assert_eq!(counters.batched_estimates.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_same_tau_requests_share_a_pass() {
        let engine = engine();
        let counters = Arc::new(BatchCounters::default());
        // A generous gather window makes the merge deterministic.
        let batcher = Arc::new(Batcher::spawn(
            engine.clone(),
            counters.clone(),
            BatchMetrics::disabled(),
            64,
            Duration::from_millis(80),
        ));
        let answers: Vec<BatchedEstimate> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..6)
                .map(|_| {
                    let batcher = batcher.clone();
                    scope.spawn(move || batcher.estimate(0.8, far_deadline()).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // All six requests were answered from one pass, with one value.
        let first = answers[0];
        for a in &answers {
            assert_eq!(a.batch, first.batch, "one shared pass");
            assert_eq!(a.estimate.estimate, first.estimate.estimate);
            assert_eq!(a.estimate.epoch, first.estimate.epoch);
        }
        assert_eq!(counters.batches.load(Ordering::Relaxed), 1);
        assert_eq!(counters.batched_estimates.load(Ordering::Relaxed), 6);
        assert_eq!(counters.merged_estimates.load(Ordering::Relaxed), 5);
        assert_eq!(counters.max_batch.load(Ordering::Relaxed), 6);
        // The engine sampled once for the whole set (plus nothing else).
        assert_eq!(engine.stats().sampling_passes, 1);
    }

    #[test]
    fn full_queue_sheds_instead_of_growing() {
        let engine = engine();
        let counters = Arc::new(BatchCounters::default());
        // Depth 1 and a long gather: the second concurrent enqueue in
        // the window must be refused, not queued.
        let batcher = Arc::new(Batcher::spawn(
            engine,
            counters,
            BatchMetrics::disabled(),
            1,
            Duration::from_millis(200),
        ));
        let outcomes: Vec<Result<BatchedEstimate, BatchRejected>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let batcher = batcher.clone();
                    scope.spawn(move || {
                        // Stagger so exactly one lands first.
                        std::thread::sleep(Duration::from_millis(10 * i));
                        batcher.estimate(0.6, far_deadline())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let served = outcomes.iter().filter(|o| o.is_ok()).count();
        let shed = outcomes
            .iter()
            .filter(|o| **o == Err(BatchRejected::QueueFull))
            .count();
        assert!(served >= 1, "someone must be served");
        assert!(shed >= 1, "overload must shed");
        assert_eq!(served + shed, 4);
    }

    #[test]
    fn expired_deadlines_time_out_without_sampling() {
        let engine = engine();
        let counters = Arc::new(BatchCounters::default());
        let batcher = Batcher::spawn(
            engine.clone(),
            counters.clone(),
            BatchMetrics::disabled(),
            16,
            Duration::from_millis(50),
        );
        // The deadline passes inside the gather window.
        let result = batcher.estimate(0.7, Instant::now() + Duration::from_millis(1));
        assert_eq!(result, Err(BatchRejected::DeadlineExceeded));
        assert_eq!(counters.timeouts.load(Ordering::Relaxed), 1);
        assert_eq!(engine.stats().sampling_passes, 0, "no pass for the dead");
    }

    #[test]
    fn close_drains_pending_requests() {
        let engine = engine();
        let counters = Arc::new(BatchCounters::default());
        let batcher = Batcher::spawn(
            engine,
            counters,
            BatchMetrics::disabled(),
            16,
            Duration::ZERO,
        );
        let answer = batcher.estimate(0.5, far_deadline()).unwrap();
        assert_eq!(answer.estimate.tau, 0.5);
        batcher.close();
        assert_eq!(
            batcher.estimate(0.5, far_deadline()),
            Err(BatchRejected::ShuttingDown)
        );
    }
}
