//! A deliberately small HTTP/1.1 subset over blocking `std::net`
//! streams — just enough protocol for the JSON endpoints in
//! `docs/PROTOCOL.md`, shared by the server and the blocking client.
//!
//! Supported: request line + headers, `Content-Length` bodies,
//! keep-alive (default in 1.1) and `Connection: close`. Not supported
//! (requests using them are answered `400`/`413` and the connection is
//! closed): chunked transfer encoding, multi-line headers, upgrades,
//! pipelining beyond one in-flight request per connection.

use std::collections::BTreeMap;
use std::io::{BufRead, Read, Write};

/// Hard cap on the request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, …).
    pub method: String,
    /// Path component (query strings are not used by the protocol and
    /// are kept attached).
    pub path: String,
    /// Headers, keys lowercased.
    pub headers: BTreeMap<String, String>,
    /// Raw body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// Whether the client asked to drop the connection after this
    /// exchange (`Connection: close`; HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.headers
            .get("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly before a request line —
    /// the normal end of a keep-alive session, not an error to report.
    Closed,
    /// Transport failure mid-request.
    Io(std::io::Error),
    /// The bytes were not parseable HTTP, with a human-readable reason.
    Malformed(String),
    /// The declared body exceeds the server's limit.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The configured cap it exceeded.
        limit: usize,
    },
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads one request from a buffered stream. `max_body` caps the
/// accepted `Content-Length`.
pub fn read_request<S: BufRead>(stream: &mut S, max_body: usize) -> Result<Request, ReadError> {
    let mut line = String::new();
    // Request line. EOF here = peer hung up between requests.
    if read_line_limited(stream, &mut line)? == 0 {
        return Err(ReadError::Closed);
    }
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => return Err(ReadError::Malformed(format!("bad request line {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("unsupported {version}")));
    }
    let method = method.to_ascii_uppercase();
    let path = path.to_string();

    let mut headers = BTreeMap::new();
    let mut head_bytes = line.len();
    loop {
        line.clear();
        if read_line_limited(stream, &mut line)? == 0 {
            return Err(ReadError::Malformed("EOF inside headers".into()));
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD {
            return Err(ReadError::Malformed("request head too large".into()));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header {trimmed:?}")));
        };
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    if headers.contains_key("transfer-encoding") {
        return Err(ReadError::Malformed(
            "chunked transfer encoding is not supported".into(),
        ));
    }
    let declared = match headers.get("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed(format!("bad content-length {v:?}")))?,
    };
    if declared > max_body {
        return Err(ReadError::BodyTooLarge {
            declared,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; declared];
    stream.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// `read_line` with the head cap enforced per line as well, so one
/// endless unterminated line cannot balloon memory.
fn read_line_limited<S: BufRead>(stream: &mut S, line: &mut String) -> Result<usize, ReadError> {
    let read = stream
        .by_ref()
        .take(MAX_HEAD as u64 + 1)
        .read_line(line)
        .map_err(ReadError::Io)?;
    if read > MAX_HEAD {
        return Err(ReadError::Malformed("header line too large".into()));
    }
    Ok(read)
}

/// Reason phrases for the statuses the protocol uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one response. `content_type` names the body encoding
/// (`application/json` for every protocol endpoint; the Prometheus
/// text exposition on `/metrics` uses `text/plain; version=0.0.4`).
/// `retry_after` adds a `Retry-After` header (whole seconds, rounded
/// up) on shed responses.
pub fn write_response<S: Write>(
    stream: &mut S,
    status: u16,
    content_type: &str,
    body: &str,
    close: bool,
    retry_after: Option<std::time::Duration>,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
        reason(status),
        body.len()
    );
    if let Some(after) = retry_after {
        // Ceiling, not floor: `as_secs()` truncates, so a sub-second
        // backoff (or 1.5 s) would round *down* and tell clients to
        // retry sooner than the precise Duration in the Reply — 0 even,
        // which some clients treat as "immediately". Never advertise
        // less wait than was asked for.
        let secs = after.as_secs() + u64::from(after.subsec_nanos() != 0);
        head.push_str(&format!("retry-after: {}\r\n", secs.max(1)));
    }
    if close {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// One parsed HTTP response (client side).
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers, keys lowercased.
    pub headers: BTreeMap<String, String>,
    /// Raw body.
    pub body: Vec<u8>,
}

impl Response {
    /// Whether the server will drop the connection after this exchange.
    pub fn wants_close(&self) -> bool {
        self.headers
            .get("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Reads one response from a buffered stream (client side).
pub fn read_response<S: BufRead>(stream: &mut S, max_body: usize) -> Result<Response, ReadError> {
    let mut line = String::new();
    if read_line_limited(stream, &mut line)? == 0 {
        return Err(ReadError::Closed);
    }
    let mut parts = line.split_whitespace();
    let status = match (parts.next(), parts.next()) {
        (Some(version), Some(code)) if version.starts_with("HTTP/1.") => code
            .parse::<u16>()
            .map_err(|_| ReadError::Malformed(format!("bad status {code:?}")))?,
        _ => return Err(ReadError::Malformed(format!("bad status line {line:?}"))),
    };
    let mut headers = BTreeMap::new();
    loop {
        line.clear();
        if read_line_limited(stream, &mut line)? == 0 {
            return Err(ReadError::Malformed("EOF inside headers".into()));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    let declared = headers
        .get("content-length")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    if declared > max_body {
        return Err(ReadError::Malformed(format!(
            "response body {declared} exceeds limit"
        )));
    }
    let mut body = vec![0u8; declared];
    stream.read_exact(&mut body)?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn request_roundtrip() {
        let req =
            parse("POST /estimate HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\n{\"tau\":0.8}")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/estimate");
        assert_eq!(req.body, b"{\"tau\":0.8}");
        assert!(!req.wants_close());
        let req = parse("GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(req.wants_close());
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(matches!(parse(""), Err(ReadError::Closed)));
        assert!(matches!(
            parse("GARBAGE\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(ReadError::BodyTooLarge { declared: 9999, .. })
        ));
    }

    #[test]
    fn response_roundtrip() {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            429,
            "application/json",
            "{\"error\":\"shed\"}",
            false,
            Some(std::time::Duration::from_millis(1500)),
        )
        .unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 2\r\n"), "1.5 s rounds up to 2");
        let resp = read_response(&mut BufReader::new(wire.as_slice()), 1024).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.body, b"{\"error\":\"shed\"}");
        assert_eq!(resp.headers.get("retry-after").unwrap(), "2");
    }

    #[test]
    fn retry_after_rounds_up_and_clamps_to_one() {
        use std::time::Duration;
        let rendered = |after: Duration| -> String {
            let mut wire = Vec::new();
            write_response(&mut wire, 429, "application/json", "{}", false, Some(after)).unwrap();
            let resp = read_response(&mut BufReader::new(wire.as_slice()), 1024).unwrap();
            resp.headers.get("retry-after").unwrap().clone()
        };
        // Sub-second backoffs must never collapse to 0 on the wire.
        assert_eq!(rendered(Duration::from_millis(100)), "1");
        assert_eq!(rendered(Duration::ZERO), "1");
        // Fractional seconds round up, exact seconds stay exact.
        assert_eq!(rendered(Duration::from_millis(1500)), "2");
        assert_eq!(rendered(Duration::from_secs(2)), "2");
        assert_eq!(rendered(Duration::from_millis(2500)), "3");
    }
}
