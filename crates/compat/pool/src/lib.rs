//! `vsj-pool`: a zero-dependency scoped work pool.
//!
//! The workspace has no registry access, so this crate plays the role
//! rayon would otherwise fill: a fixed set of worker threads, per-worker
//! injection queues with work stealing, and a scoped spawn API that lets
//! tasks borrow from the caller's stack. Two entry points cover every
//! hot path in the repo:
//!
//! - [`WorkPool::scope`] — structured fork/join. Tasks spawned inside the
//!   closure may borrow `'env` data; the scope does not return until every
//!   task has run, and the first task panic is re-raised at the call site.
//! - [`WorkPool::parallel_map_indexed`] — chunked data-parallel map whose
//!   output is **always in submission order**, regardless of which worker
//!   ran which chunk. This is the primitive the bit-identity contract is
//!   built on: callers get exactly the `Vec` a serial loop would produce.
//!
//! # Determinism
//!
//! The pool never changes *what* is computed, only *where*. Results are
//! collected positionally, so any pure `f` yields byte-identical output at
//! every thread count. A pool built with `threads == 1` spawns no worker
//! threads at all: `spawn` runs its closure inline and the map degenerates
//! to the exact serial loop, giving a true legacy execution path.
//!
//! # Scheduling
//!
//! Tasks are injected round-robin across per-worker queues (each a
//! `Mutex<VecDeque>` — contention is negligible because tasks are coarse
//! chunks, not elements). An idle worker first drains its own queue, then
//! steals from the others; steals are counted in [`PoolStats`]. The thread
//! that opened a scope participates too: while waiting for the scope to
//! drain it pops and runs queued tasks, which both shortens the wait and
//! makes nested scopes (a pooled task that itself uses a pool) deadlock-free
//! by construction — the waiter can always finish the remaining work itself.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Chunks created per thread by [`WorkPool::parallel_map_indexed`]. More
/// chunks than threads lets stealing smooth out skew (one heavy chunk no
/// longer serializes the pass) at the cost of slightly more queue traffic.
const CHUNKS_PER_THREAD: usize = 4;

/// A heap task whose environment lifetime has been erased. Soundness is
/// provided by [`WorkPool::scope`], which refuses to return (even on panic)
/// until every task it spawned has finished running.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Callback invoked with the wall-clock duration of each executed task.
pub type TaskObserver = Arc<dyn Fn(Duration) + Send + Sync>;

/// Monotonic counters describing pool activity since construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Parallelism degree the pool was built with (`1` ⇒ serial inline).
    pub threads: usize,
    /// Tasks executed to completion (by workers or helping callers).
    pub tasks_total: u64,
    /// Tasks a worker popped from another worker's queue.
    pub steals_total: u64,
    /// Tasks currently sitting in queues, not yet picked up.
    pub queued: u64,
}

struct Shared {
    /// One injection queue per worker; round-robin targets.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Guards the sleep state; `Condvar` wakes idle workers.
    sleep: Mutex<bool>, // the bool is the shutdown flag
    wake: Condvar,
    /// Round-robin cursor for task injection.
    next_queue: AtomicUsize,
    /// Number of tasks sitting in queues (popped ⇒ decremented).
    queued: AtomicU64,
    tasks_total: AtomicU64,
    steals_total: AtomicU64,
    observer: Mutex<Option<TaskObserver>>,
}

impl Shared {
    /// Pop a task, preferring queue `home` and stealing from the rest.
    /// `home >= queues.len()` means "no home queue" (a helping caller);
    /// every successful pop is then counted as a steal-free drain.
    fn pop(&self, home: usize) -> Option<Task> {
        let n = self.queues.len();
        for offset in 0..n {
            let idx = (home % n + offset) % n;
            let task = self.queues[idx]
                .lock()
                .expect("pool queue poisoned")
                .pop_front();
            if let Some(task) = task {
                self.queued.fetch_sub(1, Ordering::AcqRel);
                if offset != 0 && home < n {
                    self.steals_total.fetch_add(1, Ordering::Relaxed);
                }
                return Some(task);
            }
        }
        None
    }

    /// Run one task, feeding the observer (if any) its wall-clock cost.
    fn run(&self, task: Task) {
        let observer = self
            .observer
            .lock()
            .expect("pool observer poisoned")
            .clone();
        match observer {
            Some(obs) => {
                let start = Instant::now();
                task();
                obs(start.elapsed());
            }
            None => task(),
        }
        self.tasks_total.fetch_add(1, Ordering::Relaxed);
    }
}

fn worker_loop(shared: Arc<Shared>, home: usize) {
    loop {
        if let Some(task) = shared.pop(home) {
            shared.run(task);
            continue;
        }
        let mut shutdown = shared.sleep.lock().expect("pool sleep lock poisoned");
        loop {
            if *shutdown {
                return;
            }
            if shared.queued.load(Ordering::Acquire) > 0 {
                break; // recheck queues with the lock released
            }
            shutdown = shared
                .wake
                .wait(shutdown)
                .expect("pool sleep lock poisoned");
        }
    }
}

/// Book-keeping for one [`WorkPool::scope`] invocation: outstanding task
/// count plus the first captured panic payload.
struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Spawn handle passed to the [`WorkPool::scope`] closure. Tasks may borrow
/// any `'env` data; the scope joins them all before returning.
pub struct Scope<'pool, 'env> {
    pool: &'pool WorkPool,
    state: Arc<ScopeState>,
    _marker: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Spawn a task onto the pool. With `threads == 1` the closure runs
    /// inline, immediately — the exact serial execution order.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        if self.pool.threads <= 1 {
            f();
            return;
        }
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().expect("scope panic slot poisoned");
                slot.get_or_insert(payload);
            }
            state.pending.fetch_sub(1, Ordering::AcqRel);
        });
        // SAFETY: the erased task borrows at most `'env` data. `scope()`
        // blocks (helping to drain queues) until `state.pending` hits zero,
        // and `pending` is only decremented after a task body has finished
        // running — so every task completes before the borrows it holds can
        // expire, including when the scope closure or a sibling panics.
        let task: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(task) };
        self.pool.inject(task);
    }
}

/// A fixed-size scoped work pool. See the [crate docs](crate) for the
/// design; construction spawns the workers, drop joins them.
pub struct WorkPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkPool {
    /// Build a pool with the given parallelism degree. `threads <= 1`
    /// spawns no worker threads: every spawn runs inline on the caller
    /// (the exact legacy serial path). `threads = n > 1` spawns `n`
    /// workers; the caller additionally helps while waiting on a scope.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let workers = if threads <= 1 { 0 } else { threads };
        let shared = Arc::new(Shared {
            queues: (0..workers.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            sleep: Mutex::new(false),
            wake: Condvar::new(),
            next_queue: AtomicUsize::new(0),
            queued: AtomicU64::new(0),
            tasks_total: AtomicU64::new(0),
            steals_total: AtomicU64::new(0),
            observer: Mutex::new(None),
        });
        let handles = (0..workers)
            .map(|home| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vsj-pool-{home}"))
                    .spawn(move || worker_loop(shared, home))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers: handles,
            threads,
        }
    }

    /// The parallelism degree this pool was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot of the pool's activity counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.threads,
            tasks_total: self.shared.tasks_total.load(Ordering::Relaxed),
            steals_total: self.shared.steals_total.load(Ordering::Relaxed),
            queued: self.shared.queued.load(Ordering::Acquire),
        }
    }

    /// Install (or clear) a per-task latency observer. The callback runs on
    /// worker threads after each task completes; keep it cheap.
    pub fn set_observer(&self, observer: Option<TaskObserver>) {
        *self.shared.observer.lock().expect("pool observer poisoned") = observer;
    }

    fn inject(&self, task: Task) {
        let slot =
            self.shared.next_queue.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        self.shared.queues[slot]
            .lock()
            .expect("pool queue poisoned")
            .push_back(task);
        self.shared.queued.fetch_add(1, Ordering::AcqRel);
        // Wake one worker. Taking the sleep lock orders this notification
        // after any in-progress `queued == 0` check, so wakeups cannot be
        // lost between a worker's check and its wait.
        let _guard = self.shared.sleep.lock().expect("pool sleep lock poisoned");
        self.shared.wake.notify_one();
    }

    /// Structured fork/join: run `f` with a [`Scope`] handle, then block
    /// until every spawned task has finished. While blocked, the calling
    /// thread pops and runs queued tasks itself. The first panic — from the
    /// closure or any task — is re-raised here after the join completes, so
    /// borrows held by in-flight tasks never outlive the data they point to.
    pub fn scope<'env, F, T>(&self, f: F) -> T
    where
        F: FnOnce(&Scope<'_, 'env>) -> T,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: AtomicUsize::new(0),
                panic: Mutex::new(None),
            }),
            _marker: std::marker::PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Join barrier: help run queued work until all our tasks are done.
        // This must happen even if `f` panicked — tasks may borrow `'env`.
        while scope.state.pending.load(Ordering::Acquire) > 0 {
            match self.shared.pop(usize::MAX) {
                Some(task) => self.shared.run(task),
                None => std::thread::yield_now(),
            }
        }
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                let panic = scope
                    .state
                    .panic
                    .lock()
                    .expect("scope panic slot poisoned")
                    .take();
                if let Some(payload) = panic {
                    resume_unwind(payload);
                }
                value
            }
        }
    }

    /// Apply `f` to every element of `items`, returning the results **in
    /// submission order**. Work is split into `threads × 4` contiguous
    /// chunks so stealing can absorb skew; with `threads == 1` (or a tiny
    /// input) this is exactly the serial `iter().enumerate().map()` loop.
    pub fn parallel_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if self.threads <= 1 || n < 2 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        let chunk_len = n.div_ceil((self.threads * CHUNKS_PER_THREAD).min(n));
        let chunk_count = n.div_ceil(chunk_len);
        let slots: Vec<Mutex<Option<Vec<R>>>> =
            (0..chunk_count).map(|_| Mutex::new(None)).collect();
        self.scope(|scope| {
            for (ci, slot) in slots.iter().enumerate() {
                let start = ci * chunk_len;
                let end = (start + chunk_len).min(n);
                let f = &f;
                scope.spawn(move || {
                    let out: Vec<R> = (start..end).map(|i| f(i, &items[i])).collect();
                    *slot.lock().expect("map slot poisoned") = Some(out);
                });
            }
        });
        let mut result = Vec::with_capacity(n);
        for slot in slots {
            let chunk = slot
                .into_inner()
                .expect("map slot poisoned")
                .expect("scope joined ⇒ every chunk ran");
            result.extend(chunk);
        }
        result
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        {
            let mut shutdown = self.shared.sleep.lock().expect("pool sleep lock poisoned");
            *shutdown = true;
            self.shared.wake.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Parse a `VSJ_POOL_THREADS`-style override: a positive integer wins,
/// anything else (absent, empty, malformed, zero) falls back to `None`.
fn parse_threads(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// The default parallelism degree: `VSJ_POOL_THREADS` when set to a
/// positive integer, else [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    let env = std::env::var("VSJ_POOL_THREADS").ok();
    parse_threads(env.as_deref())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The process-wide shared pool, built lazily with [`default_threads`].
/// Free functions with no pool of their own (checksum chunking, offline
/// index builds) run here; the engine owns a pool sized by its config.
pub fn global() -> &'static WorkPool {
    static GLOBAL: OnceLock<WorkPool> = OnceLock::new();
    GLOBAL.get_or_init(|| WorkPool::new(default_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn map_matches_serial_at_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x * 3 + i as u64)
            .collect();
        for threads in [1, 2, 3, 8] {
            let pool = WorkPool::new(threads);
            let got = pool.parallel_map_indexed(&items, |i, x| x * 3 + i as u64);
            assert_eq!(got, serial, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let pool = WorkPool::new(4);
        assert_eq!(
            pool.parallel_map_indexed(&[] as &[u8], |_, x| *x),
            Vec::<u8>::new()
        );
        assert_eq!(
            pool.parallel_map_indexed(&[7u8], |i, x| *x as usize + i),
            vec![7]
        );
    }

    #[test]
    fn single_thread_pool_spawns_no_workers_and_runs_inline() {
        let pool = WorkPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert!(pool.workers.is_empty());
        let on_caller = std::thread::current().id();
        pool.scope(|scope| {
            scope.spawn(move || {
                assert_eq!(std::thread::current().id(), on_caller);
            });
        });
    }

    #[test]
    fn scope_joins_borrowed_tasks() {
        let pool = WorkPool::new(4);
        let mut slots = vec![0u32; 64];
        pool.scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move || *slot = i as u32 + 1);
            }
        });
        assert!(slots.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let pool = WorkPool::new(2);
        let hit = AtomicU32::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| panic!("boom from task"));
                scope.spawn(|| {
                    hit.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        assert!(result.is_err());
        // The sibling task still ran to completion before the unwind.
        assert_eq!(hit.load(Ordering::Relaxed), 1);
        // And the pool remains fully usable afterwards.
        let got = pool.parallel_map_indexed(&[1u64, 2, 3], |_, x| x * 2);
        assert_eq!(got, vec![2, 4, 6]);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = WorkPool::new(2);
        let items: Vec<u64> = (0..64).collect();
        let got = pool.parallel_map_indexed(&items, |_, &x| {
            // A pooled task that itself fans out on the same pool.
            let inner = pool.parallel_map_indexed(&[x, x + 1], |_, &y| y * 2);
            inner.iter().sum::<u64>()
        });
        let want: Vec<u64> = items.iter().map(|&x| 2 * x + 2 * (x + 1)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn stats_count_tasks_and_drain_to_empty_queues() {
        let pool = WorkPool::new(2);
        let before = pool.stats().tasks_total;
        let _ = pool.parallel_map_indexed(&(0..256).collect::<Vec<u32>>(), |_, x| x + 1);
        let stats = pool.stats();
        assert!(stats.tasks_total > before, "chunks executed as tasks");
        assert_eq!(stats.queued, 0, "scope drained every queue");
        assert_eq!(stats.threads, 2);
    }

    #[test]
    fn observer_sees_each_task() {
        let pool = WorkPool::new(2);
        let seen = Arc::new(AtomicU32::new(0));
        let seen2 = Arc::clone(&seen);
        pool.set_observer(Some(Arc::new(move |_d| {
            seen2.fetch_add(1, Ordering::Relaxed);
        })));
        let _ = pool.parallel_map_indexed(&(0..100).collect::<Vec<u32>>(), |_, x| x * x);
        assert!(seen.load(Ordering::Relaxed) > 0);
        pool.set_observer(None);
    }

    #[test]
    fn concurrent_scopes_from_many_threads() {
        let pool = Arc::new(WorkPool::new(4));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for round in 0..20u64 {
                        let items: Vec<u64> = (0..200).collect();
                        let got =
                            pool.parallel_map_indexed(&items, |i, x| x + t + round + i as u64);
                        let want: Vec<u64> = items
                            .iter()
                            .enumerate()
                            .map(|(i, x)| x + t + round + i as u64)
                            .collect();
                        assert_eq!(got, want);
                    }
                });
            }
        });
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 2 ")), Some(2));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("-1")), None);
        assert_eq!(parse_threads(Some("nope")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
        assert!(global().threads() >= 1);
    }
}
