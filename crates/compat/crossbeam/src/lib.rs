//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the part the workspace uses is provided: `crossbeam::thread::scope`
//! with spawn closures receiving a `&Scope` (crossbeam's signature),
//! implemented on top of `std::thread::scope` (stable since 1.63).
//!
//! Semantics difference worth knowing: crossbeam's `scope` returns
//! `Err(panic payload)` when a child thread panics, while std propagates
//! the panic out of `scope` itself. Every call site in this workspace
//! immediately `.expect(...)`s the result, so a child panic aborts the
//! computation either way — the panic message just originates one frame
//! earlier here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope handle passed to spawn closures, mirroring
    /// `crossbeam::thread::Scope`.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// nested spawns work, exactly like crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let me = *self;
            self.inner.spawn(move || f(&me))
        }
    }

    /// Runs `f` with a scope in which borrowing, scoped threads can be
    /// spawned; joins them all before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let mut sums = vec![0u64; 2];
        super::thread::scope(|scope| {
            for (slot, chunk) in sums.iter_mut().zip(data.chunks(2)) {
                scope.spawn(move |_| {
                    *slot = chunk.iter().sum();
                });
            }
        })
        .expect("threads must not panic");
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .unwrap();
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
