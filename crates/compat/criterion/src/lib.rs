//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `criterion_group!`, `criterion_main!` —
//! with a deliberately simple measurement loop: a short warm-up, then
//! timed batches until a fixed measurement budget elapses, reporting the
//! mean wall-clock time per iteration (and derived throughput). No
//! statistics, no HTML reports; stdout only. Good enough to rank
//! implementations and track orders of magnitude, which is what the
//! harness needs offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
            measurement: Duration::from_millis(400),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_function("bench", f);
        group.finish();
    }
}

/// Identifier `function_name/parameter` for a bench within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Work-per-iteration declaration for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's measurement loop is
    /// time-budgeted rather than sample-counted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time budget per bench.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Declares throughput for subsequent benches in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benches a routine under the given id.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            measurement: self.measurement,
            mean_ns: 0.0,
        };
        f(&mut b);
        self.report(&id.to_string(), b.mean_ns);
    }

    /// Benches a routine that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl Display, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (stdout spacing only).
    pub fn finish(&mut self) {
        println!();
    }

    fn report(&self, id: &str, mean_ns: f64) {
        let per_iter = format_ns(mean_ns);
        match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                let rate = n as f64 / (mean_ns * 1e-9);
                println!(
                    "{}/{id:<28} {per_iter:>14}/iter   {:>14} elem/s",
                    self.name,
                    format_rate(rate)
                );
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                let rate = n as f64 / (mean_ns * 1e-9);
                println!(
                    "{}/{id:<28} {per_iter:>14}/iter   {:>14} B/s",
                    self.name,
                    format_rate(rate)
                );
            }
            _ => println!("{}/{id:<28} {per_iter:>14}/iter", self.name),
        }
    }
}

/// Passed to bench closures; `iter` runs and times the routine.
pub struct Bencher {
    measurement: Duration,
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean ns/iteration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up and batch-size calibration: grow the batch until one
        // batch takes ≥ ~5% of the measurement budget.
        let mut batch: u64 = 1;
        let calibration_floor = self.measurement.as_secs_f64() * 0.05;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed().as_secs_f64();
            if elapsed >= calibration_floor || batch >= 1 << 20 {
                break;
            }
            batch = (batch * 4).min(1 << 20);
        }
        // Measurement: run whole batches until the budget elapses.
        let started = Instant::now();
        let mut iters: u64 = 0;
        let mut spent = Duration::ZERO;
        while spent < self.measurement {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            spent = started.elapsed();
            iters += batch;
            let _ = t;
        }
        self.mean_ns = spent.as_secs_f64() * 1e9 / iters.max(1) as f64;
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn format_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}K", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Declares a bench entry point running each target in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.measurement_time(Duration::from_millis(20));
        group.throughput(Throughput::Elements(10));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            ran = true;
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", "tau0.5").to_string(), "f/tau0.5");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
