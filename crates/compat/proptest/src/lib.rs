//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds with no registry access, so this shim provides
//! the subset of proptest the test suites use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * [`Strategy`] with `prop_map`, numeric range strategies, tuple
//!   strategies up to arity 6, and [`collection::vec`],
//! * [`Just`], [`Strategy::boxed`] / [`BoxedStrategy`], and the
//!   [`prop_oneof!`] macro (uniform over its arms; the real crate's
//!   `weight => strategy` arms are not supported).
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the assertion message;
//!   generation is fully deterministic (seeded from the test name), so a
//!   failure reproduces exactly on re-run.
//! * **Fixed case count** (default 128) instead of adaptive forking.
//! * `prop_assume!` rejections retry up to `16 × cases` times, then the
//!   test passes vacuously on the cases it did run.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic generator driving value production (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator for a named test: same name, same stream.
    pub fn for_test(name: &str) -> Self {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for b in name.bytes() {
            state = mix(state ^ u64::from(b));
        }
        Self { state }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix_no_add(self.state)
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift; the bias is irrelevant for test-case generation.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn mix(z: u64) -> u64 {
    mix_no_add(z.wrapping_add(0x9E37_79B9_7F4A_7C15))
}

fn mix_no_add(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 128 }
    }
}

/// Marker returned by [`prop_assume!`] rejections.
#[derive(Debug)]
pub struct Rejected;

/// A value generator: the minimal strategy abstraction.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so differently-shaped strategies of the
    /// same value type can share a container (what [`prop_oneof!`] arms
    /// need).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice over type-erased arms — what [`prop_oneof!`] builds.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof of zero arms");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = u64::from(self.end - self.start) ;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_unsigned_range!(u8, u16, u32);

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64);

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from `size` and elements
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `use proptest::prelude::*;` consumer expects.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Chooses uniformly among differently-shaped strategies producing the
/// same value type. Unlike real proptest, arms are unweighted.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Rejects the current case (retried with fresh inputs) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::Rejected);
        }
    };
}

/// Declares property tests. See the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let __strategies = ($($strat,)+);
            let __max_attempts = u64::from(__config.cases) * 16;
            let mut __accepted: u64 = 0;
            let mut __attempts: u64 = 0;
            while __accepted < u64::from(__config.cases) && __attempts < __max_attempts {
                __attempts += 1;
                let ($($arg,)+) = $crate::Strategy::generate(&__strategies, &mut __rng);
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::Rejected> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if __outcome.is_ok() {
                    __accepted += 1;
                }
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = crate::Strategy::generate(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
            let s = crate::Strategy::generate(&(1usize..4), &mut rng);
            assert!((1..4).contains(&s));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = crate::collection::vec((0u32..50, 0.0f32..1.0), 1..20);
        let mut a = crate::TestRng::for_test("same");
        let mut b = crate::TestRng::for_test("same");
        for _ in 0..50 {
            assert_eq!(
                crate::Strategy::generate(&strat, &mut a),
                crate::Strategy::generate(&strat, &mut b)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_runs_and_binds_args(x in 0u64..100, ys in crate::collection::vec(0u32..10, 0..5)) {
            prop_assert!(x < 100);
            prop_assert!(ys.len() < 5, "len {}", ys.len());
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn prop_map_applies(doubled in (0u32..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn oneof_draws_from_every_arm(
            xs in crate::collection::vec(
                prop_oneof![
                    Just(0u32),
                    (10u32..20).prop_map(|v| v),
                    (2u32..5, 100u32..200).prop_map(|(a, b)| a * b),
                ],
                64..65,
            )
        ) {
            for x in xs {
                prop_assert!(
                    x == 0 || (10..20).contains(&x) || (200..1000).contains(&x),
                    "value {} from no arm", x
                );
            }
        }
    }
}
