//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace's binary container format uses:
//! [`BytesMut`] as an append-only builder ([`BufMut`] little-endian
//! writers), frozen into [`Bytes`], a cursor-consuming reader ([`Buf`]
//! little-endian readers). No refcounted slicing — the containers here
//! are plain `Vec<u8>` under the hood, which is all the I/O layer needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Read side: a cursor over bytes.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes `dst.len()` bytes into `dst`.
    ///
    /// # Panics
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// True when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Consumes a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes({
            let mut b = [0u8; 4];
            self.copy_to_slice(&mut b);
            b
        })
    }

    /// Consumes a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

/// Write side: an append-only byte sink.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Immutable byte container with a consuming read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Creates an empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a new container.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Self {
            data: src.to_vec(),
            pos: 0,
        }
    }

    /// Unconsumed bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when fully consumed (or empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the unconsumed bytes into a `Vec`.
    #[allow(clippy::wrong_self_convention)]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Self::copy_from_slice(src)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "copy_to_slice of {} bytes with {} remaining",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// Growable byte builder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(64);
        b.put_slice(b"VSJC");
        b.put_u32_le(7);
        b.put_u64_le(u64::MAX - 3);
        b.put_f32_le(1.5);
        b.put_f64_le(-2.25);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 4 + 4 + 8 + 4 + 8);
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"VSJC");
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert!(!r.has_remaining());
    }

    #[test]
    fn from_vec_and_to_vec() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let mut b2 = b.clone();
        let mut one = [0u8; 1];
        b2.copy_to_slice(&mut one);
        assert_eq!(b2.to_vec(), vec![2, 3]);
        assert_eq!(&*b, &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "copy_to_slice")]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let mut two = [0u8; 2];
        b.copy_to_slice(&mut two);
    }
}
