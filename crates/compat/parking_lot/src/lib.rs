//! Offline stand-in for the `parking_lot` crate.
//!
//! The workspace builds with no registry access, so the handful of
//! external crates it uses are vendored as minimal shims implementing
//! exactly the API surface we consume. This one wraps `std::sync`
//! primitives with `parking_lot`'s panic-free, poison-transparent
//! signatures: a thread that panics while holding a guard poisons the
//! std lock, and these wrappers simply hand the inner value back out
//! (`parking_lot` has no poisoning at all, so this matches its
//! semantics for every program that does not rely on poison recovery).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{self, TryLockError};

/// Reader–writer lock with `parking_lot`'s unpoisonable API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared read guard (std's guard, re-exported).
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard (std's guard, re-exported).
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(t: T) -> Self {
        Self(sync::RwLock::new(t))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Mutex with `parking_lot`'s unpoisonable API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Exclusive mutex guard (std's guard, re-exported).
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(t: T) -> Self {
        Self(sync::Mutex::new(t))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write_get_mut() {
        let mut l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
        *l.get_mut() = 3;
        assert_eq!(l.into_inner(), 3);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn try_variants() {
        let l = RwLock::new(0);
        let g = l.read();
        assert!(l.try_read().is_some());
        drop(g);
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
