//! Offline stand-in for the `memmap2` crate.
//!
//! Implements the one thing the workspace's out-of-core tier needs:
//! a **read-only** mapping of a whole file that derefs to `&[u8]`. On
//! Unix this is a direct `mmap(2)`/`munmap(2)` pair over the raw file
//! descriptor (the symbols come from the libc that `std` already
//! links — no external crate needed). Anywhere else, or whenever the
//! syscall fails, the file is simply read into an owned buffer; the
//! caller sees the same `&[u8]` either way and can ask
//! [`Mmap::is_mapped`] which path it got.
//!
//! The mapping is private and read-only (`PROT_READ`, `MAP_PRIVATE`),
//! so it can never write back to the file. A mapping stays valid after
//! the underlying path is renamed or unlinked — exactly the property
//! checkpoint rotation relies on.

#![warn(missing_docs)]

use std::fs::File;
use std::io::Read;

/// A read-only view of an entire file: either a real memory mapping or
/// an owned in-memory copy (the fallback). Dereferences to `&[u8]`.
#[derive(Debug)]
pub struct Mmap {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    #[cfg(unix)]
    Mapped(sys::Mapping),
    Owned(Vec<u8>),
}

impl Mmap {
    /// Maps the whole file read-only. Falls back to reading the file
    /// into memory when mapping is unavailable (non-Unix targets,
    /// zero-length files, or an `mmap` failure).
    ///
    /// # Errors
    /// Propagates I/O errors from the metadata probe or the fallback
    /// read. A failed `mmap` syscall itself is not an error — it
    /// triggers the buffered fallback.
    pub fn map(file: &File) -> std::io::Result<Self> {
        let len = file.metadata()?.len();
        #[cfg(unix)]
        {
            if len > 0 && len <= usize::MAX as u64 {
                if let Some(mapping) = sys::Mapping::new(file, len as usize) {
                    return Ok(Self {
                        inner: Inner::Mapped(mapping),
                    });
                }
            }
        }
        let mut buf = Vec::with_capacity(len.min(usize::MAX as u64) as usize);
        let mut file = file.try_clone()?;
        file.read_to_end(&mut buf)?;
        Ok(Self {
            inner: Inner::Owned(buf),
        })
    }

    /// True when this view is a real `mmap(2)` mapping rather than the
    /// owned-buffer fallback.
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped(_) => true,
            Inner::Owned(_) => false,
        }
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped(m) => m.as_slice(),
            Inner::Owned(v) => v,
        }
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

// The mapping is read-only and the fd is not retained, so sharing
// across threads is safe.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    // These symbols live in the platform libc that std links on every
    // Unix target; declaring them here avoids a registry dependency.
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// An owned `mmap(2)` region, unmapped on drop.
    #[derive(Debug)]
    pub(crate) struct Mapping {
        ptr: *mut c_void,
        len: usize,
    }

    impl Mapping {
        /// Maps `len` bytes of `file` read-only; `None` when the
        /// syscall fails (caller falls back to a buffered read).
        pub(crate) fn new(file: &File, len: usize) -> Option<Self> {
            // SAFETY: fd is a valid open descriptor for the lifetime of
            // the call, addr=null lets the kernel pick the placement,
            // and PROT_READ|MAP_PRIVATE can never alias writable state.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr.is_null() || ptr as isize == -1 {
                return None;
            }
            Some(Self { ptr, len })
        }

        pub(crate) fn as_slice(&self) -> &[u8] {
            // SAFETY: ptr..ptr+len is exactly the region mmap returned,
            // mapped PROT_READ for the lifetime of self.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: exact (addr, len) pair returned by mmap, unmapped
            // exactly once.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(bytes: &[u8]) -> (std::path::PathBuf, File) {
        let path = std::env::temp_dir().join(format!(
            "vsj-memmap-test-{}-{}",
            std::process::id(),
            bytes.len()
        ));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        f.sync_all().unwrap();
        (path.clone(), File::open(&path).unwrap())
    }

    #[test]
    fn maps_file_contents() {
        let payload: Vec<u8> = (0..4096u32).flat_map(|i| i.to_le_bytes()).collect();
        let (path, file) = temp_file(&payload);
        let map = Mmap::map(&file).unwrap();
        assert_eq!(&map[..], &payload[..]);
        #[cfg(unix)]
        assert!(map.is_mapped());
        // Mapping must survive unlink of the backing path.
        std::fs::remove_file(&path).unwrap();
        assert_eq!(&map[..], &payload[..]);
    }

    #[test]
    fn empty_file_falls_back_to_owned() {
        let (path, file) = temp_file(&[]);
        let map = Mmap::map(&file).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_mapped());
        std::fs::remove_file(path).unwrap();
    }
}
