//! Write-ahead log of ingest operations between checkpoints.
//!
//! Two on-disk generations live here:
//!
//! * **v3 (current)** — a [`WalSet`]: per-shard *segment chains*
//!   stitched by a global sequence number. Durable ingests grab a
//!   sequence from an atomic counter and append to their own shard's
//!   active segment in parallel — writers on different shards never
//!   contend on the log. Recovery merge-replays all chains in global
//!   sequence order, reproducing the exact serialized history;
//!   `publish` records act as **sequence barriers** (they are only
//!   logged while no ingest is in flight, so "every record with a
//!   smaller sequence is applied, none with a larger one" holds both
//!   live and under replay). Acknowledgement is governed by a
//!   per-shard group-commit ticket protocol
//!   ([`FsyncPolicy`]).
//! * **v1/v2 (legacy)** — the single-file, single-writer `wal.vsjw`
//!   log. Still fully readable: recovery version-sniffs the directory,
//!   replays legacy logs through [`read_wal`], and migrates the tail
//!   into v3 segments (see
//!   [`EstimationEngine::recover`](crate::EstimationEngine::recover)).
//!
//! ## v3 file layout (all little-endian)
//!
//! Each shard `s` owns a chain of segment files
//! `wal-SSSS-IIIIIIII.vsjw` (shard, segment index, both zero-padded
//! decimal):
//!
//! ```text
//! segment header:
//!   magic       4 bytes  "VSJW"
//!   version     u32      3
//!   fingerprint u64      identity hash of the engine config
//!   shard       u32      owning shard (must match the file name)
//!   segment     u64      chain index (must match the file name)
//! per record:
//!   len      u32      payload length in bytes
//!   checksum u64      checksum64 of the payload
//!   payload:
//!     seq u64      global sequence number
//!     op  u8       1 = insert, 2 = remove, 3 = upsert, 4 = publish
//!     id  u64      global id (0 for publish)
//!     (insert/upsert) nnz u32, nnz × u32 indices, nnz × f32 weights
//! ```
//!
//! Within a chain, sequence numbers strictly increase (the sequence is
//! assigned under the shard's append lock), so file order is sequence
//! order per shard and a k-way merge by `seq` reconstructs the global
//! history. Gaps between *shards* are legal — they mark un-acknowledged
//! records lost to a crash on some other shard, which commute with
//! everything that survived (operations on one global id always land on
//! one shard; cross-shard ordering is only constrained at publish
//! barriers, and a barrier is only acknowledged after everything before
//! it).
//!
//! ## Torn tails vs. corruption
//!
//! Only the **last** segment of a chain may carry a torn tail (a crash
//! mid-append); the reader truncates it to the last whole record,
//! exactly like the legacy log. Sealed segments were fsync'd at
//! rotation, so damage inside one — or a missing segment in the middle
//! of a chain, or a duplicated sequence number — is real corruption and
//! fails loudly. Header damage is never survivable (with one
//! exception: a last segment shorter than a header is the residue of a
//! crash mid-rotation and is recreated empty).
//!
//! ## Checkpoint truncation is O(1)
//!
//! A checkpoint no longer rewrites the log. It records its cut sequence
//! in the checkpoint metadata; [`WalSet::truncate`] then *unlinks whole
//! sealed segments* whose records are all at or below the retention
//! horizon — the minimum cut over every kept checkpoint generation —
//! and touches no surviving byte.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use vsj_datasets::io::{checksum64, decode_vector, encode_vector_into};
use vsj_obs::{Histogram, HistogramSpec, Registry};
use vsj_vector::SparseVector;

use crate::config::FsyncPolicy;
use crate::persist::PersistError;
use crate::GlobalId;

const WAL_MAGIC: &[u8; 4] = b"VSJW";
/// Newest legacy (single-file) version.
const WAL_LEGACY_VERSION: u32 = 2;
/// Oldest readable version (v1 lacks publish records but is otherwise
/// identical).
const WAL_MIN_VERSION: u32 = 1;
/// The segmented per-shard format.
const WAL_SEGMENT_VERSION: u32 = 3;
const LEGACY_HEADER_LEN: u64 = 24;
const SEGMENT_HEADER_LEN: u64 = 28;

const OP_INSERT: u8 = 1;
const OP_REMOVE: u8 = 2;
const OP_UPSERT: u8 = 3;
const OP_PUBLISH: u8 = 4;

/// One logged ingest operation, borrowed form (what writers append).
#[derive(Debug, Clone, Copy)]
pub enum WalOp<'a> {
    /// A fresh vector under an engine-assigned id.
    Insert(GlobalId, &'a SparseVector),
    /// Removal of a live id (only *applied* removes are logged).
    Remove(GlobalId),
    /// Insert-or-replace under a caller-chosen id.
    Upsert(GlobalId, &'a SparseVector),
    /// A snapshot publication — explicit calls, auto-publish boundary
    /// crossings on durable engines, and checkpoint cuts are all
    /// logged, because parallel replay cannot re-derive them from the
    /// ingest stream alone. A publish record is a **sequence barrier**:
    /// it is only appended while no ingest is in flight.
    Publish,
}

/// One logged ingest operation, owned form (what replay consumes).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// See [`WalOp::Insert`].
    Insert {
        /// Engine-assigned global id.
        id: GlobalId,
        /// The ingested vector.
        vector: SparseVector,
    },
    /// See [`WalOp::Remove`].
    Remove {
        /// The removed global id.
        id: GlobalId,
    },
    /// See [`WalOp::Upsert`].
    Upsert {
        /// Caller-chosen global id.
        id: GlobalId,
        /// The replacement vector.
        vector: SparseVector,
    },
    /// See [`WalOp::Publish`].
    Publish,
}

fn encode_payload(op: WalOp<'_>) -> Bytes {
    let (tag, id, vector) = match op {
        WalOp::Insert(id, v) => (OP_INSERT, id, Some(v)),
        WalOp::Remove(id) => (OP_REMOVE, id, None),
        WalOp::Upsert(id, v) => (OP_UPSERT, id, Some(v)),
        WalOp::Publish => (OP_PUBLISH, 0, None),
    };
    let nnz = vector.map_or(0, SparseVector::nnz);
    let mut buf = BytesMut::with_capacity(9 + 4 + nnz * 8);
    buf.put_slice(&[tag]);
    buf.put_u64_le(id);
    if let Some(v) = vector {
        encode_vector_into(&mut buf, v);
    }
    buf.freeze()
}

fn decode_payload(mut data: Bytes) -> Result<WalRecord, String> {
    if data.remaining() < 9 {
        return Err("payload shorter than op + id".into());
    }
    let mut tag = [0u8; 1];
    data.copy_to_slice(&mut tag);
    let id = data.get_u64_le();
    let vector = match tag[0] {
        OP_REMOVE | OP_PUBLISH => None,
        OP_INSERT | OP_UPSERT => Some(decode_vector(&mut data).map_err(|e| e.to_string())?),
        t => return Err(format!("unknown op tag {t}")),
    };
    if data.has_remaining() {
        return Err(format!("{} trailing payload bytes", data.remaining()));
    }
    Ok(match (tag[0], vector) {
        (OP_INSERT, Some(vector)) => WalRecord::Insert { id, vector },
        (OP_UPSERT, Some(vector)) => WalRecord::Upsert { id, vector },
        (OP_REMOVE, None) => WalRecord::Remove { id },
        (OP_PUBLISH, None) => WalRecord::Publish,
        _ => unreachable!("tag/vector pairing checked above"),
    })
}

fn frame(payload: &Bytes) -> Bytes {
    let mut frame = BytesMut::with_capacity(12 + payload.len());
    frame.put_u32_le(payload.len() as u32);
    frame.put_u64_le(checksum64(payload.as_slice()));
    frame.put_slice(payload.as_slice());
    frame.freeze()
}

/// Walks length+checksum frames from `data`, handing each valid payload
/// to `sink` until the tail tears (short frame, checksum or decode
/// failure). Returns the byte length of the valid prefix (relative to
/// `start`) and whether the whole input was consumed cleanly.
fn walk_frames(
    mut data: Bytes,
    start: u64,
    mut sink: impl FnMut(Bytes, u64) -> bool,
) -> (u64, bool) {
    let mut offset = start;
    while data.has_remaining() {
        if data.remaining() < 12 {
            return (offset, false);
        }
        let len = data.get_u32_le() as usize;
        let checksum = data.get_u64_le();
        if data.remaining() < len {
            return (offset, false);
        }
        let mut payload = vec![0u8; len];
        data.copy_to_slice(&mut payload);
        if checksum64(&payload) != checksum {
            return (offset, false);
        }
        let end = offset + 12 + len as u64;
        if !sink(Bytes::from(payload), end) {
            return (offset, false);
        }
        offset = end;
    }
    (offset, true)
}

// --- legacy single-file log (v1/v2) ----------------------------------------

/// A validated legacy record plus its position in the log.
#[derive(Debug, Clone, PartialEq)]
pub struct WalEntry {
    /// Sequence number (`base_seq + index + 1`).
    pub seq: u64,
    /// The operation.
    pub record: WalRecord,
    /// Byte offset one past this record's frame — the log is
    /// prefix-consistent when truncated at exactly this offset.
    pub end_offset: u64,
}

/// Everything [`read_wal`] learned about a legacy log file.
#[derive(Debug)]
pub struct WalReplay {
    /// `base_seq` from the header.
    pub base_seq: u64,
    /// Config fingerprint from the header.
    pub fingerprint: u64,
    /// The valid record prefix.
    pub entries: Vec<WalEntry>,
    /// `false` when bytes past the valid prefix were ignored (torn tail
    /// or in-place corruption — indistinguishable, both recover the
    /// prefix).
    pub clean: bool,
    /// Byte length of the valid prefix (header + whole records).
    pub valid_len: u64,
}

fn encode_legacy_header(base_seq: u64, fingerprint: u64) -> Bytes {
    let mut buf = BytesMut::with_capacity(LEGACY_HEADER_LEN as usize);
    buf.put_slice(WAL_MAGIC);
    buf.put_u32_le(WAL_LEGACY_VERSION);
    buf.put_u64_le(base_seq);
    buf.put_u64_le(fingerprint);
    buf.freeze()
}

/// Parses and validates a **legacy v1/v2** single-file WAL. See the
/// module docs for the torn-tail policy.
///
/// # Errors
/// [`PersistError`] when the file is unreadable or its *header* is
/// damaged (wrong magic/version, short header) — header damage means
/// the log's provenance is unknown, which recovery must not guess at.
pub fn read_wal(path: &Path) -> Result<WalReplay, PersistError> {
    let raw = std::fs::read(path)?;
    let mut data = Bytes::from(raw);
    if data.remaining() < LEGACY_HEADER_LEN as usize {
        return Err(PersistError::Corrupt(format!(
            "WAL header truncated ({} bytes)",
            data.remaining()
        )));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != WAL_MAGIC {
        return Err(PersistError::Corrupt("not a VSJW write-ahead log".into()));
    }
    let version = data.get_u32_le();
    if !(WAL_MIN_VERSION..=WAL_LEGACY_VERSION).contains(&version) {
        return Err(PersistError::Corrupt(format!(
            "unsupported single-file WAL version {version} (v3 logs are segmented)"
        )));
    }
    let base_seq = data.get_u64_le();
    let fingerprint = data.get_u64_le();

    let mut entries = Vec::new();
    let (valid_len, clean) = walk_frames(data, LEGACY_HEADER_LEN, |payload, end| {
        let Ok(record) = decode_payload(payload) else {
            return false;
        };
        entries.push(WalEntry {
            seq: base_seq + entries.len() as u64 + 1,
            record,
            end_offset: end,
        });
        true
    });
    Ok(WalReplay {
        base_seq,
        fingerprint,
        entries,
        clean,
        valid_len,
    })
}

/// Append handle on a **legacy** single-file WAL. Kept for migration
/// tests and tooling — the engine itself writes v3 [`WalSet`] segments.
///
/// The writer is **failure-latching**: once any append, sync, or reset
/// hits an I/O error it poisons itself and refuses every further
/// append.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    base_seq: u64,
    seq: u64,
    /// Byte length of the durable prefix (header + whole records).
    offset: u64,
    poisoned: bool,
}

impl WalWriter {
    /// Creates (truncating) a fresh legacy log starting at `base_seq`.
    pub fn create(path: &Path, base_seq: u64, fingerprint: u64) -> Result<Self, PersistError> {
        let mut file = File::create(path)?;
        file.write_all(encode_legacy_header(base_seq, fingerprint).as_slice())?;
        file.sync_data()?;
        Ok(Self {
            file,
            base_seq,
            seq: base_seq,
            offset: LEGACY_HEADER_LEN,
            poisoned: false,
        })
    }

    /// Appends one operation, returning its sequence number.
    ///
    /// # Errors
    /// I/O failures — which also poison the writer: the failed frame is
    /// truncated away (best effort) and every subsequent append is
    /// refused, so no later write can be acknowledged on top of a torn
    /// log.
    pub fn append(&mut self, op: WalOp<'_>) -> Result<u64, PersistError> {
        if self.poisoned {
            return Err(PersistError::Corrupt(
                "WAL writer is poisoned by an earlier I/O failure".into(),
            ));
        }
        let frame = frame(&encode_payload(op));
        if let Err(e) = self.file.write_all(frame.as_slice()) {
            self.poisoned = true;
            // Best effort: drop the torn frame so the on-disk prefix
            // stays clean even if the process survives.
            let _ = self.file.set_len(self.offset);
            return Err(e.into());
        }
        self.offset += frame.len() as u64;
        self.seq += 1;
        Ok(self.seq)
    }

    /// Marks the writer failed; every further append is refused.
    pub fn poison(&mut self) {
        self.poisoned = true;
    }

    /// Whether the writer has latched a failure.
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Sequence number of the last appended record.
    #[inline]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Records appended since creation.
    #[inline]
    pub fn pending(&self) -> u64 {
        self.seq - self.base_seq
    }

    /// Flushes pending bytes and syncs file contents to disk.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        if let Err(e) = self.file.sync_data() {
            self.poisoned = true;
            return Err(e.into());
        }
        Ok(())
    }
}

// --- v3 segmented per-shard log --------------------------------------------

/// File name of shard `shard`'s segment `index`.
pub fn segment_file_name(shard: usize, index: u64) -> String {
    format!("wal-{shard:04}-{index:08}.vsjw")
}

fn parse_segment_file_name(name: &str) -> Option<(usize, u64)> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".vsjw")?;
    let (shard, index) = rest.split_once('-')?;
    if shard.len() != 4 || index.len() != 8 {
        return None;
    }
    Some((shard.parse().ok()?, index.parse().ok()?))
}

/// The segment files of shard `shard` present in `dir`, ascending by
/// chain index.
pub fn segment_files(dir: &Path, shard: usize) -> Vec<PathBuf> {
    let mut found = Vec::new();
    if let Ok(listing) = std::fs::read_dir(dir) {
        for entry in listing.flatten() {
            let name = entry.file_name();
            if let Some((s, index)) = name.to_str().and_then(parse_segment_file_name) {
                if s == shard {
                    found.push((index, entry.path()));
                }
            }
        }
    }
    found.sort_unstable_by_key(|(index, _)| *index);
    found.into_iter().map(|(_, path)| path).collect()
}

fn encode_segment_header(fingerprint: u64, shard: usize, index: u64) -> Bytes {
    let mut buf = BytesMut::with_capacity(SEGMENT_HEADER_LEN as usize);
    buf.put_slice(WAL_MAGIC);
    buf.put_u32_le(WAL_SEGMENT_VERSION);
    buf.put_u64_le(fingerprint);
    buf.put_u32_le(shard as u32);
    buf.put_u64_le(index);
    buf.freeze()
}

/// One validated v3 record: the global sequence number, the shard whose
/// chain carried it, and the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqEntry {
    /// Global sequence number.
    pub seq: u64,
    /// Shard whose segment chain holds the record.
    pub shard: usize,
    /// The operation.
    pub record: WalRecord,
    /// Byte offset one past this record's frame within its segment.
    pub end_offset: u64,
}

/// Everything [`read_segment`] learned about one segment file.
#[derive(Debug)]
pub struct SegmentReplay {
    /// Config fingerprint from the header.
    pub fingerprint: u64,
    /// Owning shard from the header.
    pub shard: usize,
    /// Chain index from the header.
    pub index: u64,
    /// The valid record prefix.
    pub entries: Vec<SeqEntry>,
    /// `false` when bytes past the valid prefix were ignored.
    pub clean: bool,
    /// Byte length of the valid prefix (header + whole records).
    pub valid_len: u64,
}

/// Parses and validates one v3 segment file.
///
/// # Errors
/// Unreadable file or damaged header (wrong magic/version/owner). A
/// torn record tail is *not* an error here — the caller decides whether
/// this segment was allowed to tear (only the last of a chain is).
pub fn read_segment(path: &Path) -> Result<SegmentReplay, PersistError> {
    let raw = std::fs::read(path)?;
    let mut data = Bytes::from(raw);
    if data.remaining() < SEGMENT_HEADER_LEN as usize {
        return Err(PersistError::Corrupt(format!(
            "WAL segment header truncated ({} bytes) in {}",
            data.remaining(),
            path.display()
        )));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != WAL_MAGIC {
        return Err(PersistError::Corrupt(format!(
            "{} is not a VSJW segment",
            path.display()
        )));
    }
    let version = data.get_u32_le();
    if version != WAL_SEGMENT_VERSION {
        return Err(PersistError::Corrupt(format!(
            "unsupported WAL segment version {version} in {}",
            path.display()
        )));
    }
    let fingerprint = data.get_u64_le();
    let shard = data.get_u32_le() as usize;
    let index = data.get_u64_le();
    if let Some((name_shard, name_index)) = path
        .file_name()
        .and_then(|n| n.to_str())
        .and_then(parse_segment_file_name)
    {
        if name_shard != shard || name_index != index {
            return Err(PersistError::Corrupt(format!(
                "segment {} claims shard {shard} index {index} in its header",
                path.display()
            )));
        }
    }
    let mut entries = Vec::new();
    let (valid_len, clean) = walk_frames(data, SEGMENT_HEADER_LEN, |mut payload, end| {
        if payload.remaining() < 8 {
            return false;
        }
        let seq = payload.get_u64_le();
        let Ok(record) = decode_payload(payload) else {
            return false;
        };
        entries.push(SeqEntry {
            seq,
            shard,
            record,
            end_offset: end,
        });
        true
    });
    Ok(SegmentReplay {
        fingerprint,
        shard,
        index,
        entries,
        clean,
        valid_len,
    })
}

/// A claim ticket for one appended record: [`WalSet::commit`] blocks on
/// it until the record is flushed per the engine's [`FsyncPolicy`].
#[derive(Debug, Clone, Copy)]
pub struct WalTicket {
    /// The record's global sequence number.
    pub seq: u64,
    shard: usize,
    ticket: u64,
}

/// Histogram handles a [`WalSet`] records its timings into — normally
/// registered against the owning engine's metric [`Registry`]. The set
/// keeps its own plain fsync/rotation *counts* for [`WalSetStats`]; the
/// histograms add the latency and batch-size distributions on top
/// (their `_count` series double as registry-side event counters).
#[derive(Debug, Clone)]
pub struct WalMetrics {
    /// Segment-file fsync latency, µs (group-commit leaders, seals,
    /// checkpoint syncs).
    pub fsync_us: Histogram,
    /// Full [`WalSet::commit`] wait, µs — time from calling commit to
    /// the durable acknowledgement, leader or follower. Not recorded
    /// under [`FsyncPolicy::Never`] (commit is a no-op there).
    pub commit_wait_us: Histogram,
    /// Tickets covered per completed flush — the group-commit batch
    /// size distribution.
    pub group_batch: Histogram,
    /// Segment rotation duration (seal fsync + next-segment create), µs.
    pub rotation_us: Histogram,
    /// Checkpoint truncation duration (sealed-segment unlink sweep), µs.
    pub truncation_us: Histogram,
}

impl WalMetrics {
    /// Handles that record nowhere — the default for a [`WalSet`] used
    /// outside an engine (tests, tooling).
    pub fn disabled() -> Self {
        let none = HistogramSpec::disabled();
        Self {
            fsync_us: Histogram::new(none),
            commit_wait_us: Histogram::new(none),
            group_batch: Histogram::new(none),
            rotation_us: Histogram::new(none),
            truncation_us: Histogram::new(none),
        }
    }

    /// Registers the WAL series against `registry` (idempotent — the
    /// registry dedupes by name, so re-registration returns the same
    /// underlying handles).
    pub fn registered(registry: &Registry, latency: HistogramSpec, size: HistogramSpec) -> Self {
        Self {
            fsync_us: registry.histogram(
                "vsj_wal_fsync_duration_us",
                "WAL segment fsync latency in microseconds",
                latency,
            ),
            commit_wait_us: registry.histogram(
                "vsj_wal_commit_wait_us",
                "Durable-acknowledgement wait in WAL commit in microseconds",
                latency,
            ),
            group_batch: registry.histogram(
                "vsj_wal_group_commit_batch",
                "Tickets covered per completed WAL flush",
                size,
            ),
            rotation_us: registry.histogram(
                "vsj_wal_rotation_duration_us",
                "WAL segment rotation duration in microseconds",
                latency,
            ),
            truncation_us: registry.histogram(
                "vsj_wal_truncation_duration_us",
                "WAL checkpoint truncation duration in microseconds",
                latency,
            ),
        }
    }
}

/// Point-in-time counters of a [`WalSet`].
#[derive(Debug, Clone)]
pub struct WalSetStats {
    /// Live segment files across all shards.
    pub segments: u64,
    /// fsync calls issued (appends, seals, checkpoint syncs).
    pub fsyncs: u64,
    /// Segment rotations (seal + fresh segment).
    pub rotations: u64,
    /// Per-shard records not yet covered by a checkpoint.
    pub shard_pending: Vec<u64>,
}

struct ShardWalState {
    file: File,
    /// Chain index of the active segment.
    index: u64,
    /// Valid bytes in the active segment (header + whole frames).
    offset: u64,
    /// Global sequence of the last record in the active segment (0 when
    /// it has none).
    last_seq: u64,
    /// Whether the active segment holds any records.
    has_records: bool,
    /// Append tickets issued on this shard.
    appended: u64,
    /// Tickets covered by a completed flush (fsync or seal).
    flushed: u64,
    /// A leader is mid-fsync.
    flushing: bool,
    /// When the oldest unflushed record was appended.
    batch_opened: Option<Instant>,
    /// Sealed segments still on disk: `(chain index, last seq)`.
    sealed: Vec<(u64, u64)>,
    /// Latched failure (mirrored by the set-wide poison flag).
    failed: bool,
}

struct ShardWal {
    state: Mutex<ShardWalState>,
    flushed: Condvar,
    /// Records past the checkpoint cut, readable without the lock.
    pending: AtomicU64,
}

/// The v3 write-ahead log: one segment chain per shard, stitched by a
/// global sequence counter. See the module docs for the format and the
/// merge-replay/barrier invariants.
///
/// All methods take `&self`; per-shard appends synchronize on their
/// shard's lock only, so writers on different shards proceed in
/// parallel. The set is **failure-latching**: any I/O error on any
/// shard poisons the whole set and every further append is refused
/// (a deployment that cannot persist must not keep acknowledging
/// writes it may lose).
pub struct WalSet {
    dir: PathBuf,
    fingerprint: u64,
    policy: FsyncPolicy,
    segment_bytes: u64,
    shards: Vec<ShardWal>,
    /// Last assigned global sequence number.
    last_seq: AtomicU64,
    poisoned: AtomicBool,
    fsyncs: AtomicU64,
    rotations: AtomicU64,
    metrics: WalMetrics,
}

impl std::fmt::Debug for WalSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalSet")
            .field("dir", &self.dir)
            .field("shards", &self.shards.len())
            .field("last_seq", &self.last_seq.load(Ordering::Relaxed))
            .field("policy", &self.policy)
            .finish()
    }
}

/// Removes every v3 segment file in `dir` (any shard, any index).
pub fn remove_all_segments(dir: &Path) -> Result<(), PersistError> {
    if let Ok(listing) = std::fs::read_dir(dir) {
        for entry in listing.flatten() {
            let name = entry.file_name();
            if name
                .to_str()
                .is_some_and(|n| parse_segment_file_name(n).is_some() || n.ends_with(".vsjw.tmp"))
            {
                std::fs::remove_file(entry.path())?;
            }
        }
    }
    Ok(())
}

/// Fsyncs `dir` itself so directory entries (segment creations and
/// unlinks) survive power loss — file-data fsync alone does not make
/// the *name* durable, and a vanished segment file would read as a
/// silently shorter chain.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), PersistError> {
    // Directory fsync is not supported everywhere (e.g. Windows);
    // failure to open-or-sync a directory is ignored rather than
    // poisoning the log, matching fs::rename-based code elsewhere.
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
    Ok(())
}

fn create_segment(
    dir: &Path,
    fingerprint: u64,
    shard: usize,
    index: u64,
) -> Result<File, PersistError> {
    let path = dir.join(segment_file_name(shard, index));
    let mut file = File::create(&path)?;
    file.write_all(encode_segment_header(fingerprint, shard, index).as_slice())?;
    // The header must be durable before records land behind it: page
    // cache flush order is not write order, so an unsynced header could
    // be lost while later record pages survive, orphaning the chain.
    file.sync_data()?;
    // And the directory entry must be durable before any record in
    // this segment is acknowledged: a power cut that keeps the sealed
    // predecessor but loses this file's *name* would silently shorten
    // the chain (the predecessor would read as a legal torn tail).
    sync_dir(dir)?;
    Ok(file)
}

impl WalSet {
    /// Creates a fresh set: one empty segment per shard, sequence
    /// counter starting past `base_seq`. Any pre-existing segment files
    /// in `dir` are removed first (they can only be stale residue of an
    /// interrupted migration).
    pub fn create(
        dir: &Path,
        shards: usize,
        base_seq: u64,
        fingerprint: u64,
        policy: FsyncPolicy,
        segment_bytes: u64,
    ) -> Result<Self, PersistError> {
        assert!(shards >= 1, "a WalSet needs at least one shard");
        remove_all_segments(dir)?;
        let mut shard_wals = Vec::with_capacity(shards);
        for shard in 0..shards {
            let file = create_segment(dir, fingerprint, shard, 0)?;
            shard_wals.push(ShardWal {
                state: Mutex::new(ShardWalState {
                    file,
                    index: 0,
                    offset: SEGMENT_HEADER_LEN,
                    last_seq: 0,
                    has_records: false,
                    appended: 0,
                    flushed: 0,
                    flushing: false,
                    batch_opened: None,
                    sealed: Vec::new(),
                    failed: false,
                }),
                flushed: Condvar::new(),
                pending: AtomicU64::new(0),
            });
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            fingerprint,
            policy,
            segment_bytes,
            shards: shard_wals,
            last_seq: AtomicU64::new(base_seq),
            poisoned: AtomicBool::new(false),
            fsyncs: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
            metrics: WalMetrics::disabled(),
        })
    }

    /// Opens an existing set for appending: validates every chain
    /// (contiguous indices, clean sealed segments, torn tail only on
    /// the last segment — which is truncated back to its last whole
    /// record), merges all records by global sequence, and positions
    /// each shard's writer at the end of its chain. Returns the set
    /// plus the merged history; the caller replays entries past
    /// `applied_seq` (records at or below it are covered by the
    /// checkpoint).
    ///
    /// # Errors
    /// Fingerprint mismatches, missing chains or mid-chain segments,
    /// damage inside a sealed segment, duplicate or non-monotone
    /// sequence numbers, or a non-empty history that ends before
    /// `applied_seq` (records the checkpoint claims to cover are
    /// missing; fully empty chains are the legal residue of a
    /// checkpoint cut that sealed and dropped every segment).
    pub fn open(
        dir: &Path,
        shards: usize,
        applied_seq: u64,
        fingerprint: u64,
        policy: FsyncPolicy,
        segment_bytes: u64,
    ) -> Result<(Self, Vec<SeqEntry>), PersistError> {
        assert!(shards >= 1, "a WalSet needs at least one shard");
        let mut shard_wals = Vec::with_capacity(shards);
        let mut entries: Vec<SeqEntry> = Vec::new();
        let mut max_seq = 0u64;
        for shard in 0..shards {
            let files = segment_files(dir, shard);
            if files.is_empty() {
                return Err(PersistError::Corrupt(format!(
                    "shard {shard} has no WAL segment chain"
                )));
            }
            let last_file = files.len() - 1;
            let mut prev_index: Option<u64> = None;
            let mut prev_seq = 0u64;
            let mut sealed = Vec::new();
            let mut active: Option<(File, u64, u64, u64, bool)> = None;
            for (fi, path) in files.iter().enumerate() {
                let is_last = fi == last_file;
                // A last segment shorter than its header is the residue
                // of a crash mid-rotation: recreate it empty.
                if is_last
                    && std::fs::metadata(path).map(|m| m.len()).unwrap_or(0) < SEGMENT_HEADER_LEN
                {
                    let index = path
                        .file_name()
                        .and_then(|n| n.to_str())
                        .and_then(parse_segment_file_name)
                        .map(|(_, index)| index)
                        .ok_or_else(|| {
                            PersistError::Corrupt(format!("unparseable segment {}", path.display()))
                        })?;
                    if let Some(prev) = prev_index {
                        if index != prev + 1 {
                            return Err(PersistError::Corrupt(format!(
                                "shard {shard} chain jumps from segment {prev} to {index}"
                            )));
                        }
                    }
                    let file = create_segment(dir, fingerprint, shard, index)?;
                    active = Some((file, index, SEGMENT_HEADER_LEN, prev_seq, false));
                    prev_index = Some(index);
                    continue;
                }
                let replay = read_segment(path)?;
                if replay.fingerprint != fingerprint {
                    return Err(PersistError::ConfigMismatch(format!(
                        "WAL segment fingerprint {:#x} does not match the checkpoint's engine config ({:#x})",
                        replay.fingerprint, fingerprint
                    )));
                }
                if let Some(prev) = prev_index {
                    if replay.index != prev + 1 {
                        return Err(PersistError::Corrupt(format!(
                            "shard {shard} chain jumps from segment {prev} to {} — a middle segment is missing",
                            replay.index
                        )));
                    }
                }
                prev_index = Some(replay.index);
                if !replay.clean && !is_last {
                    return Err(PersistError::Corrupt(format!(
                        "sealed segment {} of shard {shard} is damaged (it was fsync'd at rotation; only the last segment may tear)",
                        replay.index
                    )));
                }
                for e in &replay.entries {
                    if e.seq <= prev_seq {
                        return Err(PersistError::Corrupt(format!(
                            "shard {shard} sequence numbers are not strictly increasing ({} after {prev_seq})",
                            e.seq
                        )));
                    }
                    prev_seq = e.seq;
                }
                max_seq = max_seq.max(prev_seq);
                if is_last {
                    // Truncate a torn tail back to the last whole record
                    // and position the writer after the prefix.
                    let file = OpenOptions::new().write(true).open(path)?;
                    file.set_len(replay.valid_len)?;
                    let mut file = file;
                    use std::io::Seek;
                    file.seek(std::io::SeekFrom::End(0))?;
                    active = Some((
                        file,
                        replay.index,
                        replay.valid_len,
                        prev_seq,
                        !replay.entries.is_empty(),
                    ));
                } else {
                    let seg_last = replay.entries.last().map(|e| e.seq).unwrap_or(prev_seq);
                    sealed.push((replay.index, seg_last));
                }
                entries.extend(replay.entries);
            }
            let (file, index, offset, last_seq, has_records) =
                active.expect("chain is non-empty, so a last segment was opened");
            shard_wals.push(ShardWal {
                state: Mutex::new(ShardWalState {
                    file,
                    index,
                    offset,
                    last_seq,
                    has_records,
                    appended: 0,
                    flushed: 0,
                    flushing: false,
                    batch_opened: None,
                    sealed,
                    failed: false,
                }),
                flushed: Condvar::new(),
                pending: AtomicU64::new(0),
            });
        }
        entries.sort_by_key(|e| e.seq);
        if entries.windows(2).any(|w| w[0].seq == w[1].seq) {
            return Err(PersistError::Corrupt(
                "two WAL records carry the same global sequence number".into(),
            ));
        }
        // A history that ends before the checkpoint's cut means records
        // the checkpoint claims to cover are missing — unless every
        // chain is empty, the legal residue of a checkpoint that sealed
        // and dropped every segment (the whole log was covered; there
        // is no tail to replay).
        if max_seq < applied_seq && !entries.is_empty() {
            return Err(PersistError::Corrupt(format!(
                "WAL ends at seq {max_seq} but the checkpoint covers {applied_seq}"
            )));
        }
        for e in &entries {
            if e.seq > applied_seq {
                shard_wals[e.shard].pending.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok((
            Self {
                dir: dir.to_path_buf(),
                fingerprint,
                policy,
                segment_bytes,
                shards: shard_wals,
                last_seq: AtomicU64::new(max_seq.max(applied_seq)),
                poisoned: AtomicBool::new(false),
                fsyncs: AtomicU64::new(0),
                rotations: AtomicU64::new(0),
                metrics: WalMetrics::disabled(),
            },
            entries,
        ))
    }

    /// Replaces the (default disabled) metric handles — builder-style,
    /// called once right after [`create`](Self::create) /
    /// [`open`](Self::open) by the owning engine.
    pub fn with_metrics(mut self, metrics: WalMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Number of shard chains.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Last assigned global sequence number.
    #[inline]
    pub fn last_seq(&self) -> u64 {
        self.last_seq.load(Ordering::SeqCst)
    }

    /// Whether the set has latched a failure.
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Latches the whole set failed; every further append is refused.
    /// Used by the engine when checkpointing fails.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        for shard in &self.shards {
            // Waiters blocked in commit() must observe the failure.
            shard.state.lock().expect("wal shard lock").failed = true;
            shard.flushed.notify_all();
        }
    }

    /// Records on shard `shard` not yet covered by a checkpoint.
    /// Lock-free.
    #[inline]
    pub fn shard_pending(&self, shard: usize) -> u64 {
        self.shards[shard].pending.load(Ordering::Relaxed)
    }

    /// The deepest per-shard backlog (records past the checkpoint cut).
    /// Lock-free; the serving layer's shed signal.
    pub fn max_shard_pending(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.pending.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }

    fn poison_err(&self) -> PersistError {
        PersistError::Corrupt("WAL set is poisoned by an earlier I/O failure".into())
    }

    /// Appends one operation to `shard`'s active segment, assigning the
    /// next global sequence number, and returns the ticket to
    /// [`commit`](Self::commit). The frame is written (buffered) before
    /// return — the caller applies the operation, then commits.
    ///
    /// Sequence assignment happens under the shard's append lock, so
    /// within one shard file order is sequence order; publish barriers
    /// are the engine's job (it only appends them while no ingest is in
    /// flight).
    ///
    /// # Errors
    /// I/O failures (which poison the set; the torn frame is truncated
    /// away best-effort) or an already-poisoned set.
    pub fn append(&self, shard: usize, op: WalOp<'_>) -> Result<WalTicket, PersistError> {
        if self.is_poisoned() {
            return Err(self.poison_err());
        }
        let shard_wal = &self.shards[shard];
        let mut st = shard_wal.state.lock().expect("wal shard lock");
        if st.failed {
            return Err(self.poison_err());
        }
        if st.offset >= self.segment_bytes && st.has_records {
            if let Err(e) = self.rotate(shard, &mut st) {
                st.failed = true;
                drop(st);
                self.poison();
                return Err(e);
            }
            shard_wal.flushed.notify_all();
        }
        let seq = self.last_seq.fetch_add(1, Ordering::SeqCst) + 1;
        let op_payload = encode_payload(op);
        let mut payload = BytesMut::with_capacity(8 + op_payload.len());
        payload.put_u64_le(seq);
        payload.put_slice(op_payload.as_slice());
        let frame = frame(&payload.freeze());
        if let Err(e) = st.file.write_all(frame.as_slice()) {
            let _ = st.file.set_len(st.offset);
            st.failed = true;
            drop(st);
            self.poison();
            return Err(e.into());
        }
        st.offset += frame.len() as u64;
        st.last_seq = seq;
        st.has_records = true;
        st.appended += 1;
        let ticket = st.appended;
        if st.batch_opened.is_none() {
            st.batch_opened = Some(Instant::now());
        }
        shard_wal.pending.fetch_add(1, Ordering::Relaxed);
        Ok(WalTicket { seq, shard, ticket })
    }

    /// Seals the active segment (fsync, covering every outstanding
    /// ticket on this shard) and opens the next one. Called with the
    /// shard lock held.
    fn rotate(&self, shard: usize, st: &mut ShardWalState) -> Result<(), PersistError> {
        let rotation_started = Instant::now();
        st.file.sync_data()?;
        self.metrics
            .fsync_us
            .record_duration(rotation_started.elapsed());
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        let covered = st.appended - st.flushed;
        if covered > 0 {
            self.metrics.group_batch.record(covered);
        }
        st.flushed = st.appended;
        st.batch_opened = None;
        st.sealed.push((st.index, st.last_seq));
        let next = st.index + 1;
        st.file = create_segment(&self.dir, self.fingerprint, shard, next)?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed); // header sync
        st.index = next;
        st.offset = SEGMENT_HEADER_LEN;
        st.has_records = false;
        self.rotations.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .rotation_us
            .record_duration(rotation_started.elapsed());
        Ok(())
    }

    /// Blocks until the ticket's record is flushed per the engine's
    /// [`FsyncPolicy`] — the acknowledgement point of a durable write.
    /// Under `Never` this returns immediately; under `Always` /
    /// `GroupCommit` the calling thread waits for (or performs, as the
    /// elected leader) the fsync that covers its record, shared with
    /// every other writer waiting on the same shard.
    ///
    /// # Errors
    /// A flush failure on this shard (which poisons the set) — the
    /// caller must not acknowledge the write.
    pub fn commit(&self, ticket: &WalTicket) -> Result<(), PersistError> {
        let (max_batch, max_delay) = match self.policy {
            FsyncPolicy::Never => return Ok(()),
            FsyncPolicy::Always => (1, Duration::ZERO),
            FsyncPolicy::GroupCommit {
                max_batch,
                max_delay,
            } => (max_batch.max(1), max_delay),
        };
        let wait_started = Instant::now();
        let shard_wal = &self.shards[ticket.shard];
        let mut st = shard_wal.state.lock().expect("wal shard lock");
        loop {
            if st.flushed >= ticket.ticket {
                self.metrics
                    .commit_wait_us
                    .record_duration(wait_started.elapsed());
                return Ok(());
            }
            if st.failed || self.is_poisoned() {
                return Err(self.poison_err());
            }
            let waiting = st.appended - st.flushed;
            let elapsed = st
                .batch_opened
                .map(|t| t.elapsed())
                .unwrap_or(Duration::ZERO);
            let due = waiting >= max_batch || elapsed >= max_delay;
            if due && !st.flushing {
                // Become the flush leader: fsync outside the lock so
                // same-shard appends (and fellow waiters) keep moving.
                st.flushing = true;
                let covers = st.appended;
                let file = match st.file.try_clone() {
                    Ok(file) => file,
                    Err(e) => {
                        st.flushing = false;
                        st.failed = true;
                        drop(st);
                        self.poison();
                        return Err(e.into());
                    }
                };
                drop(st);
                let fsync_started = Instant::now();
                let result = file.sync_data();
                self.metrics
                    .fsync_us
                    .record_duration(fsync_started.elapsed());
                st = shard_wal.state.lock().expect("wal shard lock");
                st.flushing = false;
                match result {
                    Ok(()) => {
                        self.fsyncs.fetch_add(1, Ordering::Relaxed);
                        let batch = covers.saturating_sub(st.flushed);
                        if batch > 0 {
                            self.metrics.group_batch.record(batch);
                        }
                        st.flushed = st.flushed.max(covers);
                        st.batch_opened = if st.appended > st.flushed {
                            Some(Instant::now())
                        } else {
                            None
                        };
                        shard_wal.flushed.notify_all();
                    }
                    Err(e) => {
                        st.failed = true;
                        drop(st);
                        self.poison();
                        return Err(e.into());
                    }
                }
                continue;
            }
            let wait = if due {
                // A leader is flushing; it will notify.
                Duration::from_millis(50)
            } else {
                max_delay
                    .saturating_sub(elapsed)
                    .max(Duration::from_micros(50))
            };
            let (guard, _) = shard_wal
                .flushed
                .wait_timeout(st, wait)
                .expect("wal shard lock");
            st = guard;
        }
    }

    /// The acknowledgement point of a **publish barrier**: under
    /// `Always`/`GroupCommit` this flushes *every* shard's chain, not
    /// just the barrier's own — an acknowledged barrier promises that
    /// the epoch it cut is reproducible, which requires every record
    /// below its sequence (on any shard) to be durable, acknowledged or
    /// not. Under `Never` it returns immediately, like any commit.
    pub fn commit_barrier(&self, _ticket: &WalTicket) -> Result<(), PersistError> {
        match self.policy {
            FsyncPolicy::Never => Ok(()),
            FsyncPolicy::Always | FsyncPolicy::GroupCommit { .. } => self.sync_all(),
        }
    }

    /// Fsyncs every shard's active segment, covering all outstanding
    /// tickets — the checkpoint-cut flush, independent of the policy.
    pub fn sync_all(&self) -> Result<(), PersistError> {
        for shard_wal in &self.shards {
            let mut st = shard_wal.state.lock().expect("wal shard lock");
            if st.failed {
                return Err(self.poison_err());
            }
            let fsync_started = Instant::now();
            if let Err(e) = st.file.sync_data() {
                st.failed = true;
                drop(st);
                self.poison();
                return Err(e.into());
            }
            self.metrics
                .fsync_us
                .record_duration(fsync_started.elapsed());
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
            let batch = st.appended - st.flushed;
            if batch > 0 {
                self.metrics.group_batch.record(batch);
            }
            st.flushed = st.appended;
            st.batch_opened = None;
            shard_wal.flushed.notify_all();
        }
        Ok(())
    }

    /// Seals every shard's active segment that holds records (fsync +
    /// fresh segment), so a following [`WalSet::truncate`] can drop the
    /// whole file the moment its records fall below the horizon.
    /// Called at the checkpoint cut: without this, the records logged
    /// since the last organic rotation would pin the active file — and
    /// every recovery would re-read and re-decode all of them — until
    /// enough new traffic rotated it out.
    ///
    /// # Errors
    /// Filesystem failures sealing or opening a segment.
    pub fn seal_active(&self) -> Result<(), PersistError> {
        for (shard, shard_wal) in self.shards.iter().enumerate() {
            let mut st = shard_wal.state.lock().expect("wal shard lock");
            if st.has_records {
                self.rotate(shard, &mut st)?;
            }
        }
        Ok(())
    }

    /// Marks a checkpoint cut: every record logged so far is covered,
    /// so the per-shard pending depths reset to zero.
    pub fn mark_cut(&self) {
        for shard in &self.shards {
            shard.pending.store(0, Ordering::Relaxed);
        }
    }

    /// Drops every **sealed** segment whose records all sit at or below
    /// `horizon` — O(dropped files) unlinks, zero bytes rewritten; no
    /// surviving file is touched. The horizon must be the minimum cut
    /// sequence over every checkpoint generation still on disk, so any
    /// kept generation can roll forward through the surviving chains.
    /// Returns how many segment files were removed.
    pub fn truncate(&self, horizon: u64) -> Result<u64, PersistError> {
        let truncation_started = Instant::now();
        let mut dropped = 0u64;
        for (shard, shard_wal) in self.shards.iter().enumerate() {
            let mut st = shard_wal.state.lock().expect("wal shard lock");
            let mut keep = Vec::with_capacity(st.sealed.len());
            for &(index, last_seq) in &st.sealed {
                if last_seq <= horizon {
                    std::fs::remove_file(self.dir.join(segment_file_name(shard, index)))?;
                    dropped += 1;
                } else {
                    keep.push((index, last_seq));
                }
            }
            st.sealed = keep;
        }
        if dropped > 0 {
            sync_dir(&self.dir)?;
        }
        self.metrics
            .truncation_us
            .record_duration(truncation_started.elapsed());
        Ok(dropped)
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> WalSetStats {
        let mut segments = 0u64;
        for shard in &self.shards {
            segments += shard.state.lock().expect("wal shard lock").sealed.len() as u64 + 1;
        }
        WalSetStats {
            segments,
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            rotations: self.rotations.load(Ordering::Relaxed),
            shard_pending: self
                .shards
                .iter()
                .map(|s| s.pending.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(members: &[u32]) -> SparseVector {
        SparseVector::binary_from_members(members.to_vec())
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("vsj_wal_unit")
            .join(format!("{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("vsj_wal_unit");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    // --- legacy single-file format -------------------------------------

    #[test]
    fn legacy_append_read_roundtrip() {
        let path = tmp("roundtrip.vsjw");
        let mut w = WalWriter::create(&path, 5, 0xABCD).unwrap();
        assert_eq!(w.append(WalOp::Insert(7, &v(&[1, 2, 3]))).unwrap(), 6);
        assert_eq!(w.append(WalOp::Remove(7)).unwrap(), 7);
        assert_eq!(w.append(WalOp::Upsert(9, &v(&[4]))).unwrap(), 8);
        assert_eq!(w.append(WalOp::Publish).unwrap(), 9);
        assert_eq!(w.pending(), 4);
        w.sync().unwrap();

        let replay = read_wal(&path).unwrap();
        assert!(replay.clean);
        assert_eq!(replay.base_seq, 5);
        assert_eq!(replay.fingerprint, 0xABCD);
        assert_eq!(replay.entries.len(), 4);
        assert_eq!(replay.entries[0].seq, 6);
        assert_eq!(
            replay.entries[0].record,
            WalRecord::Insert {
                id: 7,
                vector: v(&[1, 2, 3])
            }
        );
        assert_eq!(replay.entries[1].record, WalRecord::Remove { id: 7 });
        assert_eq!(
            replay.entries[2].record,
            WalRecord::Upsert {
                id: 9,
                vector: v(&[4])
            }
        );
        assert_eq!(replay.entries[3].record, WalRecord::Publish);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_1_logs_are_still_readable() {
        let path = tmp("v1.vsjw");
        let mut w = WalWriter::create(&path, 0, 7).unwrap();
        w.append(WalOp::Insert(0, &v(&[1, 2]))).unwrap();
        w.sync().unwrap();
        // Rewrite the header version field (offset 4) down to 1.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let replay = read_wal(&path).unwrap();
        assert!(replay.clean);
        assert_eq!(replay.entries.len(), 1);
        // A v3 version field in a single-file log is not a legacy log.
        bytes[4..8].copy_from_slice(&3u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_wal(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_torn_tail_yields_valid_prefix() {
        let path = tmp("torn.vsjw");
        let mut w = WalWriter::create(&path, 0, 1).unwrap();
        w.append(WalOp::Insert(0, &v(&[1, 2]))).unwrap();
        w.append(WalOp::Insert(1, &v(&[3, 4]))).unwrap();
        w.sync().unwrap();
        let full = std::fs::read(&path).unwrap();
        let first_end = read_wal(&path).unwrap().entries[0].end_offset as usize;
        // Every truncation point inside the second record keeps exactly
        // the first.
        for cut in first_end..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let replay = read_wal(&path).unwrap();
            assert_eq!(replay.entries.len(), 1, "cut at {cut}");
            assert_eq!(replay.clean, cut == first_end, "cut at {cut}");
            assert_eq!(replay.valid_len as usize, first_end);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_header_damage_fails_loudly() {
        let path = tmp("hdr.vsjw");
        WalWriter::create(&path, 0, 1).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_wal(&path).is_err());
        std::fs::write(&path, [1u8, 2]).unwrap();
        assert!(read_wal(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_poisoned_writer_refuses_appends() {
        let path = tmp("poison.vsjw");
        let mut w = WalWriter::create(&path, 0, 4).unwrap();
        w.append(WalOp::Insert(0, &v(&[1]))).unwrap();
        assert!(!w.is_poisoned());
        w.poison();
        assert!(w.is_poisoned());
        assert!(
            w.append(WalOp::Insert(1, &v(&[2]))).is_err(),
            "a poisoned writer must never acknowledge another record"
        );
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.entries.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    // --- v3 segmented format -------------------------------------------

    fn small_set(dir: &Path, shards: usize, policy: FsyncPolicy) -> WalSet {
        WalSet::create(dir, shards, 0, 0xFEED, policy, 1024).unwrap()
    }

    fn append_commit(wal: &WalSet, shard: usize, op: WalOp<'_>) -> u64 {
        let ticket = wal.append(shard, op).unwrap();
        wal.commit(&ticket).unwrap();
        ticket.seq
    }

    #[test]
    fn segmented_roundtrip_merges_by_sequence() {
        let dir = tmp_dir("seg_roundtrip");
        let wal = small_set(&dir, 3, FsyncPolicy::Never);
        // Interleave shards; seqs are global and strictly increasing.
        assert_eq!(append_commit(&wal, 1, WalOp::Insert(10, &v(&[1]))), 1);
        assert_eq!(append_commit(&wal, 2, WalOp::Insert(20, &v(&[2]))), 2);
        assert_eq!(append_commit(&wal, 0, WalOp::Publish), 3);
        assert_eq!(append_commit(&wal, 1, WalOp::Remove(10)), 4);
        assert_eq!(append_commit(&wal, 2, WalOp::Upsert(21, &v(&[3]))), 5);
        wal.sync_all().unwrap();
        drop(wal);

        let (wal, entries) = WalSet::open(&dir, 3, 0, 0xFEED, FsyncPolicy::Never, 1024).unwrap();
        assert_eq!(wal.last_seq(), 5);
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5], "merge-replay is seq-ordered");
        assert_eq!(entries[2].record, WalRecord::Publish);
        assert_eq!(entries[2].shard, 0);
        assert_eq!(entries[3].record, WalRecord::Remove { id: 10 });
        // applied_seq filtering is the caller's job, but pending honors it.
        let (wal, _) = WalSet::open(&dir, 3, 3, 0xFEED, FsyncPolicy::Never, 1024).unwrap();
        assert_eq!(wal.shard_pending(1), 1);
        assert_eq!(wal.shard_pending(2), 1);
        assert_eq!(wal.shard_pending(0), 0);
        assert_eq!(wal.max_shard_pending(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_seals_segments_and_truncate_drops_only_covered_files() {
        let dir = tmp_dir("seg_rotate");
        let wal = small_set(&dir, 2, FsyncPolicy::Never);
        // Big-ish vectors so the 1 KiB segments rotate quickly.
        let payload: Vec<u32> = (0..40).collect();
        let mut last = 0;
        for _ in 0..40 {
            last = append_commit(&wal, 0, WalOp::Insert(last, &v(&payload)));
        }
        let stats = wal.stats();
        assert!(stats.rotations >= 3, "1 KiB segments must have rotated");
        assert!(stats.segments >= 4);
        let files_before = segment_files(&dir, 0);
        assert!(files_before.len() >= 4);

        // Truncating at a mid-chain horizon drops exactly the sealed
        // segments fully at or below it — and rewrites nothing: every
        // surviving file is byte-identical.
        let survivors: Vec<(PathBuf, Vec<u8>)> = files_before
            .iter()
            .map(|p| (p.clone(), std::fs::read(p).unwrap()))
            .collect();
        let horizon = last / 2;
        let dropped = wal.truncate(horizon).unwrap();
        assert!(dropped >= 1, "some sealed segment is fully covered");
        let files_after = segment_files(&dir, 0);
        assert_eq!(files_after.len(), files_before.len() - dropped as usize);
        for (path, before) in &survivors {
            if files_after.contains(path) {
                assert_eq!(
                    &std::fs::read(path).unwrap(),
                    before,
                    "truncation must not rewrite surviving WAL bytes"
                );
            }
        }
        // The surviving chain still opens and still carries every
        // record past the horizon.
        wal.sync_all().unwrap();
        drop(wal);
        let (_, entries) =
            WalSet::open(&dir, 2, horizon, 0xFEED, FsyncPolicy::Never, 1024).unwrap();
        assert!(entries.iter().any(|e| e.seq > horizon));
        assert!(entries.windows(2).all(|w| w[0].seq < w[1].seq));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seal_and_truncate_at_head_drop_every_sealed_segment_idempotently() {
        // The compaction cut: seal every active chain, then truncate at
        // the head sequence. Every sealed file is covered, so exactly
        // one fresh (empty) active segment per shard survives and a
        // reopen replays zero records — recovery after a fold must
        // never re-decode a covered record.
        let dir = tmp_dir("seg_cut");
        let wal = small_set(&dir, 2, FsyncPolicy::Never);
        let payload: Vec<u32> = (0..40).collect();
        for i in 0..30 {
            append_commit(&wal, (i % 2) as usize, WalOp::Insert(i, &v(&payload)));
        }
        append_commit(&wal, 0, WalOp::Remove(3));
        let last = append_commit(&wal, 0, WalOp::Publish);
        wal.seal_active().unwrap();
        let dropped = wal.truncate(last).unwrap();
        assert!(dropped >= 2, "every sealed segment sits below the head");
        for shard in 0..2 {
            let files = segment_files(&dir, shard);
            assert_eq!(
                files.len(),
                1,
                "shard {shard}: only the fresh active survives"
            );
            assert!(
                read_segment(&files[0]).unwrap().entries.is_empty(),
                "shard {shard}: the surviving segment must carry no covered record"
            );
        }
        // Truncation at the same horizon again is a no-op: the sealed
        // lists were pruned, nothing is double-unlinked.
        assert_eq!(wal.truncate(last).unwrap(), 0);
        wal.sync_all().unwrap();
        drop(wal);
        let (wal, entries) = WalSet::open(&dir, 2, last, 0xFEED, FsyncPolicy::Never, 1024).unwrap();
        assert!(entries.is_empty(), "reopen replays nothing past the cut");
        // The reopened set keeps sequencing from the cut, so post-fold
        // traffic lands strictly above the horizon.
        assert_eq!(
            append_commit(&wal, 1, WalOp::Insert(99, &v(&[7]))),
            last + 1
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_on_last_segment_recovers_prefix_but_sealed_damage_is_loud() {
        let dir = tmp_dir("seg_torn");
        let wal = small_set(&dir, 1, FsyncPolicy::Never);
        let payload: Vec<u32> = (0..40).collect();
        for i in 0..40 {
            append_commit(&wal, 0, WalOp::Insert(i, &v(&payload)));
        }
        wal.sync_all().unwrap();
        drop(wal);
        let files = segment_files(&dir, 0);
        assert!(files.len() >= 3);

        // Torn tail on the LAST segment: prefix recovery.
        let last = files.last().unwrap();
        let bytes = std::fs::read(last).unwrap();
        std::fs::write(last, &bytes[..bytes.len() - 3]).unwrap();
        let (_, entries) = WalSet::open(&dir, 1, 0, 0xFEED, FsyncPolicy::Never, 1024).unwrap();
        assert!(entries.len() < 40, "torn record dropped");
        assert!(entries.windows(2).all(|w| w[0].seq + 1 == w[1].seq));

        // Damage inside a SEALED segment: loud.
        let sealed = &files[0];
        let mut bytes = std::fs::read(sealed).unwrap();
        let at = bytes.len() - 5;
        bytes[at] ^= 0xFF;
        std::fs::write(sealed, &bytes).unwrap();
        assert!(matches!(
            WalSet::open(&dir, 1, 0, 0xFEED, FsyncPolicy::Never, 1024),
            Err(PersistError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_middle_segment_fails_loudly() {
        let dir = tmp_dir("seg_gap");
        let wal = small_set(&dir, 1, FsyncPolicy::Never);
        let payload: Vec<u32> = (0..40).collect();
        for i in 0..40 {
            append_commit(&wal, 0, WalOp::Insert(i, &v(&payload)));
        }
        drop(wal);
        let files = segment_files(&dir, 0);
        assert!(files.len() >= 3);
        std::fs::remove_file(&files[1]).unwrap();
        let err = WalSet::open(&dir, 1, 0, 0xFEED, FsyncPolicy::Never, 1024).unwrap_err();
        assert!(
            err.to_string().contains("missing"),
            "expected a missing-segment error, got: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_mismatch_is_loud() {
        let dir = tmp_dir("seg_fp");
        let wal = small_set(&dir, 2, FsyncPolicy::Never);
        append_commit(&wal, 0, WalOp::Insert(0, &v(&[1])));
        drop(wal);
        assert!(matches!(
            WalSet::open(&dir, 2, 0, 0xBEEF, FsyncPolicy::Never, 1024),
            Err(PersistError::ConfigMismatch(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_sequence_numbers_fail_loudly() {
        let dir = tmp_dir("seg_dup");
        let wal = small_set(&dir, 2, FsyncPolicy::Never);
        append_commit(&wal, 0, WalOp::Insert(0, &v(&[1])));
        drop(wal);
        // Forge a second chain that reuses seq 1: a fresh one-shard set
        // in a scratch dir, its header rewritten to claim shard 1
        // (header bytes 16..20), dropped into the victim chain.
        let forge_dir = tmp_dir("seg_dup_forge");
        let forged = small_set(&forge_dir, 1, FsyncPolicy::Never);
        append_commit(&forged, 0, WalOp::Insert(9, &v(&[2])));
        drop(forged);
        let mut bytes = std::fs::read(forge_dir.join(segment_file_name(0, 0))).unwrap();
        bytes[16..20].copy_from_slice(&1u32.to_le_bytes());
        std::fs::write(dir.join(segment_file_name(1, 0)), &bytes).unwrap();
        let err = WalSet::open(&dir, 2, 0, 0xFEED, FsyncPolicy::Never, 1024).unwrap_err();
        assert!(
            err.to_string().contains("same global sequence"),
            "expected a duplicate-seq error, got: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&forge_dir).ok();
    }

    #[test]
    fn group_commit_shares_fsyncs_across_writers() {
        let dir = tmp_dir("seg_group");
        let wal = std::sync::Arc::new(
            WalSet::create(
                &dir,
                2,
                0,
                1,
                FsyncPolicy::GroupCommit {
                    max_batch: 8,
                    max_delay: Duration::from_millis(5),
                },
                1 << 20,
            )
            .unwrap(),
        );
        let writers = 4;
        let per_writer = 32;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let wal = wal.clone();
                scope.spawn(move || {
                    for i in 0..per_writer {
                        let shard = (w % 2) as usize;
                        let id = (w * 1000 + i) as u64;
                        let vec = v(&[i as u32]);
                        let ticket = wal.append(shard, WalOp::Insert(id, &vec)).unwrap();
                        wal.commit(&ticket).unwrap();
                    }
                });
            }
        });
        let stats = wal.stats();
        let total = (writers * per_writer) as u64;
        assert!(
            stats.fsyncs < total,
            "group commit must batch: {} fsyncs for {total} commits",
            stats.fsyncs
        );
        assert_eq!(wal.last_seq(), total);
        drop(wal);
        let (_, entries) = WalSet::open(&dir, 2, 0, 1, FsyncPolicy::Never, 1 << 20).unwrap();
        assert_eq!(entries.len(), total as usize, "every commit is durable");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn always_policy_fsyncs_every_quiet_commit() {
        let dir = tmp_dir("seg_always");
        let wal = small_set(&dir, 1, FsyncPolicy::Always);
        for i in 0..5 {
            append_commit(&wal, 0, WalOp::Insert(i, &v(&[1])));
        }
        assert!(
            wal.stats().fsyncs >= 5,
            "sequential Always commits each fsync"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn poisoned_set_refuses_appends_and_commits() {
        let dir = tmp_dir("seg_poison");
        let wal = small_set(&dir, 2, FsyncPolicy::Never);
        append_commit(&wal, 0, WalOp::Insert(0, &v(&[1])));
        wal.poison();
        assert!(wal.is_poisoned());
        assert!(wal.append(1, WalOp::Insert(1, &v(&[2]))).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_last_segment_is_recreated_as_torn_rotation() {
        let dir = tmp_dir("seg_shortlast");
        let wal = small_set(&dir, 1, FsyncPolicy::Never);
        let payload: Vec<u32> = (0..40).collect();
        for i in 0..40 {
            append_commit(&wal, 0, WalOp::Insert(i, &v(&payload)));
        }
        drop(wal);
        let files = segment_files(&dir, 0);
        let next_index = files.len() as u64;
        // Simulate a crash mid-rotation: the next segment file exists
        // but holds less than a header.
        std::fs::write(dir.join(segment_file_name(0, next_index)), [1u8, 2, 3]).unwrap();
        let (wal, entries) = WalSet::open(&dir, 1, 0, 0xFEED, FsyncPolicy::Never, 1024).unwrap();
        assert_eq!(entries.len(), 40, "no records lost to the torn rotation");
        // And the recreated segment accepts appends.
        append_commit(&wal, 0, WalOp::Insert(100, &v(&[1])));
        std::fs::remove_dir_all(&dir).ok();
    }
}
