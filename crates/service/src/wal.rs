//! Write-ahead log of ingest operations between checkpoints.
//!
//! Every durable-mode ingest (`insert` / `remove` / `upsert`) is
//! appended here *before* it is applied to the shards, under the same
//! lock that serializes durable writers — so the WAL order **is** the
//! apply order, and a checkpoint taken under that lock corresponds to an
//! exact record prefix. Recovery replays the records past the
//! checkpoint's cut through the engine's normal apply path, reproducing
//! the pre-crash live state (and its auto-publish epochs) bit for bit.
//!
//! ## File layout (all little-endian)
//!
//! ```text
//! header:
//!   magic       4 bytes  "VSJW"
//!   version     u32      1
//!   base_seq    u64      records ≤ base_seq live in the checkpoint
//!   fingerprint u64      identity hash of the engine config
//! per record:
//!   len      u32      payload length in bytes
//!   checksum u64      checksum64 of the payload
//!   payload:
//!     op  u8       1 = insert, 2 = remove, 3 = upsert, 4 = publish
//!     id  u64      global id (0 for publish)
//!     (insert/upsert) nnz u32, nnz × u32 indices, nnz × f32 weights
//! ```
//!
//! Version 2 added the `publish` record (explicit
//! [`EstimationEngine::publish`](crate::EstimationEngine::publish)
//! calls are logged so recovery reproduces manual epochs, not just
//! auto-publish ones); version-1 logs are still read — they simply
//! contain no publish records.
//!
//! Record `i` (0-based) carries implicit sequence number
//! `base_seq + i + 1`; the WAL is truncated (rewritten with a fresh
//! `base_seq`) at every checkpoint, so sequence numbers never repeat
//! within a storage directory.
//!
//! ## Torn tails vs. corruption
//!
//! [`read_wal`] validates records front to back and stops at the first
//! frame that is short, fails its checksum, or decodes to garbage. A
//! clean prefix plus a damaged tail is exactly what a crash mid-append
//! produces, so the reader reports the valid prefix (and where it ends)
//! rather than failing — recovery is *prefix-consistent*. Damage to the
//! header, by contrast, is never survivable and fails loudly.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use vsj_datasets::io::{checksum64, decode_vector, encode_vector_into};
use vsj_vector::SparseVector;

use crate::persist::PersistError;
use crate::GlobalId;

const WAL_MAGIC: &[u8; 4] = b"VSJW";
const WAL_VERSION: u32 = 2;
/// Oldest readable version (v1 lacks publish records but is otherwise
/// identical).
const WAL_MIN_VERSION: u32 = 1;
const HEADER_LEN: u64 = 24;

const OP_INSERT: u8 = 1;
const OP_REMOVE: u8 = 2;
const OP_UPSERT: u8 = 3;
const OP_PUBLISH: u8 = 4;

/// One logged ingest operation, borrowed form (what writers append).
#[derive(Debug, Clone, Copy)]
pub enum WalOp<'a> {
    /// A fresh vector under an engine-assigned id.
    Insert(GlobalId, &'a SparseVector),
    /// Removal of a live id (only *applied* removes are logged).
    Remove(GlobalId),
    /// Insert-or-replace under a caller-chosen id.
    Upsert(GlobalId, &'a SparseVector),
    /// An **explicit** snapshot publication (auto-publishes are not
    /// logged — replaying the ingests re-fires them at the same
    /// boundaries; explicit calls have no such trace and must be
    /// recorded to reproduce the epoch counter).
    Publish,
}

/// One logged ingest operation, owned form (what replay consumes).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// See [`WalOp::Insert`].
    Insert {
        /// Engine-assigned global id.
        id: GlobalId,
        /// The ingested vector.
        vector: SparseVector,
    },
    /// See [`WalOp::Remove`].
    Remove {
        /// The removed global id.
        id: GlobalId,
    },
    /// See [`WalOp::Upsert`].
    Upsert {
        /// Caller-chosen global id.
        id: GlobalId,
        /// The replacement vector.
        vector: SparseVector,
    },
    /// See [`WalOp::Publish`].
    Publish,
}

/// A validated record plus its position in the log.
#[derive(Debug, Clone, PartialEq)]
pub struct WalEntry {
    /// Sequence number (`base_seq + index + 1`).
    pub seq: u64,
    /// The operation.
    pub record: WalRecord,
    /// Byte offset one past this record's frame — the log is
    /// prefix-consistent when truncated at exactly this offset.
    pub end_offset: u64,
}

/// Everything [`read_wal`] learned about a log file.
#[derive(Debug)]
pub struct WalReplay {
    /// `base_seq` from the header.
    pub base_seq: u64,
    /// Config fingerprint from the header.
    pub fingerprint: u64,
    /// The valid record prefix.
    pub entries: Vec<WalEntry>,
    /// `false` when bytes past the valid prefix were ignored (torn tail
    /// or in-place corruption — indistinguishable, both recover the
    /// prefix).
    pub clean: bool,
    /// Byte length of the valid prefix (header + whole records).
    pub valid_len: u64,
}

fn encode_payload(op: WalOp<'_>) -> Bytes {
    let (tag, id, vector) = match op {
        WalOp::Insert(id, v) => (OP_INSERT, id, Some(v)),
        WalOp::Remove(id) => (OP_REMOVE, id, None),
        WalOp::Upsert(id, v) => (OP_UPSERT, id, Some(v)),
        WalOp::Publish => (OP_PUBLISH, 0, None),
    };
    let nnz = vector.map_or(0, SparseVector::nnz);
    let mut buf = BytesMut::with_capacity(9 + 4 + nnz * 8);
    buf.put_slice(&[tag]);
    buf.put_u64_le(id);
    if let Some(v) = vector {
        encode_vector_into(&mut buf, v);
    }
    buf.freeze()
}

fn decode_payload(mut data: Bytes) -> Result<WalRecord, String> {
    if data.remaining() < 9 {
        return Err("payload shorter than op + id".into());
    }
    let mut tag = [0u8; 1];
    data.copy_to_slice(&mut tag);
    let id = data.get_u64_le();
    let vector = match tag[0] {
        OP_REMOVE | OP_PUBLISH => None,
        OP_INSERT | OP_UPSERT => Some(decode_vector(&mut data).map_err(|e| e.to_string())?),
        t => return Err(format!("unknown op tag {t}")),
    };
    if data.has_remaining() {
        return Err(format!("{} trailing payload bytes", data.remaining()));
    }
    Ok(match (tag[0], vector) {
        (OP_INSERT, Some(vector)) => WalRecord::Insert { id, vector },
        (OP_UPSERT, Some(vector)) => WalRecord::Upsert { id, vector },
        (OP_REMOVE, None) => WalRecord::Remove { id },
        (OP_PUBLISH, None) => WalRecord::Publish,
        _ => unreachable!("tag/vector pairing checked above"),
    })
}

fn encode_header(base_seq: u64, fingerprint: u64) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_LEN as usize);
    buf.put_slice(WAL_MAGIC);
    buf.put_u32_le(WAL_VERSION);
    buf.put_u64_le(base_seq);
    buf.put_u64_le(fingerprint);
    buf.freeze()
}

/// Parses and validates a WAL file. See the module docs for the
/// torn-tail policy.
///
/// # Errors
/// [`PersistError`] when the file is unreadable or its *header* is
/// damaged (wrong magic/version, short header) — header damage means
/// the log's provenance is unknown, which recovery must not guess at.
pub fn read_wal(path: &Path) -> Result<WalReplay, PersistError> {
    let raw = std::fs::read(path)?;
    let mut data = Bytes::from(raw);
    if data.remaining() < HEADER_LEN as usize {
        return Err(PersistError::Corrupt(format!(
            "WAL header truncated ({} bytes)",
            data.remaining()
        )));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != WAL_MAGIC {
        return Err(PersistError::Corrupt("not a VSJW write-ahead log".into()));
    }
    let version = data.get_u32_le();
    if !(WAL_MIN_VERSION..=WAL_VERSION).contains(&version) {
        return Err(PersistError::Corrupt(format!(
            "unsupported WAL version {version}"
        )));
    }
    let base_seq = data.get_u64_le();
    let fingerprint = data.get_u64_le();

    let mut entries = Vec::new();
    let mut offset = HEADER_LEN;
    let mut clean = true;
    while data.has_remaining() {
        if data.remaining() < 12 {
            clean = false;
            break;
        }
        let len = data.get_u32_le() as usize;
        let checksum = data.get_u64_le();
        if data.remaining() < len {
            clean = false;
            break;
        }
        let mut payload = vec![0u8; len];
        data.copy_to_slice(&mut payload);
        if checksum64(&payload) != checksum {
            clean = false;
            break;
        }
        let Ok(record) = decode_payload(Bytes::from(payload)) else {
            clean = false;
            break;
        };
        offset += 12 + len as u64;
        entries.push(WalEntry {
            seq: base_seq + entries.len() as u64 + 1,
            record,
            end_offset: offset,
        });
    }
    Ok(WalReplay {
        base_seq,
        fingerprint,
        entries,
        clean,
        valid_len: offset,
    })
}

/// Append handle on a WAL file.
///
/// The writer is **failure-latching**: once any append, sync, or reset
/// hits an I/O error it poisons itself and refuses every further
/// append. Without the latch, a torn frame left by one failed append
/// would make all *later* (successfully written) records unrecoverable
/// — the reader stops at the first bad frame — while their writers
/// believed them durable.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    base_seq: u64,
    seq: u64,
    fingerprint: u64,
    /// Byte length of the durable prefix (header + whole records).
    offset: u64,
    poisoned: bool,
}

impl WalWriter {
    /// Creates (truncating) a fresh log starting at `base_seq`.
    pub fn create(path: &Path, base_seq: u64, fingerprint: u64) -> Result<Self, PersistError> {
        let mut file = File::create(path)?;
        file.write_all(encode_header(base_seq, fingerprint).as_slice())?;
        file.sync_data()?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            base_seq,
            seq: base_seq,
            fingerprint,
            offset: HEADER_LEN,
            poisoned: false,
        })
    }

    /// Opens an existing log for appending: validates it, truncates any
    /// torn tail back to the last whole record, and positions the writer
    /// after that prefix. Returns the writer plus the validated entries
    /// (recovery replays the ones past the checkpoint cut).
    ///
    /// # Errors
    /// Header damage, I/O failures, or a `fingerprint` mismatch (the log
    /// was written by a differently-configured engine and replaying it
    /// would silently corrupt the index).
    pub fn open_append(
        path: &Path,
        fingerprint: u64,
    ) -> Result<(Self, Vec<WalEntry>), PersistError> {
        let replay = read_wal(path)?;
        if replay.fingerprint != fingerprint {
            return Err(PersistError::ConfigMismatch(format!(
                "WAL fingerprint {:#x} does not match the checkpoint's engine config ({:#x})",
                replay.fingerprint, fingerprint
            )));
        }
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(replay.valid_len)?;
        let mut file = file;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))?;
        let seq = replay.base_seq + replay.entries.len() as u64;
        Ok((
            Self {
                file,
                path: path.to_path_buf(),
                base_seq: replay.base_seq,
                seq,
                fingerprint,
                offset: replay.valid_len,
                poisoned: false,
            },
            replay.entries,
        ))
    }

    /// Appends one operation, returning its sequence number. The frame
    /// is flushed to the file before the caller may apply the operation
    /// (write-ahead ordering).
    ///
    /// # Errors
    /// I/O failures — which also poison the writer: the failed frame is
    /// truncated away (best effort) and every subsequent append is
    /// refused, so no later write can be acknowledged on top of a torn
    /// log.
    pub fn append(&mut self, op: WalOp<'_>) -> Result<u64, PersistError> {
        if self.poisoned {
            return Err(PersistError::Corrupt(
                "WAL writer is poisoned by an earlier I/O failure".into(),
            ));
        }
        let payload = encode_payload(op);
        let mut frame = BytesMut::with_capacity(12 + payload.len());
        frame.put_u32_le(payload.len() as u32);
        frame.put_u64_le(checksum64(payload.as_slice()));
        frame.put_slice(payload.as_slice());
        let frame = frame.freeze();
        if let Err(e) = self.file.write_all(frame.as_slice()) {
            self.poisoned = true;
            // Best effort: drop the torn frame so the on-disk prefix
            // stays clean even if the process survives.
            let _ = self.file.set_len(self.offset);
            return Err(e.into());
        }
        self.offset += frame.len() as u64;
        self.seq += 1;
        Ok(self.seq)
    }

    /// Marks the writer failed; every further append is refused. Used
    /// by the engine when checkpointing fails — a deployment that
    /// cannot persist must not keep acknowledging writes it may lose.
    pub fn poison(&mut self) {
        self.poisoned = true;
    }

    /// Whether the writer has latched a failure.
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Sequence number of the last appended (or recovered) record.
    #[inline]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Records appended since the last checkpoint cut.
    #[inline]
    pub fn pending(&self) -> u64 {
        self.seq - self.base_seq
    }

    /// Truncates the log after a durable checkpoint at `base_seq`: a
    /// fresh header-only file is written beside the log and atomically
    /// renamed over it, so a crash at any point leaves either the old
    /// complete log or the new empty one — never a half-truncated file.
    pub fn reset(&mut self, base_seq: u64) -> Result<(), PersistError> {
        match self.reset_inner(base_seq) {
            Ok(()) => Ok(()),
            Err(e) => {
                // The old log may still be intact, but the writer's view
                // of it is now uncertain — latch the failure.
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn reset_inner(&mut self, base_seq: u64) -> Result<(), PersistError> {
        let tmp = self.path.with_extension("vsjw.tmp");
        let mut file = File::create(&tmp)?;
        file.write_all(encode_header(base_seq, self.fingerprint).as_slice())?;
        file.sync_data()?;
        std::fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.base_seq = base_seq;
        self.seq = base_seq;
        self.offset = HEADER_LEN;
        Ok(())
    }

    /// Flushes pending bytes and syncs file contents to disk.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        if let Err(e) = self.file.sync_data() {
            self.poisoned = true;
            return Err(e.into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(members: &[u32]) -> SparseVector {
        SparseVector::binary_from_members(members.to_vec())
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("vsj_wal_unit");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_read_roundtrip() {
        let path = tmp("roundtrip.vsjw");
        let mut w = WalWriter::create(&path, 5, 0xABCD).unwrap();
        assert_eq!(w.append(WalOp::Insert(7, &v(&[1, 2, 3]))).unwrap(), 6);
        assert_eq!(w.append(WalOp::Remove(7)).unwrap(), 7);
        assert_eq!(w.append(WalOp::Upsert(9, &v(&[4]))).unwrap(), 8);
        assert_eq!(w.append(WalOp::Publish).unwrap(), 9);
        assert_eq!(w.pending(), 4);
        w.sync().unwrap();

        let replay = read_wal(&path).unwrap();
        assert!(replay.clean);
        assert_eq!(replay.base_seq, 5);
        assert_eq!(replay.fingerprint, 0xABCD);
        assert_eq!(replay.entries.len(), 4);
        assert_eq!(replay.entries[0].seq, 6);
        assert_eq!(
            replay.entries[0].record,
            WalRecord::Insert {
                id: 7,
                vector: v(&[1, 2, 3])
            }
        );
        assert_eq!(replay.entries[1].record, WalRecord::Remove { id: 7 });
        assert_eq!(
            replay.entries[2].record,
            WalRecord::Upsert {
                id: 9,
                vector: v(&[4])
            }
        );
        assert_eq!(replay.entries[3].record, WalRecord::Publish);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_1_logs_are_still_readable() {
        let path = tmp("v1.vsjw");
        let mut w = WalWriter::create(&path, 0, 7).unwrap();
        w.append(WalOp::Insert(0, &v(&[1, 2]))).unwrap();
        w.sync().unwrap();
        // Rewrite the header version field (offset 4) down to 1.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let replay = read_wal(&path).unwrap();
        assert!(replay.clean);
        assert_eq!(replay.entries.len(), 1);
        // Future versions stay unreadable.
        bytes[4..8].copy_from_slice(&3u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_wal(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_yields_valid_prefix() {
        let path = tmp("torn.vsjw");
        let mut w = WalWriter::create(&path, 0, 1).unwrap();
        w.append(WalOp::Insert(0, &v(&[1, 2]))).unwrap();
        w.append(WalOp::Insert(1, &v(&[3, 4]))).unwrap();
        w.sync().unwrap();
        let full = std::fs::read(&path).unwrap();
        let first_end = read_wal(&path).unwrap().entries[0].end_offset as usize;
        // Every truncation point inside the second record keeps exactly
        // the first.
        for cut in first_end..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let replay = read_wal(&path).unwrap();
            assert_eq!(replay.entries.len(), 1, "cut at {cut}");
            assert_eq!(replay.clean, cut == first_end, "cut at {cut}");
            assert_eq!(replay.valid_len as usize, first_end);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_append_truncates_torn_tail_and_continues() {
        let path = tmp("cont.vsjw");
        let mut w = WalWriter::create(&path, 0, 2).unwrap();
        w.append(WalOp::Insert(0, &v(&[1]))).unwrap();
        w.append(WalOp::Insert(1, &v(&[2]))).unwrap();
        w.sync().unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();

        let (mut w2, entries) = WalWriter::open_append(&path, 2).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(w2.seq(), 1);
        w2.append(WalOp::Remove(0)).unwrap();
        w2.sync().unwrap();
        let replay = read_wal(&path).unwrap();
        assert!(replay.clean);
        assert_eq!(replay.entries.len(), 2);
        assert_eq!(replay.entries[1].record, WalRecord::Remove { id: 0 });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_mismatch_is_loud() {
        let path = tmp("fp.vsjw");
        WalWriter::create(&path, 0, 111).unwrap();
        assert!(matches!(
            WalWriter::open_append(&path, 222),
            Err(PersistError::ConfigMismatch(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_truncates_and_restarts_sequence() {
        let path = tmp("reset.vsjw");
        let mut w = WalWriter::create(&path, 0, 3).unwrap();
        for i in 0..4 {
            w.append(WalOp::Insert(i, &v(&[i as u32]))).unwrap();
        }
        w.reset(4).unwrap();
        assert_eq!(w.pending(), 0);
        let seq = w.append(WalOp::Insert(4, &v(&[9]))).unwrap();
        assert_eq!(seq, 5);
        w.sync().unwrap();
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.base_seq, 4);
        assert_eq!(replay.entries.len(), 1);
        assert_eq!(replay.entries[0].seq, 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn poisoned_writer_refuses_appends() {
        let path = tmp("poison.vsjw");
        let mut w = WalWriter::create(&path, 0, 4).unwrap();
        w.append(WalOp::Insert(0, &v(&[1]))).unwrap();
        assert!(!w.is_poisoned());
        w.poison();
        assert!(w.is_poisoned());
        assert!(
            w.append(WalOp::Insert(1, &v(&[2]))).is_err(),
            "a poisoned writer must never acknowledge another record"
        );
        // The prefix written before the failure stays readable.
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.entries.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_damage_fails_loudly() {
        let path = tmp("hdr.vsjw");
        WalWriter::create(&path, 0, 1).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_wal(&path).is_err());
        std::fs::write(&path, [1u8, 2]).unwrap();
        assert!(read_wal(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
