//! The estimate cache with drift-based invalidation.
//!
//! A query optimizer asks for the same handful of thresholds over and
//! over; at production sampling budgets (`m_H = m_L = n`) each miss
//! costs two O(n) sampling passes. The cache short-circuits repeats:
//! an entry records the estimate together with *when* it was computed
//! (epoch + engine-wide ingest counter), and stays servable until the
//! live data has drifted by more than ε ingest operations since then —
//! the staleness contract a size estimate can tolerate, since a join
//! size over `n` vectors cannot change by more than `n · ε` pairs in ε
//! mutations, and the estimator's own sampling error dominates long
//! before that.
//!
//! Entries are keyed by the τ bit pattern plus a fingerprint of the
//! estimator parameters that produced them, so a config change (e.g.
//! paper defaults re-derived at a different `n`) never serves a stale
//! shape of estimate.
//!
//! The cache is pure storage: hit/miss accounting lives on the engine's
//! metric registry (`vsj_engine_cache_{hits,misses}_total`), recorded at
//! the call sites that know whether an answer was actually served.

use std::collections::HashMap;

use vsj_core::Estimate;

/// Cache key: threshold bits + estimator-parameter fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    /// `τ.to_bits()` — exact bit equality; estimates are τ-specific.
    pub tau_bits: u64,
    /// Fingerprint of the LSH-SS parameters used.
    pub config: u64,
    /// Whether the entry came from a batch (`estimate_curve`) pass.
    /// Single and batch estimates draw from *different* RNG streams, so
    /// they may legitimately differ at the same `(epoch, τ)`; separate
    /// key spaces keep each API individually deterministic instead of
    /// letting one overwrite (and flap) the other's answers.
    pub batch: bool,
}

/// One cached estimate and its provenance.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CacheEntry {
    pub estimate: Estimate,
    /// Standard error of the estimate (same sampling pass as the value),
    /// carried so a cache-served answer replays its interval, not just
    /// its point.
    pub std_err: f64,
    /// Epoch the estimate was computed at.
    pub epoch: u64,
    /// Engine ingest counter at computation time (drift reference).
    pub ingested: u64,
    /// Live size of the snapshot it was computed on.
    pub n: usize,
}

/// Hard cap on resident entries. Each entry is ~70 bytes; a client
/// streaming data-dependent thresholds (distinct τ bit patterns) must
/// not grow a long-lived engine without bound, so past the cap an
/// arbitrary resident entry is evicted per insertion — at this size
/// anything smarter than random-ish eviction is noise next to the cost
/// of one sampling pass.
const MAX_ENTRIES: usize = 4096;

/// Drift-invalidated estimate cache (engine holds it behind a lock).
#[derive(Debug, Default)]
pub(crate) struct EstimateCache {
    entries: HashMap<CacheKey, CacheEntry>,
}

impl EstimateCache {
    /// Returns the entry for `key` if it is still within `epsilon`
    /// ingests of `current_ingested`. Pure read — whether it counts as
    /// a hit or a miss is the caller's call (a multi-key fast path only
    /// knows afterwards whether the cache actually served the request).
    pub fn lookup(&self, key: CacheKey, current_ingested: u64, epsilon: u64) -> Option<CacheEntry> {
        self.entries
            .get(&key)
            .filter(|e| current_ingested.abs_diff(e.ingested) <= epsilon)
            .copied()
    }

    /// Inserts the entry for `key`, keeping whichever of the resident
    /// and incoming entries is newer. The guard closes a reader race: a
    /// slow reader that sampled against snapshot `e` must not clobber an
    /// answer already computed against `e+1`, or cached epochs could
    /// move backwards under concurrent readers.
    pub fn store(&mut self, key: CacheKey, entry: CacheEntry) {
        if self.entries.len() >= MAX_ENTRIES && !self.entries.contains_key(&key) {
            if let Some(&victim) = self.entries.keys().next() {
                self.entries.remove(&victim);
            }
        }
        let slot = self.entries.entry(key).or_insert(entry);
        if (entry.epoch, entry.ingested) >= (slot.epoch, slot.ingested) {
            *slot = entry;
        }
    }

    /// Drops every entry (used when a caller wants recomputation).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsj_core::EstimateKind;

    fn entry(ingested: u64) -> CacheEntry {
        CacheEntry {
            estimate: Estimate {
                value: 42.0,
                kind: EstimateKind::Scaled,
            },
            std_err: 3.5,
            epoch: 1,
            ingested,
            n: 100,
        }
    }

    const KEY: CacheKey = CacheKey {
        tau_bits: 0x3FE6666666666666, // 0.7
        config: 9,
        batch: false,
    };

    #[test]
    fn resident_entries_are_capped() {
        let mut c = EstimateCache::default();
        for i in 0..(super::MAX_ENTRIES as u64 + 500) {
            c.store(CacheKey { tau_bits: i, ..KEY }, entry(0));
        }
        let len = c.len();
        assert!(len <= super::MAX_ENTRIES, "cache grew to {len}");
        // Updates to a resident key never evict.
        c.store(KEY, entry(1));
        assert!(c.len() <= super::MAX_ENTRIES);
    }

    #[test]
    fn hit_within_epsilon_miss_beyond() {
        let mut c = EstimateCache::default();
        assert!(c.lookup(KEY, 100, 10).is_none());
        c.store(KEY, entry(100));
        assert!(c.lookup(KEY, 105, 10).is_some(), "drift 5 ≤ ε 10");
        assert!(c.lookup(KEY, 110, 10).is_some(), "drift 10 ≤ ε 10");
        assert!(c.lookup(KEY, 111, 10).is_none(), "drift 11 > ε 10");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn store_never_regresses_to_an_older_epoch() {
        let mut c = EstimateCache::default();
        let newer = CacheEntry {
            epoch: 5,
            ..entry(50)
        };
        let older = CacheEntry {
            epoch: 4,
            ..entry(40)
        };
        c.store(KEY, newer);
        c.store(KEY, older); // late writer loses
        assert_eq!(c.lookup(KEY, 50, u64::MAX).unwrap().epoch, 5);
        let newest = CacheEntry {
            epoch: 6,
            ..entry(60)
        };
        c.store(KEY, newest);
        assert_eq!(c.lookup(KEY, 60, u64::MAX).unwrap().epoch, 6);
    }

    #[test]
    fn cached_entries_replay_their_interval() {
        let mut c = EstimateCache::default();
        c.store(KEY, entry(0));
        let hit = c.lookup(KEY, 0, 0).unwrap();
        assert_eq!(hit.std_err, 3.5, "std_err must survive the round trip");
    }

    #[test]
    fn strict_epsilon_zero_requires_unchanged_count() {
        let mut c = EstimateCache::default();
        c.store(KEY, entry(7));
        assert!(c.lookup(KEY, 7, 0).is_some());
        assert!(c.lookup(KEY, 8, 0).is_none());
    }

    #[test]
    fn distinct_tau_and_config_are_distinct_entries() {
        let mut c = EstimateCache::default();
        c.store(KEY, entry(0));
        let other_tau = CacheKey {
            tau_bits: 0x3FE0000000000000,
            ..KEY
        };
        let other_cfg = CacheKey { config: 10, ..KEY };
        let other_kind = CacheKey { batch: true, ..KEY };
        assert!(c.lookup(other_tau, 0, u64::MAX).is_none());
        assert!(c.lookup(other_cfg, 0, u64::MAX).is_none());
        assert!(
            c.lookup(other_kind, 0, u64::MAX).is_none(),
            "batch and single estimates must not share entries"
        );
        assert!(c.lookup(KEY, 0, 0).is_some());
        c.clear();
        assert!(c.lookup(KEY, 0, u64::MAX).is_none());
    }
}
