//! Estimator-quality auditing: the online estimate-vs-exact loop.
//!
//! The engine's other metrics watch *mechanical* health (latency, queue
//! depth, WAL depth); this module watches whether the numbers the
//! engine serves are any good. On every audit cycle the engine re-asks
//! itself for a threshold it recently served — the answer a client
//! would get right now, cached or fresh, with its confidence interval —
//! then computes exact ground truth on a bounded stratum via
//! [`vsj_exact::ExactJoin`] and scores the served answer:
//!
//! ```text
//!   served τ ring ──► estimate(τ) ──► ExactJoin on ≤ max_exact_n
//!        ▲                │   vectors (full corpus when it fits,
//!        │                │   a deterministic subset scaled by
//!   note_served(τ)        │   C(n,2)/C(b,2) otherwise)
//!   on every answer       ▼
//!              signed_relative_error + CI-coverage
//!                (vsj_audit_* series, worst-calibrated ring)
//! ```
//!
//! The resulting series are the production form of the paper's §6.1
//! evaluation protocol: over/under relative-error histograms and a
//! CI-coverage ratio (how often truth fell inside the served ~95%
//! interval — should sit near 0.95 when the estimator is calibrated).
//!
//! [`Auditor`] is the background driver, shaped like
//! [`Checkpointer`](crate::Checkpointer) /
//! [`Compactor`](crate::Compactor): a poll loop, explicit
//! [`stop`](Auditor::stop), join-on-drop. Unlike those it needs no
//! durable storage — any engine can be audited.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use vsj_obs::{Counter, Histogram, ObsOptions, Registry, Trace, TraceRing};
use vsj_sampling::Summary;

use crate::engine::EstimationEngine;

/// Knobs of one audit cycle (see [`EstimationEngine::audit_once`]).
#[derive(Debug, Clone, Copy)]
pub struct AuditOptions {
    /// Largest corpus audited *exactly*. Above it, ground truth is
    /// computed on a deterministic subset of this many vectors and
    /// scaled by `C(n,2)/C(b,2)` — a bounded-cost stand-in that keeps
    /// the audit loop O(`max_exact_n`²) regardless of corpus size.
    pub max_exact_n: usize,
    /// Threads for the exact join (1 keeps the auditor off the serving
    /// path's cores).
    pub exact_threads: usize,
}

impl Default for AuditOptions {
    fn default() -> Self {
        Self {
            max_exact_n: 2048,
            exact_threads: 1,
        }
    }
}

impl AuditOptions {
    /// Panics on unusable settings.
    pub fn validate(&self) {
        assert!(self.max_exact_n >= 2, "auditing needs at least one pair");
        assert!(self.exact_threads >= 1, "exact_threads must be at least 1");
    }
}

/// One scored audit cycle: the served answer, the ground truth it was
/// held against, and the verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditRecord {
    /// Threshold audited (picked from the recently-served ring).
    pub tau: f64,
    /// Epoch of the served answer.
    pub epoch: u64,
    /// Live size of the snapshot the truth was computed against.
    pub n: usize,
    /// Vectors the exact join actually ran over (≤ `max_exact_n`).
    pub audited_n: usize,
    /// The served point estimate.
    pub estimate: f64,
    /// Its standard error.
    pub std_err: f64,
    /// Served ~95% interval, low edge.
    pub ci_low: f64,
    /// Served ~95% interval, high edge.
    pub ci_high: f64,
    /// Ground truth (exact on the audited stratum, scaled to the full
    /// corpus when the stratum was a subset).
    pub truth: f64,
    /// `signed_relative_error(estimate, truth)` — positive is an
    /// overestimate (+∞ when truth is 0 but the estimate is not).
    pub signed_error: f64,
    /// Whether truth fell inside `[ci_low, ci_high]`.
    pub within_ci: bool,
    /// Whether the served answer came from the estimate cache.
    pub cached: bool,
    /// Time serving the estimate took (cache hit or sampling pass), µs.
    pub serve_us: u64,
    /// Time the exact join took, µs.
    pub exact_us: u64,
}

/// Point-in-time audit summary (see
/// [`EstimationEngine::quality_report`]).
#[derive(Debug, Clone)]
pub struct QualityReport {
    /// Scored audit cycles.
    pub cycles: u64,
    /// Cycles skipped (nothing served yet, or a < 2-vector snapshot).
    pub skipped: u64,
    /// Cycles where truth fell inside the served interval.
    pub within_ci: u64,
    /// Cycles where it fell outside.
    pub outside_ci: u64,
    /// `within / (within + outside)`, `None` before the first scored
    /// cycle. Near 0.95 when the served intervals are calibrated.
    pub coverage: Option<f64>,
    /// Welford summary of the finite signed relative errors (mean near
    /// 0 for an unbiased estimator; see
    /// [`Summary::mean`]/[`Summary::std`]).
    pub errors: Summary,
    /// Worst-calibrated audited queries, largest |signed error| first
    /// (bounded; see [`WORST_CAPACITY`]).
    pub worst: Vec<AuditRecord>,
    /// Distinct thresholds currently in the recently-served ring.
    pub served_taus: usize,
}

/// Bound on the worst-calibrated ring in a [`QualityReport`].
pub const WORST_CAPACITY: usize = 8;

/// Bound on the recently-served threshold ring the auditor picks from.
const SERVED_CAPACITY: usize = 64;

/// Scale of the relative-error histograms: basis points (1% = 100).
const ERROR_BP: f64 = 10_000.0;

#[derive(Default)]
struct ServedRing {
    taus: Vec<f64>,
    next: usize,
}

/// The engine-resident audit state: the recently-served ring the
/// auditor picks thresholds from, the `vsj_audit_*` series, and the
/// worst-calibrated ring. Registered on the *engine's* registry so the
/// serving layer's `/metrics` exposition carries the series with no new
/// plumbing.
pub(crate) struct AuditState {
    served: Mutex<ServedRing>,
    rotation: AtomicU64,
    worst: Mutex<Vec<AuditRecord>>,
    errors: Mutex<Summary>,
    pub(crate) cycles: Counter,
    pub(crate) skipped: Counter,
    pub(crate) within_ci: Counter,
    pub(crate) outside_ci: Counter,
    over_error_bp: Histogram,
    under_error_bp: Histogram,
    pub(crate) exact_us: Histogram,
}

impl AuditState {
    pub(crate) fn new(registry: &Registry, obs: &ObsOptions) -> Self {
        Self {
            served: Mutex::new(ServedRing::default()),
            rotation: AtomicU64::new(0),
            worst: Mutex::new(Vec::new()),
            errors: Mutex::new(Summary::new()),
            cycles: registry.counter(
                "vsj_audit_cycles_total",
                "Scored estimate-vs-exact audit cycles",
            ),
            skipped: registry.counter(
                "vsj_audit_skipped_total",
                "Audit cycles skipped (nothing served yet, or a trivial snapshot)",
            ),
            within_ci: registry.counter(
                "vsj_audit_within_ci_total",
                "Audits where exact truth fell inside the served ~95% interval",
            ),
            outside_ci: registry.counter(
                "vsj_audit_outside_ci_total",
                "Audits where exact truth fell outside the served ~95% interval",
            ),
            over_error_bp: registry.histogram_with(
                "vsj_audit_relative_error_bp",
                "Absolute signed relative error of audited estimates, in basis points",
                &[("sign", "over")],
                obs.size_spec(),
            ),
            under_error_bp: registry.histogram_with(
                "vsj_audit_relative_error_bp",
                "Absolute signed relative error of audited estimates, in basis points",
                &[("sign", "under")],
                obs.size_spec(),
            ),
            exact_us: registry.histogram(
                "vsj_audit_exact_duration_us",
                "Exact-join ground-truth duration per audit cycle in microseconds",
                obs.latency_spec(),
            ),
        }
    }

    /// Notes a threshold the engine just answered (deduplicated by bit
    /// pattern; bounded ring).
    pub(crate) fn note_served(&self, tau: f64) {
        let mut ring = self.served.lock();
        if ring.taus.iter().any(|t| t.to_bits() == tau.to_bits()) {
            return;
        }
        if ring.taus.len() < SERVED_CAPACITY {
            ring.taus.push(tau);
        } else {
            let at = ring.next;
            ring.taus[at] = tau;
        }
        ring.next = (ring.next + 1) % SERVED_CAPACITY;
    }

    /// Deterministic rotation over the served ring — each call audits
    /// the next resident threshold, so every served τ gets its turn.
    pub(crate) fn next_tau(&self) -> Option<f64> {
        let ring = self.served.lock();
        if ring.taus.is_empty() {
            return None;
        }
        let at = self.rotation.fetch_add(1, Ordering::Relaxed) as usize % ring.taus.len();
        Some(ring.taus[at])
    }

    /// The thresholds currently in the served ring (tests, reports).
    pub(crate) fn served_taus(&self) -> Vec<f64> {
        self.served.lock().taus.clone()
    }

    /// Folds one scored cycle into the series and the worst ring.
    pub(crate) fn record(&self, record: AuditRecord) {
        self.cycles.inc();
        if record.within_ci {
            self.within_ci.inc();
        } else {
            self.outside_ci.inc();
        }
        let bp = (record.signed_error.abs() * ERROR_BP).min(u64::MAX as f64) as u64;
        if record.signed_error >= 0.0 {
            self.over_error_bp.record(bp);
        } else {
            self.under_error_bp.record(bp);
        }
        if record.signed_error.is_finite() {
            self.errors.lock().push(record.signed_error);
        }
        let mut worst = self.worst.lock();
        worst.push(record);
        worst.sort_by(|a, b| {
            b.signed_error
                .abs()
                .partial_cmp(&a.signed_error.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        worst.truncate(WORST_CAPACITY);
    }

    pub(crate) fn report(&self) -> QualityReport {
        // Downstream-first (within/outside before cycles), so a report
        // racing a concurrent audit can never show more verdicts than
        // cycles.
        let within_ci = self.within_ci.get();
        let outside_ci = self.outside_ci.get();
        let skipped = self.skipped.get();
        let cycles = self.cycles.get();
        let scored = within_ci + outside_ci;
        QualityReport {
            cycles,
            skipped,
            within_ci,
            outside_ci,
            coverage: (scored > 0).then(|| within_ci as f64 / scored as f64),
            errors: *self.errors.lock(),
            worst: self.worst.lock().clone(),
            served_taus: self.served.lock().taus.len(),
        }
    }
}

/// A background thread that audits estimator quality on a cadence —
/// each poll runs one [`EstimationEngine::audit_once`] cycle. Works on
/// any engine (durable or not).
///
/// Stopping (explicitly via [`Auditor::stop`] or by dropping) joins the
/// thread.
#[derive(Debug)]
pub struct Auditor {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<u64>>,
}

impl Auditor {
    /// Spawns the auditor, running one audit cycle every `poll`.
    pub fn spawn(engine: Arc<EstimationEngine>, options: AuditOptions, poll: Duration) -> Self {
        Self::spawn_inner(engine, options, poll, None)
    }

    /// [`spawn`](Self::spawn), additionally offering a `Trace` labeled
    /// `"audit"` (stages `serve` + `exact`) to `traces` after every
    /// scored cycle — the same ring a serving layer exposes under
    /// `/trace/slow`.
    pub fn spawn_traced(
        engine: Arc<EstimationEngine>,
        options: AuditOptions,
        poll: Duration,
        traces: Arc<TraceRing>,
    ) -> Self {
        Self::spawn_inner(engine, options, poll, Some(traces))
    }

    fn spawn_inner(
        engine: Arc<EstimationEngine>,
        options: AuditOptions,
        poll: Duration,
        traces: Option<Arc<TraceRing>>,
    ) -> Self {
        options.validate();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::spawn(move || {
            let mut audited = 0u64;
            while !stop_flag.load(Ordering::Relaxed) {
                let started = Instant::now();
                if let Some(record) = engine.audit_once(&options) {
                    audited += 1;
                    if let Some(ring) = &traces {
                        let mut trace = Trace::new("audit");
                        trace.stage("serve", record.serve_us);
                        trace.stage("exact", record.exact_us);
                        trace.total_us =
                            u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                        ring.offer(trace);
                    }
                }
                std::thread::sleep(poll);
            }
            audited
        });
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread and joins it, returning how many cycles it
    /// scored.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("auditor joined twice")
            .join()
            .expect("auditor thread panicked")
    }
}

impl Drop for Auditor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EstimationEngine, IndexFamily, ServiceConfig};
    use vsj_vector::SparseVector;

    fn members(start: u32, len: u32) -> SparseVector {
        SparseVector::binary_from_members((start..start + len).collect())
    }

    fn engine() -> EstimationEngine {
        EstimationEngine::new(
            ServiceConfig::builder()
                .shards(2)
                .k(8)
                .seed(7)
                .family(IndexFamily::MinHash)
                .build(),
        )
    }

    #[test]
    fn audit_skips_until_something_was_served() {
        let e = engine();
        assert!(e.audit_once(&AuditOptions::default()).is_none());
        let report = e.quality_report();
        assert_eq!(report.cycles, 0);
        assert_eq!(report.skipped, 1);
        assert!(report.coverage.is_none());
    }

    #[test]
    fn served_ring_deduplicates_and_rotates() {
        let e = engine();
        for i in 0..100u32 {
            e.insert(members(i % 20, 5));
        }
        e.publish();
        for _ in 0..3 {
            e.estimate(0.5);
            e.estimate(0.7);
        }
        let served = e.recently_served();
        assert_eq!(served.len(), 2, "repeats deduplicate: {served:?}");
        // The rotation visits both thresholds across two cycles.
        let a = e.audit_once(&AuditOptions::default()).unwrap();
        let b = e.audit_once(&AuditOptions::default()).unwrap();
        let mut taus = [a.tau, b.tau];
        taus.sort_by(f64::total_cmp);
        assert_eq!(taus, [0.5, 0.7]);
    }

    #[test]
    fn full_corpus_audit_uses_exact_truth() {
        let e = engine();
        for i in 0..60u32 {
            e.insert(members(i % 10, 5));
        }
        e.publish();
        let served = e.estimate(0.8);
        let record = e.audit_once(&AuditOptions::default()).unwrap();
        assert_eq!(record.tau, 0.8);
        assert_eq!(record.n, 60);
        assert_eq!(record.audited_n, 60, "60 ≤ max_exact_n: exact, unscaled");
        assert_eq!(record.estimate, served.estimate.value);
        assert!(record.truth.fract() == 0.0, "unscaled truth is a count");
        assert!(record.ci_low <= record.estimate && record.estimate <= record.ci_high);
        let report = e.quality_report();
        assert_eq!(report.cycles, 1);
        assert_eq!(report.within_ci + report.outside_ci, 1);
        assert_eq!(report.worst.len(), 1);
        assert_eq!(report.worst[0], record);
    }

    #[test]
    fn oversized_corpus_audits_a_bounded_scaled_stratum() {
        let e = engine();
        for i in 0..200u32 {
            e.insert(members(i % 25, 5));
        }
        e.publish();
        e.estimate(0.6);
        let options = AuditOptions {
            max_exact_n: 50,
            exact_threads: 1,
        };
        let record = e.audit_once(&options).unwrap();
        assert_eq!(record.n, 200);
        assert_eq!(record.audited_n, 50, "stratum bounded by max_exact_n");
        // Scaled truth: raw count × C(200,2)/C(50,2).
        let scale = (200.0 * 199.0) / (50.0 * 49.0);
        let raw = record.truth / scale;
        assert!(
            (raw - raw.round()).abs() < 1e-9,
            "truth must be an integer count times the pair scale: {}",
            record.truth
        );
    }

    #[test]
    fn worst_ring_is_bounded_and_sorted() {
        let e = engine();
        for i in 0..40u32 {
            e.insert(members(i % 8, 5));
        }
        e.publish();
        for i in 0..(WORST_CAPACITY + 4) {
            e.estimate(0.3 + i as f64 * 0.02);
            e.audit_once(&AuditOptions::default()).unwrap();
        }
        let report = e.quality_report();
        assert_eq!(report.cycles as usize, WORST_CAPACITY + 4);
        assert!(report.worst.len() <= WORST_CAPACITY);
        for w in report.worst.windows(2) {
            assert!(
                w[0].signed_error.abs() >= w[1].signed_error.abs(),
                "worst ring must be sorted by |error| descending"
            );
        }
    }

    #[test]
    fn auditor_thread_scores_cycles_and_offers_traces() {
        let e = Arc::new(engine());
        for i in 0..50u32 {
            e.insert(members(i % 10, 4));
        }
        e.publish();
        e.estimate(0.7);
        let ring = Arc::new(TraceRing::new(8, Duration::ZERO));
        let auditor = Auditor::spawn_traced(
            e.clone(),
            AuditOptions::default(),
            Duration::from_millis(1),
            ring.clone(),
        );
        let deadline = Instant::now() + Duration::from_secs(10);
        while e.quality_report().cycles < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let scored = auditor.stop();
        assert!(scored >= 3, "auditor scored {scored} cycles");
        let traces = ring.recent();
        assert!(!traces.is_empty(), "audit cycles must reach the ring");
        assert!(traces.iter().all(|t| t.label == "audit"));
        let stages: Vec<&str> = traces[0].stages().iter().map(|s| s.name).collect();
        assert_eq!(stages, ["serve", "exact"]);
    }
}
