//! Service configuration and builder, plus the storage-layer knobs of
//! durable engines ([`DurabilityOptions`], [`FsyncPolicy`]).

use std::time::Duration;

use vsj_core::LshSsConfig;

/// When a durable write is acknowledged relative to `fsync`.
///
/// The policy trades ingest latency against the crash window: every
/// WAL frame is always *written* (buffered) before its operation is
/// applied, but the policy decides whether the writer also waits for
/// the frame to reach stable storage before the call returns.
/// Checkpoints and segment seals fsync regardless of the policy, so
/// the window only ever covers the tail since the last flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Every acknowledged write is on stable storage: the writer blocks
    /// until an fsync covers its record. Concurrent writers on the same
    /// shard still share one fsync (the group-commit machinery runs
    /// with a batch of 1 and no delay), so the cost is one fsync per
    /// *quiet-period* write, not per record under load.
    Always,
    /// Group commit: the writer blocks until its record is flushed, but
    /// the flush itself is deferred until `max_batch` records await
    /// acknowledgement on the shard or the oldest waiter has aged
    /// `max_delay` — amortizing one fsync over the whole group.
    GroupCommit {
        /// Flush when this many unacknowledged records accumulate on a
        /// shard (≥ 1).
        max_batch: u64,
        /// Flush when the oldest unacknowledged record has waited this
        /// long, whether or not the batch filled.
        max_delay: Duration,
    },
    /// Acknowledge as soon as the frame is in the OS page cache — the
    /// pre-segmented engine's behavior, and the default. A process
    /// crash loses nothing (the kernel still holds the bytes); an OS
    /// crash or power cut may lose the un-fsynced tail, recovering the
    /// flushed prefix.
    #[default]
    Never,
}

/// Which medium a recovered engine serves its checkpoint base from.
///
/// The tier is an *operational* choice made at [`recover`] time: the
/// on-disk format is identical either way (the v3 mappable container),
/// and both tiers serve bit-identical estimates at every published
/// `(seed, epoch, τ)`.
///
/// [`recover`]: crate::EstimationEngine::recover
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageTier {
    /// Decode the checkpoint and rebuild heap tables — the classic
    /// path. Cold-start is O(corpus decode); all operations are
    /// supported.
    #[default]
    Heap,
    /// "Map + go": `mmap` the checkpoint, validate section checksums,
    /// and serve estimates directly from the on-disk base with the WAL
    /// tail replayed into a heap overlay. Cold-start is O(map + WAL
    /// tail) and the base corpus never enters the heap. [`remove`] and
    /// [`upsert`] of a base row *tombstone* it (the mapping is never
    /// mutated in place); the overlay and tombstone set are folded back
    /// into a fresh checkpoint by [`compact`] — run automatically by a
    /// [`Compactor`](crate::Compactor) under the
    /// [`compact_overlay_bytes`] / [`compact_tombstone_ratio`] trigger
    /// policy — which atomically re-maps without changing any answer.
    ///
    /// [`remove`]: crate::EstimationEngine::remove
    /// [`upsert`]: crate::EstimationEngine::upsert
    /// [`compact`]: crate::EstimationEngine::compact
    /// [`compact_overlay_bytes`]: DurabilityOptions::compact_overlay_bytes
    /// [`compact_tombstone_ratio`]: DurabilityOptions::compact_tombstone_ratio
    Mapped,
}

/// Storage-layer knobs of a durable engine. Unlike [`ServiceConfig`]
/// these are *operational*: they are not persisted in checkpoint
/// metadata and may differ across an engine's lives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurabilityOptions {
    /// How many checkpoint generations to keep: the current
    /// `checkpoint.vsjc` plus up to `retain_checkpoints - 1` prior
    /// generations (`checkpoint.vsjc.1` = most recent previous, …).
    /// Older generations are pruned at each checkpoint, and the WAL
    /// retains every segment needed to roll *any* kept generation
    /// forward to the present. Must be ≥ 1; `1` (the default) keeps
    /// only the current checkpoint.
    pub retain_checkpoints: usize,
    /// When durable writes are acknowledged relative to `fsync` (see
    /// [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Rotation threshold of a WAL segment: once a shard's active
    /// segment reaches this many bytes it is sealed (fsync'd) and a
    /// fresh segment opened. Smaller segments reclaim space sooner at
    /// checkpoints (truncation drops whole sealed files); larger ones
    /// rotate less often. Must be ≥ 1 KiB.
    pub segment_bytes: u64,
    /// Which medium recovery serves the checkpoint base from (see
    /// [`StorageTier`]). Ignored by [`durable_with`] (a fresh engine
    /// starts empty on the heap); honored by [`recover_with`].
    ///
    /// [`durable_with`]: crate::EstimationEngine::durable_with
    /// [`recover_with`]: crate::EstimationEngine::recover_with
    pub storage_tier: StorageTier,
    /// Compaction trigger: a mapped engine reports
    /// [`compaction_due`](crate::EstimationEngine::compaction_due) once
    /// its heap overlay holds at least this many payload bytes. `None`
    /// (the default) disables the overlay-size trigger. Must be ≥ 1
    /// when set. Ignored by heap engines.
    pub compact_overlay_bytes: Option<u64>,
    /// Compaction trigger: a mapped engine reports
    /// [`compaction_due`](crate::EstimationEngine::compaction_due) once
    /// `tombstones / base_rows` reaches this ratio. `None` (the
    /// default) disables the tombstone trigger. Must be finite and in
    /// `(0, 1]` when set. Ignored by heap engines.
    pub compact_tombstone_ratio: Option<f64>,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        Self {
            retain_checkpoints: 1,
            fsync: FsyncPolicy::default(),
            segment_bytes: 4 << 20,
            storage_tier: StorageTier::default(),
            compact_overlay_bytes: None,
            compact_tombstone_ratio: None,
        }
    }
}

impl DurabilityOptions {
    /// Panics unless the options are internally valid (positive
    /// capacities, sane batch sizes).
    pub(crate) fn validate(&self) {
        assert!(
            self.retain_checkpoints >= 1,
            "retain_checkpoints must be at least 1 (the current checkpoint)"
        );
        assert!(
            self.segment_bytes >= 1024,
            "segment_bytes must be at least 1 KiB"
        );
        if let FsyncPolicy::GroupCommit { max_batch, .. } = self.fsync {
            assert!(max_batch >= 1, "group commit needs a batch of at least 1");
        }
        if let Some(bytes) = self.compact_overlay_bytes {
            assert!(
                bytes >= 1,
                "compact_overlay_bytes must be at least 1 byte when set"
            );
        }
        if let Some(ratio) = self.compact_tombstone_ratio {
            assert!(
                ratio.is_finite() && ratio > 0.0 && ratio <= 1.0,
                "compact_tombstone_ratio must be in (0, 1] when set"
            );
        }
    }
}

/// Data-parallelism knobs of an engine. Like [`DurabilityOptions`]
/// these are *operational*: they are not persisted in checkpoint
/// metadata, excluded from the config fingerprint, and may differ
/// across an engine's lives — the pool is forbidden (and tested) from
/// changing any answer or any checkpoint byte, so two engines that
/// differ only here are indistinguishable on the wire and on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelOptions {
    /// Parallelism degree of the engine's work pool, used by batch
    /// estimate fan-out, batch-ingest key hashing, and checkpoint /
    /// compaction encoding. `1` runs the exact legacy serial path (no
    /// worker threads at all). Defaults to `VSJ_POOL_THREADS` when set,
    /// else [`std::thread::available_parallelism`].
    pub pool_threads: usize,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        Self {
            pool_threads: vsj_pool::default_threads(),
        }
    }
}

impl ParallelOptions {
    pub(crate) fn validate(&self) {
        assert!(self.pool_threads >= 1, "pool_threads must be at least 1");
    }
}

/// Which LSH family the engine's shards hash with (and therefore which
/// similarity measure estimates are computed under — the pairing the
/// paper evaluates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexFamily {
    /// Charikar's random-hyperplane family; estimates are over **cosine**
    /// similarity (the paper's VSJ configuration).
    #[default]
    SimHash,
    /// Broder's MinHash family; estimates are over **Jaccard** similarity
    /// (the SSJ configuration, exact under Definition 3).
    MinHash,
}

/// Tunables of an [`EstimationEngine`](crate::EstimationEngine).
///
/// Everything is fixed at engine construction: the hash functions (and
/// hence every bucket key ever computed) derive from `(family, k, seed)`,
/// so changing them would invalidate all shard state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Number of shards `S` the live index is partitioned into by id
    /// hash. More shards mean less writer contention; reads are
    /// unaffected (they go through snapshots).
    pub shards: usize,
    /// Composite width `k` (hash functions folded per bucket key).
    pub k: usize,
    /// LSH family (and similarity measure).
    pub family: IndexFamily,
    /// Master seed: derives the hash functions and every estimate RNG
    /// stream.
    pub seed: u64,
    /// Estimate-cache drift tolerance ε: a cached estimate stays
    /// servable until more than ε ingest operations (inserts + removes)
    /// have been applied since the epoch it was computed at. `0` means
    /// any mutation invalidates.
    pub cache_epsilon: u64,
    /// When `Some(b)`, the engine publishes a fresh snapshot
    /// automatically after every `b` ingest operations; `None` leaves
    /// publication entirely to explicit [`publish`] calls.
    ///
    /// [`publish`]: crate::EstimationEngine::publish
    pub auto_publish_every: Option<u64>,
    /// Fixed LSH-SS parameters, or `None` to use the paper's defaults
    /// (`m_H = m_L = n`, `δ = log₂ n`) at each snapshot's live size `n`.
    pub estimator: Option<LshSsConfig>,
    /// Work-pool sizing (see [`ParallelOptions`]). Operational — never
    /// persisted, never part of the fingerprint, never answer-changing.
    pub parallel: ParallelOptions,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            k: 20,
            family: IndexFamily::SimHash,
            seed: 0,
            cache_epsilon: 0,
            auto_publish_every: None,
            estimator: None,
            parallel: ParallelOptions::default(),
        }
    }
}

impl ServiceConfig {
    /// Starts a builder from the defaults.
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder {
            config: Self::default(),
        }
    }
}

/// Builder for [`ServiceConfig`] (validates on [`build`]).
///
/// [`build`]: ServiceConfigBuilder::build
#[derive(Debug, Clone)]
pub struct ServiceConfigBuilder {
    config: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Sets the shard count `S` (≥ 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Sets the composite width `k` (≥ 1).
    pub fn k(mut self, k: usize) -> Self {
        self.config.k = k;
        self
    }

    /// Sets the LSH family / similarity measure.
    pub fn family(mut self, family: IndexFamily) -> Self {
        self.config.family = family;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the cache drift tolerance ε.
    pub fn cache_epsilon(mut self, epsilon: u64) -> Self {
        self.config.cache_epsilon = epsilon;
        self
    }

    /// Publishes a snapshot automatically every `batch` ingests (≥ 1).
    pub fn auto_publish_every(mut self, batch: u64) -> Self {
        self.config.auto_publish_every = Some(batch);
        self
    }

    /// Pins the LSH-SS parameters instead of per-snapshot paper defaults.
    pub fn estimator(mut self, config: LshSsConfig) -> Self {
        self.config.estimator = Some(config);
        self
    }

    /// Sets the work-pool parallelism degree (≥ 1; `1` = serial legacy
    /// path). The default follows `VSJ_POOL_THREADS` / available cores.
    pub fn pool_threads(mut self, threads: usize) -> Self {
        self.config.parallel.pool_threads = threads;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Panics
    /// Panics on `shards == 0`, `k == 0`, or `auto_publish_every == Some(0)`.
    pub fn build(self) -> ServiceConfig {
        let c = self.config;
        assert!(c.shards >= 1, "an engine needs at least one shard");
        assert!(c.k >= 1, "k must be at least 1");
        assert!(
            c.auto_publish_every != Some(0),
            "auto_publish_every must be at least 1"
        );
        c.parallel.validate();
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let c = ServiceConfig::builder()
            .shards(4)
            .k(12)
            .family(IndexFamily::MinHash)
            .seed(7)
            .cache_epsilon(100)
            .auto_publish_every(64)
            .build();
        assert_eq!(c.shards, 4);
        assert_eq!(c.k, 12);
        assert_eq!(c.family, IndexFamily::MinHash);
        assert_eq!(c.seed, 7);
        assert_eq!(c.cache_epsilon, 100);
        assert_eq!(c.auto_publish_every, Some(64));
        assert!(c.estimator.is_none());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ServiceConfig::builder().shards(0).build();
    }

    #[test]
    fn pool_threads_builder_and_default() {
        assert!(ParallelOptions::default().pool_threads >= 1);
        let c = ServiceConfig::builder().pool_threads(3).build();
        assert_eq!(c.parallel.pool_threads, 3);
    }

    #[test]
    #[should_panic(expected = "pool_threads must be")]
    fn zero_pool_threads_rejected() {
        ServiceConfig::builder().pool_threads(0).build();
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_rejected() {
        ServiceConfig::builder().k(0).build();
    }
}
