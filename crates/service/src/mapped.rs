//! The out-of-core "map + go" checkpoint tier.
//!
//! [`MappedCheckpoint`] serves a v3 checkpoint container *directly from
//! the on-disk file*: the container is memory-mapped, every section's
//! checksum and the cross-section structure are validated once, and
//! from then on bucket runs, key arrays, and vector payloads are read
//! straight out of the mapping — the base corpus never enters the heap.
//! Vector payloads materialize lazily (one [`OnceLock`] cell per row)
//! the first time an estimator actually touches them, so a cold start
//! costs O(map + validation scan) instead of O(decode + rebuild).
//!
//! [`MappedView`] is the index a mapped engine publishes: the mapped
//! base plus a heap *overlay* of rows appended after the checkpoint
//! (the replayed WAL tail and live inserts). It implements
//! [`IndexView`] with the exact sampling streams of the heap
//! [`LshTable`](vsj_lsh::LshTable): merged buckets are enumerated
//! key-ascending (matching both the batch and delta heap builders), the
//! alias table is built from the same `C(b_j, 2)` weight sequence, and
//! every draw consumes the RNG identically — which is what makes the
//! mapped tier bit-identical to the heap tier at every published
//! `(seed, epoch, τ)`.

use std::collections::BTreeMap;
use std::ops::Range;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use bytes::Bytes;
use memmap2::Mmap;
use vsj_core::IndexView;
use vsj_datasets::io::{self, ContainerIndex};
use vsj_sampling::{pair_count, sample_distinct_pair, AliasTable, Rng};
use vsj_vector::{SparseVector, VectorId};

use crate::persist::{
    decode_meta, CheckpointMeta, PersistError, SECTION_BKTK, SECTION_BMEM, SECTION_BOFF,
    SECTION_GIDS, SECTION_KEYS, SECTION_META, SECTION_VOFF, SECTION_VPAY,
};
use crate::GlobalId;

fn corrupt(msg: impl Into<String>) -> PersistError {
    PersistError::Corrupt(msg.into())
}

/// A validated, memory-mapped v3 checkpoint: the base rows of a mapped
/// engine. All integer reads go through `from_le_bytes` on mapped
/// slices; vectors decode lazily into per-row cells on first touch.
pub(crate) struct MappedCheckpoint {
    map: Mmap,
    meta: CheckpointMeta,
    n: usize,
    buckets: usize,
    gids: Range<usize>,
    keys: Range<usize>,
    bktk: Range<usize>,
    boff: Range<usize>,
    bmem: Range<usize>,
    voff: Range<usize>,
    vpay: Range<usize>,
    cells: Vec<OnceLock<SparseVector>>,
    materialized: AtomicU64,
}

impl std::fmt::Debug for MappedCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedCheckpoint")
            .field("n", &self.n)
            .field("buckets", &self.buckets)
            .field("bytes", &self.map.len())
            .field("mapped", &self.map.is_mapped())
            .field("materialized", &self.materialized())
            .finish()
    }
}

impl MappedCheckpoint {
    /// Maps and validates the checkpoint at `path`.
    ///
    /// Validation is one linear scan (the container's per-section
    /// checksums) plus O(n) integer structure checks — no vector is
    /// decoded, no heap table is built. Any framing, checksum, or
    /// cross-section inconsistency fails loudly here so the serving
    /// path can trust the mapping unconditionally.
    pub(crate) fn open(path: &Path) -> Result<Self, PersistError> {
        let file = std::fs::File::open(path)?;
        let map = Mmap::map(&file)?;
        Self::from_map(map)
    }

    fn from_map(map: Mmap) -> Result<Self, PersistError> {
        let index = ContainerIndex::parse(&map)?;
        let meta_range = index.require(SECTION_META)?;
        let (meta, n64) = decode_meta(Bytes::copy_from_slice(&map[meta_range]))?;
        if n64 > u32::MAX as u64 {
            return Err(corrupt(format!("{n64} rows exceed the id space")));
        }
        let n = n64 as usize;
        let gids = index.require(SECTION_GIDS)?;
        let keys = index.require(SECTION_KEYS)?;
        let bktk = index.require(SECTION_BKTK)?;
        let boff = index.require(SECTION_BOFF)?;
        let bmem = index.require(SECTION_BMEM)?;
        let voff = index.require(SECTION_VOFF)?;
        let vpay = index.require(SECTION_VPAY)?;
        if gids.len() != n * 8 || keys.len() != n * 8 || bmem.len() != n * 4 {
            return Err(corrupt(format!(
                "row sections disagree with META row count {n}"
            )));
        }
        if !bktk.len().is_multiple_of(8) {
            return Err(corrupt("BKTK length not a multiple of 8"));
        }
        let buckets = bktk.len() / 8;
        if boff.len() != (buckets + 1) * 8 {
            return Err(corrupt("BOFF is not one offset per bucket plus one"));
        }
        if voff.len() != (n + 1) * 8 {
            return Err(corrupt("VOFF is not one offset per row plus one"));
        }
        let u64_in = |r: &Range<usize>, i: usize| -> u64 {
            let at = r.start + i * 8;
            u64::from_le_bytes(map[at..at + 8].try_into().expect("8 bytes"))
        };
        let u32_in = |r: &Range<usize>, i: usize| -> u32 {
            let at = r.start + i * 4;
            u32::from_le_bytes(map[at..at + 4].try_into().expect("4 bytes"))
        };
        // GIDS: strictly ascending, below the id allocator's watermark.
        for i in 0..n {
            let gid = u64_in(&gids, i);
            if i + 1 < n && gid >= u64_in(&gids, i + 1) {
                return Err(corrupt("GIDS are not strictly ascending"));
            }
            if gid >= meta.next_id {
                return Err(corrupt("a snapshot row carries an unallocated global id"));
            }
        }
        // Buckets: keys strictly ascending, offsets partition exactly
        // [0, n), members ascending within their bucket and carrying
        // the bucket's key — with Σ sizes = n this proves the buckets
        // exactly cover the rows.
        if buckets > 0 {
            for b in 0..buckets - 1 {
                if u64_in(&bktk, b) >= u64_in(&bktk, b + 1) {
                    return Err(corrupt("BKTK bucket keys are not strictly ascending"));
                }
            }
        }
        if u64_in(&boff, 0) != 0 || u64_in(&boff, buckets) != n as u64 {
            return Err(corrupt("BOFF does not span exactly the row count"));
        }
        for b in 0..buckets {
            let start = u64_in(&boff, b);
            let end = u64_in(&boff, b + 1);
            if start >= end || end > n as u64 {
                return Err(corrupt("BOFF offsets are not strictly increasing"));
            }
            let bucket_key = u64_in(&bktk, b);
            let mut prev_member: Option<u32> = None;
            for at in start..end {
                let member = u32_in(&bmem, at as usize);
                if member as usize >= n {
                    return Err(corrupt("BMEM member out of range"));
                }
                if prev_member.is_some_and(|p| p >= member) {
                    return Err(corrupt("BMEM members not ascending within a bucket"));
                }
                prev_member = Some(member);
                if u64_in(&keys, member as usize) != bucket_key {
                    return Err(corrupt("BMEM member disagrees with its row key"));
                }
            }
        }
        // Payload offsets: partition the slab, and each block's nnz
        // prefix must account for its exact length, so lazy decoding
        // can never run off a block.
        if u64_in(&voff, 0) != 0 || u64_in(&voff, n) != vpay.len() as u64 {
            return Err(corrupt("VOFF does not span exactly the payload slab"));
        }
        for i in 0..n {
            let start = u64_in(&voff, i);
            let end = u64_in(&voff, i + 1);
            if start > end || end > vpay.len() as u64 {
                return Err(corrupt("VOFF offsets are not monotone"));
            }
            let len = end - start;
            if len < 4 {
                return Err(corrupt("VPAY block too short for an nnz prefix"));
            }
            let at = vpay.start + start as usize;
            let nnz = u32::from_le_bytes(map[at..at + 4].try_into().expect("4 bytes")) as u64;
            if len != 4 + nnz * 8 {
                return Err(corrupt("VPAY block length disagrees with its nnz prefix"));
            }
        }
        let mut cells = Vec::with_capacity(n);
        cells.resize_with(n, OnceLock::new);
        Ok(Self {
            map,
            meta,
            n,
            buckets,
            gids,
            keys,
            bktk,
            boff,
            bmem,
            voff,
            vpay,
            cells,
            materialized: AtomicU64::new(0),
        })
    }

    #[inline]
    fn u64_in(&self, r: &Range<usize>, i: usize) -> u64 {
        let at = r.start + i * 8;
        u64::from_le_bytes(self.map[at..at + 8].try_into().expect("8 bytes"))
    }

    /// The checkpoint metadata (epoch, counters, config).
    pub(crate) fn meta(&self) -> &CheckpointMeta {
        &self.meta
    }

    /// Number of base rows.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.n
    }

    /// Number of base buckets.
    #[inline]
    pub(crate) fn num_buckets(&self) -> usize {
        self.buckets
    }

    /// Size of the mapped file in bytes.
    pub(crate) fn file_len(&self) -> usize {
        self.map.len()
    }

    /// True when the view is a real `mmap(2)` mapping (false on the
    /// buffered fallback of non-Unix targets).
    pub(crate) fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// Base vectors whose payload has been decoded into the heap cell.
    pub(crate) fn materialized(&self) -> u64 {
        self.materialized.load(Ordering::Relaxed)
    }

    /// Global id of base row `i`.
    #[inline]
    pub(crate) fn gid(&self, i: usize) -> GlobalId {
        self.u64_in(&self.gids, i)
    }

    /// Whether `global` is a base row (binary search over the ascending
    /// GIDS section).
    pub(crate) fn contains_gid(&self, global: GlobalId) -> bool {
        let mut lo = 0usize;
        let mut hi = self.n;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.gid(mid).cmp(&global) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        false
    }

    /// Bucket key of base row `i`.
    #[inline]
    pub(crate) fn key(&self, i: usize) -> u64 {
        self.u64_in(&self.keys, i)
    }

    /// Key of base bucket `b` (buckets are key-ascending).
    #[inline]
    pub(crate) fn bucket_key(&self, b: usize) -> u64 {
        self.u64_in(&self.bktk, b)
    }

    /// `(start, len)` of bucket `b`'s member run inside the member
    /// array.
    #[inline]
    pub(crate) fn bucket_members(&self, b: usize) -> (usize, usize) {
        let start = self.u64_in(&self.boff, b) as usize;
        let end = self.u64_in(&self.boff, b + 1) as usize;
        (start, end - start)
    }

    /// Member at position `at` of the member array (a base-local row
    /// id).
    #[inline]
    pub(crate) fn member(&self, at: usize) -> VectorId {
        let off = self.bmem.start + at * 4;
        u32::from_le_bytes(self.map[off..off + 4].try_into().expect("4 bytes"))
    }

    /// The whole payload slab (for re-encoding at checkpoint time).
    pub(crate) fn payload_slab(&self) -> &[u8] {
        &self.map[self.vpay.clone()]
    }

    /// Byte offset of row `i`'s payload block inside the slab.
    #[inline]
    pub(crate) fn payload_offset(&self, i: usize) -> u64 {
        self.u64_in(&self.voff, i)
    }

    /// The vector of base row `i`, decoding its payload block into the
    /// row's cell on first touch.
    ///
    /// # Panics
    /// Panics if the block fails vector-invariant validation — ruled
    /// out for disk corruption by the map-time checksums, so a panic
    /// here means a writer bug, not bad media.
    pub(crate) fn vector(&self, i: usize) -> &SparseVector {
        self.cells[i].get_or_init(|| {
            let start = self.payload_offset(i) as usize;
            let end = self.payload_offset(i + 1) as usize;
            let mut block =
                Bytes::copy_from_slice(&self.map[self.vpay.start + start..self.vpay.start + end]);
            let v = io::decode_vector(&mut block)
                .expect("checksummed VPAY block failed vector validation");
            self.materialized.fetch_add(1, Ordering::Relaxed);
            v
        })
    }
}

/// One merged pair bucket (`C(b_j, 2) > 0`) of a [`MappedView`], in
/// key-ascending enumeration order: a run of base members (read from
/// the mapping) followed by a run of overlay members — which is
/// globally id-ascending, exactly like the heap table's bucket member
/// order.
#[derive(Debug, Clone, Copy)]
struct Column {
    base_start: u64,
    base_len: u32,
    tail_start: u32,
    tail_len: u32,
}

/// The published index of a mapped engine: the mapped checkpoint base
/// plus an append-only heap overlay (replayed WAL tail and live
/// inserts), sampling bit-identically to the equivalent heap table.
pub(crate) struct MappedView {
    base: Arc<MappedCheckpoint>,
    k: usize,
    tail_keys: Vec<u64>,
    tail_vectors: Vec<Arc<SparseVector>>,
    columns: Vec<Column>,
    tail_members: Vec<VectorId>,
    alias: Option<AliasTable>,
    nh: u64,
}

impl std::fmt::Debug for MappedView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedView")
            .field("base_n", &self.base.len())
            .field("tail_n", &self.tail_keys.len())
            .field("nh", &self.nh)
            .finish()
    }
}

impl MappedView {
    /// Builds the merged view: walk base buckets (key-ascending by
    /// layout) and overlay key groups (key-ascending by `BTreeMap`) in
    /// a single merge, emitting every bucket with ≥ 2 merged members as
    /// an alias column — the same column sequence and weights the heap
    /// table's sampler derives, hence the same sampling stream.
    pub(crate) fn new(
        base: Arc<MappedCheckpoint>,
        k: usize,
        tail_keys: Vec<u64>,
        tail_vectors: Vec<Arc<SparseVector>>,
    ) -> Self {
        debug_assert_eq!(tail_keys.len(), tail_vectors.len());
        let base_n = base.len();
        let mut tail_groups: BTreeMap<u64, Vec<VectorId>> = BTreeMap::new();
        for (t, &key) in tail_keys.iter().enumerate() {
            tail_groups
                .entry(key)
                .or_default()
                .push((base_n + t) as VectorId);
        }

        let mut columns = Vec::new();
        let mut weights = Vec::new();
        let mut tail_members = Vec::new();
        let mut nh = 0u64;
        let mut emit = |base_start: usize, base_len: usize, tail: Option<&Vec<VectorId>>| {
            let tail_len = tail.map_or(0, Vec::len);
            let weight = pair_count((base_len + tail_len) as u64);
            nh += weight;
            if weight > 0 {
                columns.push(Column {
                    base_start: base_start as u64,
                    base_len: base_len as u32,
                    tail_start: tail_members.len() as u32,
                    tail_len: tail_len as u32,
                });
                weights.push(weight as f64);
                if let Some(members) = tail {
                    tail_members.extend_from_slice(members);
                }
            }
        };

        let mut tail_iter = tail_groups.iter().peekable();
        for b in 0..base.num_buckets() {
            let bucket_key = base.bucket_key(b);
            while tail_iter
                .peek()
                .is_some_and(|(&tail_key, _)| tail_key < bucket_key)
            {
                let (_, members) = tail_iter.next().expect("peeked");
                emit(0, 0, Some(members));
            }
            let merged = tail_iter
                .peek()
                .is_some_and(|(&tail_key, _)| tail_key == bucket_key)
                .then(|| tail_iter.next().expect("peeked").1);
            let (start, len) = base.bucket_members(b);
            emit(start, len, merged);
        }
        for (_, members) in tail_iter {
            emit(0, 0, Some(members));
        }

        let alias = if weights.is_empty() {
            None
        } else {
            Some(AliasTable::new(&weights).expect("positive C(b,2) weights"))
        };
        Self {
            base,
            k,
            tail_keys,
            tail_vectors,
            columns,
            tail_members,
            alias,
            nh,
        }
    }

    /// A new view with `keys`/`vectors` appended to the overlay (the
    /// mapped delta-publish path). The base mapping is shared; merged
    /// columns are rebuilt in O(buckets + overlay).
    pub(crate) fn extended(&self, keys: &[u64], vectors: &[Arc<SparseVector>]) -> Self {
        let mut tail_keys = self.tail_keys.clone();
        tail_keys.extend_from_slice(keys);
        let mut tail_vectors = self.tail_vectors.clone();
        tail_vectors.extend_from_slice(vectors);
        Self::new(self.base.clone(), self.k, tail_keys, tail_vectors)
    }

    /// The mapped base.
    pub(crate) fn base(&self) -> &Arc<MappedCheckpoint> {
        &self.base
    }

    /// The overlay's bucket keys, in overlay-row order.
    pub(crate) fn tail_keys(&self) -> &[u64] {
        &self.tail_keys
    }

    /// The overlay's vectors, in overlay-row order.
    pub(crate) fn tail_vectors(&self) -> &[Arc<SparseVector>] {
        &self.tail_vectors
    }

    /// Total rows: mapped base plus heap overlay.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.base.len() + self.tail_keys.len()
    }

    /// Bucket key of a view-local row id.
    #[inline]
    pub(crate) fn key_of(&self, id: VectorId) -> u64 {
        let id = id as usize;
        if id < self.base.len() {
            self.base.key(id)
        } else {
            self.tail_keys[id - self.base.len()]
        }
    }

    /// The vector of a view-local row id (base rows materialize from
    /// the mapping on first touch).
    #[inline]
    pub(crate) fn vector(&self, id: VectorId) -> &SparseVector {
        let id = id as usize;
        if id < self.base.len() {
            self.base.vector(id)
        } else {
            &self.tail_vectors[id - self.base.len()]
        }
    }

    #[inline]
    fn column_member(&self, col: &Column, i: usize) -> VectorId {
        if i < col.base_len as usize {
            self.base.member(col.base_start as usize + i)
        } else {
            self.tail_members[col.tail_start as usize + (i - col.base_len as usize)]
        }
    }
}

impl IndexView for MappedView {
    #[inline]
    fn len(&self) -> usize {
        MappedView::len(self)
    }

    #[inline]
    fn total_pairs(&self) -> u64 {
        pair_count(MappedView::len(self) as u64)
    }

    #[inline]
    fn nh(&self) -> u64 {
        self.nh
    }

    #[inline]
    fn k(&self) -> usize {
        self.k
    }

    #[inline]
    fn same_bucket(&self, a: VectorId, b: VectorId) -> bool {
        self.key_of(a) == self.key_of(b)
    }

    fn sample_same_bucket_pair<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Option<(VectorId, VectorId)> {
        // Mirrors `LshTable::sample_same_bucket_pair` draw for draw:
        // alias (one `below_usize` + one `next_f64`), then the in-bucket
        // distinct pair.
        let alias = self.alias.as_ref()?;
        let col = self.columns[alias.sample(rng)];
        let b = (col.base_len + col.tail_len) as usize;
        debug_assert!(b >= 2);
        let i = rng.below_usize(b);
        let mut j = rng.below_usize(b - 1);
        if j >= i {
            j += 1;
        }
        Some((self.column_member(&col, i), self.column_member(&col, j)))
    }

    fn sample_cross_bucket_pair<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Option<(VectorId, VectorId)> {
        if IndexView::nl(self) == 0 {
            return None;
        }
        // The dense-index → id indirection of the heap sampler is the
        // identity here: a mapped view is append-only, nothing is ever
        // removed.
        let n = MappedView::len(self) as u64;
        loop {
            let (i, j) = sample_distinct_pair(rng, n);
            let (i, j) = (i as VectorId, j as VectorId);
            if !IndexView::same_bucket(self, i, j) {
                return Some((i, j));
            }
        }
    }

    fn sample_any_pair<R: Rng + ?Sized>(&self, rng: &mut R) -> (VectorId, VectorId, bool) {
        let n = MappedView::len(self) as u64;
        let (i, j) = sample_distinct_pair(rng, n);
        let (i, j) = (i as VectorId, j as VectorId);
        (i, j, IndexView::same_bucket(self, i, j))
    }
}
