//! The out-of-core "map + go" checkpoint tier.
//!
//! [`MappedCheckpoint`] serves a v3 checkpoint container *directly from
//! the on-disk file*: the container is memory-mapped, every section's
//! checksum and the cross-section structure are validated once, and
//! from then on bucket runs, key arrays, and vector payloads are read
//! straight out of the mapping — the base corpus never enters the heap.
//! Vector payloads materialize lazily (one [`OnceLock`] cell per row)
//! the first time an estimator actually touches them, so a cold start
//! costs O(map + validation scan) instead of O(decode + rebuild).
//!
//! [`MappedView`] is the index a mapped engine publishes: the mapped
//! base, minus a [`TombstoneSet`] of removed base rows, plus a heap
//! *overlay* of rows ingested after the checkpoint (the replayed WAL
//! tail and live inserts — including upserts that replace a tombstoned
//! base row). The view presents one **dense id space** `[0, n_live)`
//! in global-id order — exactly the id space the heap
//! [`LshTable`](vsj_lsh::LshTable) would assign to the same live rows —
//! and implements [`IndexView`] with the exact sampling streams of the
//! heap table: merged buckets are enumerated key-ascending, the alias
//! table is built from the same `C(b_j, 2)` weight sequence, and every
//! draw consumes the RNG identically. That is what makes the mapped
//! tier bit-identical to the heap tier at every published
//! `(seed, epoch, τ)` — before, during, and after a background
//! compaction folds the overlay and tombstones into a fresh base.

use std::collections::BTreeMap;
use std::ops::Range;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use bytes::Bytes;
use memmap2::Mmap;
use vsj_core::IndexView;
use vsj_datasets::io::{self, ContainerIndex};
use vsj_sampling::{pair_count, sample_distinct_pair, AliasTable, Rng};
use vsj_vector::{SparseVector, VectorId};

use crate::persist::{
    decode_meta, CheckpointMeta, PersistError, SECTION_BKTK, SECTION_BMEM, SECTION_BOFF,
    SECTION_GIDS, SECTION_KEYS, SECTION_META, SECTION_VOFF, SECTION_VPAY,
};
use crate::GlobalId;

fn corrupt(msg: impl Into<String>) -> PersistError {
    PersistError::Corrupt(msg.into())
}

/// The set of base rows removed (or replaced by an upsert) since the
/// mapped checkpoint was cut: sorted, deduplicated base-row indices.
/// The merged view subtracts these rows from every enumeration, which
/// is what lets `remove`/`upsert` work on a mapped engine without
/// mutating the immutable mapping — compaction later folds the set
/// into a fresh checkpoint and it resets to empty.
#[derive(Debug, Default, Clone)]
pub(crate) struct TombstoneSet {
    rows: Vec<u32>,
}

impl TombstoneSet {
    /// The empty set (a freshly mapped or just-compacted base).
    pub(crate) fn empty() -> Self {
        Self::default()
    }

    /// Builds the set from sorted, deduplicated base-row indices (the
    /// engine's tombstone state is kept sorted by insertion).
    pub(crate) fn from_rows(rows: Vec<u32>) -> Self {
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]), "rows sorted + unique");
        Self { rows }
    }

    /// Number of tombstoned base rows.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no base row is tombstoned.
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Whether base row `row` is tombstoned.
    #[inline]
    pub(crate) fn contains(&self, row: u32) -> bool {
        self.rows.binary_search(&row).is_ok()
    }

    /// Number of tombstoned rows with index strictly below `row`.
    #[inline]
    pub(crate) fn rank_below(&self, row: u32) -> usize {
        self.rows.partition_point(|&d| d < row)
    }

    /// The sorted row indices.
    #[inline]
    pub(crate) fn rows(&self) -> &[u32] {
        &self.rows
    }
}

/// A validated, memory-mapped v3 checkpoint: the base rows of a mapped
/// engine. All integer reads go through `from_le_bytes` on mapped
/// slices; vectors decode lazily into per-row cells on first touch.
pub(crate) struct MappedCheckpoint {
    map: Mmap,
    meta: CheckpointMeta,
    n: usize,
    buckets: usize,
    gids: Range<usize>,
    keys: Range<usize>,
    bktk: Range<usize>,
    boff: Range<usize>,
    bmem: Range<usize>,
    voff: Range<usize>,
    vpay: Range<usize>,
    cells: Vec<OnceLock<SparseVector>>,
    materialized: AtomicU64,
}

impl std::fmt::Debug for MappedCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedCheckpoint")
            .field("n", &self.n)
            .field("buckets", &self.buckets)
            .field("bytes", &self.map.len())
            .field("mapped", &self.map.is_mapped())
            .field("materialized", &self.materialized())
            .finish()
    }
}

impl MappedCheckpoint {
    /// Maps and validates the checkpoint at `path`.
    ///
    /// Validation is one linear scan (the container's per-section
    /// checksums) plus O(n) integer structure checks — no vector is
    /// decoded, no heap table is built. Any framing, checksum, or
    /// cross-section inconsistency fails loudly here so the serving
    /// path can trust the mapping unconditionally.
    pub(crate) fn open(path: &Path) -> Result<Self, PersistError> {
        let file = std::fs::File::open(path)?;
        let map = Mmap::map(&file)?;
        Self::from_map(map)
    }

    fn from_map(map: Mmap) -> Result<Self, PersistError> {
        let index = ContainerIndex::parse(&map)?;
        let meta_range = index.require(SECTION_META)?;
        let (meta, n64) = decode_meta(Bytes::copy_from_slice(&map[meta_range]))?;
        if n64 > u32::MAX as u64 {
            return Err(corrupt(format!("{n64} rows exceed the id space")));
        }
        let n = n64 as usize;
        let gids = index.require(SECTION_GIDS)?;
        let keys = index.require(SECTION_KEYS)?;
        let bktk = index.require(SECTION_BKTK)?;
        let boff = index.require(SECTION_BOFF)?;
        let bmem = index.require(SECTION_BMEM)?;
        let voff = index.require(SECTION_VOFF)?;
        let vpay = index.require(SECTION_VPAY)?;
        if gids.len() != n * 8 || keys.len() != n * 8 || bmem.len() != n * 4 {
            return Err(corrupt(format!(
                "row sections disagree with META row count {n}"
            )));
        }
        if !bktk.len().is_multiple_of(8) {
            return Err(corrupt("BKTK length not a multiple of 8"));
        }
        let buckets = bktk.len() / 8;
        if boff.len() != (buckets + 1) * 8 {
            return Err(corrupt("BOFF is not one offset per bucket plus one"));
        }
        if voff.len() != (n + 1) * 8 {
            return Err(corrupt("VOFF is not one offset per row plus one"));
        }
        let u64_in = |r: &Range<usize>, i: usize| -> u64 {
            let at = r.start + i * 8;
            u64::from_le_bytes(map[at..at + 8].try_into().expect("8 bytes"))
        };
        let u32_in = |r: &Range<usize>, i: usize| -> u32 {
            let at = r.start + i * 4;
            u32::from_le_bytes(map[at..at + 4].try_into().expect("4 bytes"))
        };
        // GIDS: strictly ascending, below the id allocator's watermark.
        for i in 0..n {
            let gid = u64_in(&gids, i);
            if i + 1 < n && gid >= u64_in(&gids, i + 1) {
                return Err(corrupt("GIDS are not strictly ascending"));
            }
            if gid >= meta.next_id {
                return Err(corrupt("a snapshot row carries an unallocated global id"));
            }
        }
        // Buckets: keys strictly ascending, offsets partition exactly
        // [0, n), members ascending within their bucket and carrying
        // the bucket's key — with Σ sizes = n this proves the buckets
        // exactly cover the rows.
        if buckets > 0 {
            for b in 0..buckets - 1 {
                if u64_in(&bktk, b) >= u64_in(&bktk, b + 1) {
                    return Err(corrupt("BKTK bucket keys are not strictly ascending"));
                }
            }
        }
        if u64_in(&boff, 0) != 0 || u64_in(&boff, buckets) != n as u64 {
            return Err(corrupt("BOFF does not span exactly the row count"));
        }
        for b in 0..buckets {
            let start = u64_in(&boff, b);
            let end = u64_in(&boff, b + 1);
            if start >= end || end > n as u64 {
                return Err(corrupt("BOFF offsets are not strictly increasing"));
            }
            let bucket_key = u64_in(&bktk, b);
            let mut prev_member: Option<u32> = None;
            for at in start..end {
                let member = u32_in(&bmem, at as usize);
                if member as usize >= n {
                    return Err(corrupt("BMEM member out of range"));
                }
                if prev_member.is_some_and(|p| p >= member) {
                    return Err(corrupt("BMEM members not ascending within a bucket"));
                }
                prev_member = Some(member);
                if u64_in(&keys, member as usize) != bucket_key {
                    return Err(corrupt("BMEM member disagrees with its row key"));
                }
            }
        }
        // Payload offsets: partition the slab, and each block's nnz
        // prefix must account for its exact length, so lazy decoding
        // can never run off a block.
        if u64_in(&voff, 0) != 0 || u64_in(&voff, n) != vpay.len() as u64 {
            return Err(corrupt("VOFF does not span exactly the payload slab"));
        }
        for i in 0..n {
            let start = u64_in(&voff, i);
            let end = u64_in(&voff, i + 1);
            if start > end || end > vpay.len() as u64 {
                return Err(corrupt("VOFF offsets are not monotone"));
            }
            let len = end - start;
            if len < 4 {
                return Err(corrupt("VPAY block too short for an nnz prefix"));
            }
            let at = vpay.start + start as usize;
            let nnz = u32::from_le_bytes(map[at..at + 4].try_into().expect("4 bytes")) as u64;
            if len != 4 + nnz * 8 {
                return Err(corrupt("VPAY block length disagrees with its nnz prefix"));
            }
        }
        let mut cells = Vec::with_capacity(n);
        cells.resize_with(n, OnceLock::new);
        Ok(Self {
            map,
            meta,
            n,
            buckets,
            gids,
            keys,
            bktk,
            boff,
            bmem,
            voff,
            vpay,
            cells,
            materialized: AtomicU64::new(0),
        })
    }

    #[inline]
    fn u64_in(&self, r: &Range<usize>, i: usize) -> u64 {
        let at = r.start + i * 8;
        u64::from_le_bytes(self.map[at..at + 8].try_into().expect("8 bytes"))
    }

    /// The checkpoint metadata (epoch, counters, config).
    pub(crate) fn meta(&self) -> &CheckpointMeta {
        &self.meta
    }

    /// Number of base rows.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.n
    }

    /// Number of base buckets.
    #[inline]
    pub(crate) fn num_buckets(&self) -> usize {
        self.buckets
    }

    /// Size of the mapped file in bytes.
    pub(crate) fn file_len(&self) -> usize {
        self.map.len()
    }

    /// True when the view is a real `mmap(2)` mapping (false on the
    /// buffered fallback of non-Unix targets).
    pub(crate) fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// Base vectors whose payload has been decoded into the heap cell.
    pub(crate) fn materialized(&self) -> u64 {
        self.materialized.load(Ordering::Relaxed)
    }

    /// Global id of base row `i`.
    #[inline]
    pub(crate) fn gid(&self, i: usize) -> GlobalId {
        self.u64_in(&self.gids, i)
    }

    /// Base row holding `global`, if any (binary search over the
    /// ascending GIDS section). Whether that row is *live* is the
    /// caller's tombstone check.
    pub(crate) fn find_gid(&self, global: GlobalId) -> Option<usize> {
        let mut lo = 0usize;
        let mut hi = self.n;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.gid(mid).cmp(&global) {
                std::cmp::Ordering::Equal => return Some(mid),
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        None
    }

    /// Bucket key of base row `i`.
    #[inline]
    pub(crate) fn key(&self, i: usize) -> u64 {
        self.u64_in(&self.keys, i)
    }

    /// Key of base bucket `b` (buckets are key-ascending).
    #[inline]
    pub(crate) fn bucket_key(&self, b: usize) -> u64 {
        self.u64_in(&self.bktk, b)
    }

    /// `(start, len)` of bucket `b`'s member run inside the member
    /// array.
    #[inline]
    pub(crate) fn bucket_members(&self, b: usize) -> (usize, usize) {
        let start = self.u64_in(&self.boff, b) as usize;
        let end = self.u64_in(&self.boff, b + 1) as usize;
        (start, end - start)
    }

    /// Member at position `at` of the member array (a base-local row
    /// id).
    #[inline]
    pub(crate) fn member(&self, at: usize) -> VectorId {
        let off = self.bmem.start + at * 4;
        u32::from_le_bytes(self.map[off..off + 4].try_into().expect("4 bytes"))
    }

    /// The whole payload slab (for re-encoding at checkpoint time).
    pub(crate) fn payload_slab(&self) -> &[u8] {
        &self.map[self.vpay.clone()]
    }

    /// Byte offset of row `i`'s payload block inside the slab.
    #[inline]
    pub(crate) fn payload_offset(&self, i: usize) -> u64 {
        self.u64_in(&self.voff, i)
    }

    /// The vector of base row `i`, decoding its payload block into the
    /// row's cell on first touch.
    ///
    /// # Panics
    /// Panics if the block fails vector-invariant validation — ruled
    /// out for disk corruption by the map-time checksums, so a panic
    /// here means a writer bug, not bad media.
    pub(crate) fn vector(&self, i: usize) -> &SparseVector {
        self.cells[i].get_or_init(|| {
            let start = self.payload_offset(i) as usize;
            let end = self.payload_offset(i + 1) as usize;
            let mut block =
                Bytes::copy_from_slice(&self.map[self.vpay.start + start..self.vpay.start + end]);
            let v = io::decode_vector(&mut block)
                .expect("checksummed VPAY block failed vector validation");
            self.materialized.fetch_add(1, Ordering::Relaxed);
            v
        })
    }
}

/// Where a dense view id resolves: a live base row of the mapping, or
/// an overlay row on the heap. The checkpoint writer walks dense ids
/// through this to byte-copy base payload blocks and re-encode only the
/// overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MappedRow {
    /// Base row index into the mapped checkpoint.
    Base(usize),
    /// Overlay row index into the view's tail.
    Tail(usize),
}

/// One merged pair bucket (`C(b_j, 2) > 0`) of a [`MappedView`], in
/// key-ascending enumeration order. Members are **dense view ids**
/// (global-id ascending), matching the heap table's bucket member
/// order exactly.
#[derive(Debug, Clone, Copy)]
enum Column {
    /// The common shape: no tombstoned member, and every overlay member
    /// sorts after every base member (append-only buckets). Base
    /// members are read from the mapping and converted to dense ids at
    /// sample time; overlay members are a run of `tail_members`.
    Direct {
        base_start: u64,
        base_len: u32,
        tail_start: u32,
        tail_len: u32,
    },
    /// A bucket touched by a tombstone or an interleaving upsert: its
    /// live members were merged explicitly into a run of `patched`.
    Patched { start: u32, len: u32 },
}

/// The published index of a mapped engine: the mapped checkpoint base,
/// minus its tombstoned rows, plus a heap overlay — presented as one
/// dense id space in global-id order, sampling bit-identically to the
/// equivalent heap table.
pub(crate) struct MappedView {
    base: Arc<MappedCheckpoint>,
    k: usize,
    tombstones: Arc<TombstoneSet>,
    tail_gids: Vec<GlobalId>,
    tail_keys: Vec<u64>,
    tail_vectors: Vec<Arc<SparseVector>>,
    /// Dense view id of each overlay row (ascending — overlay rows are
    /// gid-sorted).
    tail_dense: Vec<VectorId>,
    /// Encoded size of the overlay's payload blocks — the "heap bytes
    /// a compaction would fold away" trigger signal.
    tail_bytes: u64,
    /// Fast path: no tombstones and the whole overlay sorts after the
    /// whole base, so dense ids are the identity over base rows.
    plain: bool,
    columns: Vec<Column>,
    tail_members: Vec<VectorId>,
    patched: Vec<VectorId>,
    alias: Option<AliasTable>,
    nh: u64,
}

impl std::fmt::Debug for MappedView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedView")
            .field("base_n", &self.base.len())
            .field("tombstones", &self.tombstones.len())
            .field("tail_n", &self.tail_keys.len())
            .field("nh", &self.nh)
            .finish()
    }
}

impl MappedView {
    /// Builds the merged view from the base, the tombstone set, and the
    /// overlay rows (`(gid, key, vector)`, strictly ascending by gid,
    /// never colliding with a live base gid — the caller validates).
    ///
    /// Walks base buckets (key-ascending by layout) and overlay key
    /// groups (key-ascending by `BTreeMap`) in a single merge, emitting
    /// every bucket with ≥ 2 live merged members as an alias column —
    /// the same column sequence and weights the heap table's sampler
    /// derives over the live rows, hence the same sampling stream. Only
    /// buckets actually touched by a tombstone or an interleaving
    /// overlay row pay an explicit member merge; the append-only rest
    /// stays O(1) per bucket.
    pub(crate) fn new(
        base: Arc<MappedCheckpoint>,
        k: usize,
        tombstones: Arc<TombstoneSet>,
        tail: Vec<(GlobalId, u64, Arc<SparseVector>)>,
    ) -> Self {
        debug_assert!(tail.windows(2).all(|w| w[0].0 < w[1].0), "tail gid-sorted");
        let base_n = base.len();
        let mut tail_gids = Vec::with_capacity(tail.len());
        let mut tail_keys = Vec::with_capacity(tail.len());
        let mut tail_vectors = Vec::with_capacity(tail.len());
        let mut tail_bytes = 0u64;
        for (gid, key, v) in tail {
            tail_gids.push(gid);
            tail_keys.push(key);
            tail_bytes += 4 + 8 * v.nnz() as u64;
            tail_vectors.push(v);
        }
        let plain = tombstones.is_empty()
            && (tail_gids.is_empty() || base_n == 0 || tail_gids[0] > base.gid(base_n - 1));

        // Dense id of each overlay row: live base rows with a smaller
        // gid, plus earlier overlay rows (gid-sorted, so exactly `t`).
        let dead = tombstones.rows();
        let live_base_below_gid = |gid: GlobalId| -> usize {
            let mut lo = 0usize;
            let mut hi = base_n;
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if base.gid(mid) < gid {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            lo - dead.partition_point(|&d| (d as usize) < lo)
        };
        let tail_dense: Vec<VectorId> = tail_gids
            .iter()
            .enumerate()
            .map(|(t, &gid)| (live_base_below_gid(gid) + t) as VectorId)
            .collect();
        let dense_of_row = |row: VectorId| -> VectorId {
            if plain {
                return row;
            }
            let live_rank = row as usize - dead.partition_point(|&d| d < row);
            let below = tail_gids.partition_point(|&g| g < base.gid(row as usize));
            (live_rank + below) as VectorId
        };

        // Buckets a tombstone touches, found by key lookup: only these
        // pay the explicit member merge.
        let mut dead_in_bucket: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        for &row in dead {
            let key = base.key(row as usize);
            let mut lo = 0usize;
            let mut hi = base.num_buckets();
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if base.bucket_key(mid) < key {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            debug_assert!(lo < base.num_buckets() && base.bucket_key(lo) == key);
            dead_in_bucket.entry(lo).or_default().push(row);
        }

        let mut tail_groups: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for (t, &key) in tail_keys.iter().enumerate() {
            tail_groups.entry(key).or_default().push(t as u32);
        }

        let mut columns = Vec::new();
        let mut weights = Vec::new();
        let mut tail_members: Vec<VectorId> = Vec::new();
        let mut patched: Vec<VectorId> = Vec::new();
        let mut nh = 0u64;
        let empty_dead: Vec<u32> = Vec::new();
        let mut emit = |bucket: Option<usize>, group: Option<&Vec<u32>>| {
            let (start, len, bucket_dead) = match bucket {
                Some(b) => {
                    let (s, l) = base.bucket_members(b);
                    (s, l, dead_in_bucket.get(&b).unwrap_or(&empty_dead))
                }
                None => (0, 0, &empty_dead),
            };
            let live_len = len - bucket_dead.len();
            let tail_len = group.map_or(0, Vec::len);
            let weight = pair_count((live_len + tail_len) as u64);
            nh += weight;
            if weight == 0 {
                return;
            }
            weights.push(weight as f64);
            // Direct needs dense-ascending concatenation: all base
            // members live, and the first overlay gid past the last
            // base member's gid.
            let interleaved = live_len > 0 && tail_len > 0 && {
                let last_row = base.member(start + len - 1);
                tail_gids[group.expect("tail_len > 0")[0] as usize] < base.gid(last_row as usize)
            };
            if bucket_dead.is_empty() && !interleaved {
                let tail_start = tail_members.len() as u32;
                if let Some(group) = group {
                    tail_members.extend(group.iter().map(|&t| tail_dense[t as usize]));
                }
                columns.push(Column::Direct {
                    base_start: start as u64,
                    base_len: len as u32,
                    tail_start,
                    tail_len: tail_len as u32,
                });
            } else {
                let p_start = patched.len() as u32;
                let live: Vec<VectorId> = (0..len)
                    .map(|off| base.member(start + off))
                    .filter(|row| bucket_dead.binary_search(row).is_err())
                    .map(dense_of_row)
                    .collect();
                let tail_ds: Vec<VectorId> = group
                    .map(|g| g.iter().map(|&t| tail_dense[t as usize]).collect())
                    .unwrap_or_default();
                let (mut a, mut b) = (0usize, 0usize);
                while a < live.len() && b < tail_ds.len() {
                    if live[a] < tail_ds[b] {
                        patched.push(live[a]);
                        a += 1;
                    } else {
                        patched.push(tail_ds[b]);
                        b += 1;
                    }
                }
                patched.extend_from_slice(&live[a..]);
                patched.extend_from_slice(&tail_ds[b..]);
                columns.push(Column::Patched {
                    start: p_start,
                    len: (live_len + tail_len) as u32,
                });
            }
        };

        let mut tail_iter = tail_groups.iter().peekable();
        for b in 0..base.num_buckets() {
            let bucket_key = base.bucket_key(b);
            while tail_iter
                .peek()
                .is_some_and(|(&tail_key, _)| tail_key < bucket_key)
            {
                let (_, members) = tail_iter.next().expect("peeked");
                emit(None, Some(members));
            }
            let merged = tail_iter
                .peek()
                .is_some_and(|(&tail_key, _)| tail_key == bucket_key)
                .then(|| tail_iter.next().expect("peeked").1);
            emit(Some(b), merged);
        }
        for (_, members) in tail_iter {
            emit(None, Some(members));
        }

        let alias = if weights.is_empty() {
            None
        } else {
            Some(AliasTable::new(&weights).expect("positive C(b,2) weights"))
        };
        Self {
            base,
            k,
            tombstones,
            tail_gids,
            tail_keys,
            tail_vectors,
            tail_dense,
            tail_bytes,
            plain,
            columns,
            tail_members,
            patched,
            alias,
            nh,
        }
    }

    /// A new view with `rows` appended to the overlay (the mapped
    /// delta-publish path — tombstones unchanged by construction). The
    /// base mapping and tombstone set are shared; merged columns are
    /// rebuilt in O(buckets + overlay).
    pub(crate) fn extended(&self, rows: &[(GlobalId, u64, Arc<SparseVector>)]) -> Self {
        let mut tail: Vec<(GlobalId, u64, Arc<SparseVector>)> = self
            .tail_gids
            .iter()
            .zip(&self.tail_keys)
            .zip(&self.tail_vectors)
            .map(|((&g, &k), v)| (g, k, v.clone()))
            .collect();
        tail.extend_from_slice(rows);
        Self::new(self.base.clone(), self.k, self.tombstones.clone(), tail)
    }

    /// The mapped base.
    pub(crate) fn base(&self) -> &Arc<MappedCheckpoint> {
        &self.base
    }

    /// The tombstone set this view was published with.
    pub(crate) fn tombstones(&self) -> &Arc<TombstoneSet> {
        &self.tombstones
    }

    /// The overlay's vectors, in overlay-row order.
    pub(crate) fn tail_vectors(&self) -> &[Arc<SparseVector>] {
        &self.tail_vectors
    }

    /// Encoded bytes of the overlay's payload blocks — the heap-resident
    /// weight a compaction folds back into the mapping.
    #[inline]
    pub(crate) fn tail_bytes(&self) -> u64 {
        self.tail_bytes
    }

    /// Live rows: base minus tombstones plus overlay.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.base.len() - self.tombstones.len() + self.tail_keys.len()
    }

    /// Resolves a dense view id to its backing row.
    pub(crate) fn row_of_dense(&self, id: VectorId) -> MappedRow {
        if self.plain {
            let id = id as usize;
            return if id < self.base.len() {
                MappedRow::Base(id)
            } else {
                MappedRow::Tail(id - self.base.len())
            };
        }
        match self.tail_dense.binary_search(&id) {
            Ok(t) => MappedRow::Tail(t),
            Err(t) => {
                // `id` is the (id - t)-th live base row; select it by
                // binary search over the live-rank prefix function.
                let live_rank = id as usize - t;
                let dead = self.tombstones.rows();
                let mut lo = 0usize;
                let mut hi = self.base.len();
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    let live_through = mid + 1 - dead.partition_point(|&d| (d as usize) <= mid);
                    if live_through <= live_rank {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                debug_assert!(lo < self.base.len() && !self.tombstones.contains(lo as u32));
                MappedRow::Base(lo)
            }
        }
    }

    /// Bucket key of a dense view id.
    #[inline]
    pub(crate) fn key_of(&self, id: VectorId) -> u64 {
        match self.row_of_dense(id) {
            MappedRow::Base(row) => self.base.key(row),
            MappedRow::Tail(t) => self.tail_keys[t],
        }
    }

    /// The vector of a dense view id (base rows materialize from the
    /// mapping on first touch).
    #[inline]
    pub(crate) fn vector(&self, id: VectorId) -> &SparseVector {
        match self.row_of_dense(id) {
            MappedRow::Base(row) => self.base.vector(row),
            MappedRow::Tail(t) => &self.tail_vectors[t],
        }
    }

    /// Dense view id of a live base row.
    #[inline]
    fn dense_of_base_row(&self, row: VectorId) -> VectorId {
        if self.plain {
            return row;
        }
        let live_rank = row as usize - self.tombstones.rank_below(row);
        let below = self
            .tail_gids
            .partition_point(|&g| g < self.base.gid(row as usize));
        (live_rank + below) as VectorId
    }

    #[inline]
    fn column_member(&self, col: &Column, i: usize) -> VectorId {
        match *col {
            Column::Direct {
                base_start,
                base_len,
                tail_start,
                ..
            } => {
                if i < base_len as usize {
                    self.dense_of_base_row(self.base.member(base_start as usize + i))
                } else {
                    self.tail_members[tail_start as usize + (i - base_len as usize)]
                }
            }
            Column::Patched { start, .. } => self.patched[start as usize + i],
        }
    }

    #[inline]
    fn column_len(col: &Column) -> usize {
        match *col {
            Column::Direct {
                base_len, tail_len, ..
            } => (base_len + tail_len) as usize,
            Column::Patched { len, .. } => len as usize,
        }
    }
}

impl IndexView for MappedView {
    #[inline]
    fn len(&self) -> usize {
        MappedView::len(self)
    }

    #[inline]
    fn total_pairs(&self) -> u64 {
        pair_count(MappedView::len(self) as u64)
    }

    #[inline]
    fn nh(&self) -> u64 {
        self.nh
    }

    #[inline]
    fn k(&self) -> usize {
        self.k
    }

    #[inline]
    fn same_bucket(&self, a: VectorId, b: VectorId) -> bool {
        self.key_of(a) == self.key_of(b)
    }

    fn sample_same_bucket_pair<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Option<(VectorId, VectorId)> {
        // Mirrors `LshTable::sample_same_bucket_pair` draw for draw:
        // alias (one `below_usize` + one `next_f64`), then the in-bucket
        // distinct pair.
        let alias = self.alias.as_ref()?;
        let col = self.columns[alias.sample(rng)];
        let b = Self::column_len(&col);
        debug_assert!(b >= 2);
        let i = rng.below_usize(b);
        let mut j = rng.below_usize(b - 1);
        if j >= i {
            j += 1;
        }
        Some((self.column_member(&col, i), self.column_member(&col, j)))
    }

    fn sample_cross_bucket_pair<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Option<(VectorId, VectorId)> {
        if IndexView::nl(self) == 0 {
            return None;
        }
        // The heap sampler's dense-index → id indirection is over live
        // rows in global-id order — exactly this view's dense id space,
        // so drawing dense ids directly consumes the RNG identically.
        let n = MappedView::len(self) as u64;
        loop {
            let (i, j) = sample_distinct_pair(rng, n);
            let (i, j) = (i as VectorId, j as VectorId);
            if !IndexView::same_bucket(self, i, j) {
                return Some((i, j));
            }
        }
    }

    fn sample_any_pair<R: Rng + ?Sized>(&self, rng: &mut R) -> (VectorId, VectorId, bool) {
        let n = MappedView::len(self) as u64;
        let (i, j) = sample_distinct_pair(rng, n);
        let (i, j) = (i as VectorId, j as VectorId);
        (i, j, IndexView::same_bucket(self, i, j))
    }
}
