//! The concurrent estimation engine.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use vsj_core::{Estimate, IndexView, LshSs, LshSsConfig};
use vsj_exact::ExactJoin;
use vsj_lsh::{BucketHasher, Composite, MinHashFamily, SimHashFamily};
use vsj_obs::{snapshot_ordered, Counter, Gauge, Histogram, ObsOptions, Registry};
use vsj_pool::WorkPool;
use vsj_sampling::{signed_relative_error, Rng, RngStreams, SplitMix64, Xoshiro256};
use vsj_vector::{pairs_of, Cosine, Jaccard, SparseVector, VectorCollection, VectorStore};

use crate::audit::{AuditOptions, AuditRecord, AuditState, QualityReport};
use crate::cache::{CacheEntry, CacheKey, EstimateCache};
use crate::config::{DurabilityOptions, FsyncPolicy, IndexFamily, ServiceConfig, StorageTier};
use crate::mapped::{MappedCheckpoint, TombstoneSet};
use crate::persist::{self, CheckpointMeta, PersistError, CHECKPOINT_FILE, WAL_FILE};
use crate::shard::{ShardDelta, ShardState, ShardStats};
use crate::snapshot::Snapshot;
use crate::wal::{self, WalMetrics, WalOp, WalRecord, WalSet};
use crate::GlobalId;

/// Shard whose segment chain carries publish barrier records.
const PUBLISH_SHARD: usize = 0;

/// Storage attachment of a durable engine: the directory holding the
/// checkpoint generations, the per-shard segmented [`WalSet`], and the
/// **apply gate** that makes parallel durable writes replayable.
///
/// Every durable ingest holds the gate *shared* across sequence
/// assignment, log append, and apply — writers on different shards run
/// fully in parallel (they contend only on their own shard's locks).
/// Publish barriers and checkpoints take the gate *exclusive*: with no
/// ingest anywhere between its sequence and its apply, "all records
/// below the barrier's sequence are applied, none above it" holds at
/// the instant the barrier is logged — which is exactly what lets the
/// merge-replay reproduce every cut bit for bit.
struct Durability {
    dir: PathBuf,
    wal: WalSet,
    gate: RwLock<()>,
    /// Records appended since the last checkpoint cut, mirrored in an
    /// atomic so `stats()`/`wal_pending()` never block on a checkpoint
    /// in progress.
    pending: AtomicU64,
    /// Cut sequences of the checkpoint generations on disk, newest
    /// first (`[0]` = current). Their minimum is the WAL retention
    /// horizon: segments older than it can serve no kept generation and
    /// are dropped at the next checkpoint.
    horizons: Mutex<Vec<u64>>,
    options: DurabilityOptions,
}

/// The engine's metric handles, all registered against one [`Registry`]
/// (also the home of the WAL and, in a serving deployment, the exposure
/// point of `GET /metrics`). The counters here *are* the engine's
/// counters — [`EngineStats`] reads them through [`snapshot_ordered`],
/// which is what rules out torn-snapshot inversions like
/// `cache_misses < sampling_passes`.
struct EngineMetrics {
    registry: Registry,
    /// Bucket layouts, kept so the WAL series can register lazily
    /// (storage attaches after construction).
    obs: ObsOptions,
    ingests: Counter,
    publishes: Counter,
    delta_publishes: Counter,
    full_publishes: Counter,
    sampling_passes: Counter,
    sampled_pairs: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    publish_delta_us: Histogram,
    publish_full_us: Histogram,
    sampling_us: Histogram,
    pairs_per_pass: Histogram,
    cache_hit_us: Histogram,
    ingest_apply_us: Histogram,
    /// Checkpoint mappings established (mapped recoveries and
    /// compaction re-maps).
    checkpoint_maps: Counter,
    /// Mapped recoveries that fell back to the heap tier — only a
    /// genuinely destructive legacy single-file WAL or an unmappable
    /// checkpoint; removals/upserts are tombstoned in place since the
    /// compaction tier landed.
    mapped_fallbacks: Counter,
    /// Background compactions completed (overlay + tombstones folded
    /// into a fresh mapped base).
    compactions: Counter,
    compaction_us: Histogram,
    /// Encoded bytes of the published mapped-tier heap overlay.
    overlay_bytes: Gauge,
    /// Tombstoned mapped base rows awaiting compaction.
    tombstone_rows: Gauge,
    /// Bytes currently served from a checkpoint mapping.
    mapped_bytes: Gauge,
    /// Base vectors materialized from the mapping so far (refreshed by
    /// `stats()`).
    mapped_materialized: Gauge,
    /// Process major page faults (refreshed by `stats()`; the mapped
    /// tier's "how much of the base did we actually touch" signal).
    major_faults: Gauge,
    coldstart_heap_us: Histogram,
    coldstart_mapped_us: Histogram,
    /// Tasks executed by the engine's work pool (refreshed by
    /// `stats()`).
    pool_tasks: Counter,
    /// Tasks a pool worker stole from another worker's queue
    /// (refreshed by `stats()`).
    pool_steals: Counter,
    /// Tasks currently queued in the pool (refreshed by `stats()`).
    pool_queue_depth: Gauge,
    /// Per-task pool execution latency (fed live by the pool observer).
    pool_task_us: Histogram,
}

impl EngineMetrics {
    fn new(obs: ObsOptions) -> Self {
        obs.validate();
        let registry = Registry::new();
        let latency = obs.latency_spec();
        let size = obs.size_spec();
        Self {
            ingests: registry.counter(
                "vsj_engine_ingests_total",
                "Ingest operations (inserts + removes + upsert halves)",
            ),
            publishes: registry.counter("vsj_engine_publishes_total", "Snapshots published"),
            delta_publishes: registry.counter(
                "vsj_engine_delta_publishes_total",
                "Publishes served by the incremental O(changed) path",
            ),
            full_publishes: registry.counter(
                "vsj_engine_full_publishes_total",
                "Publishes that fell back to the full pointer-merge",
            ),
            sampling_passes: registry.counter(
                "vsj_engine_sampling_passes_total",
                "Estimate computations that actually sampled",
            ),
            sampled_pairs: registry.counter(
                "vsj_engine_sampled_pairs_total",
                "Total pair draws across all sampling passes",
            ),
            cache_hits: registry.counter("vsj_engine_cache_hits_total", "Estimate-cache hits"),
            cache_misses: registry
                .counter("vsj_engine_cache_misses_total", "Estimate-cache misses"),
            publish_delta_us: registry.histogram_with(
                "vsj_engine_publish_duration_us",
                "Snapshot publish duration in microseconds",
                &[("kind", "delta")],
                latency,
            ),
            publish_full_us: registry.histogram_with(
                "vsj_engine_publish_duration_us",
                "Snapshot publish duration in microseconds",
                &[("kind", "full")],
                latency,
            ),
            sampling_us: registry.histogram(
                "vsj_engine_sampling_duration_us",
                "Sampling-pass duration in microseconds",
                latency,
            ),
            pairs_per_pass: registry.histogram(
                "vsj_engine_sampling_pairs",
                "Pairs drawn per sampling pass",
                size,
            ),
            cache_hit_us: registry.histogram(
                "vsj_engine_cache_hit_duration_us",
                "Cache-served estimate latency in microseconds",
                latency,
            ),
            ingest_apply_us: registry.histogram(
                "vsj_engine_ingest_apply_duration_us",
                "Per-shard ingest apply time under the shard lock in microseconds",
                latency,
            ),
            checkpoint_maps: registry.counter(
                "vsj_engine_checkpoint_maps_total",
                "Checkpoint mappings established (mapped-tier recoveries)",
            ),
            mapped_fallbacks: registry.counter(
                "vsj_engine_mapped_fallbacks_total",
                "Mapped-tier recoveries that fell back to heap decoding",
            ),
            compactions: registry.counter(
                "vsj_engine_compactions_total",
                "Background compactions folding overlay + tombstones into a fresh mapped base",
            ),
            compaction_us: registry.histogram(
                "vsj_engine_compaction_duration_us",
                "Compaction duration (cut + fold + re-map) in microseconds",
                latency,
            ),
            overlay_bytes: registry.gauge(
                "vsj_engine_overlay_bytes",
                "Encoded bytes of the published mapped-tier heap overlay",
            ),
            tombstone_rows: registry.gauge(
                "vsj_engine_tombstones",
                "Tombstoned mapped base rows awaiting compaction",
            ),
            mapped_bytes: registry.gauge(
                "vsj_engine_mapped_bytes",
                "Bytes served from the current checkpoint mapping",
            ),
            mapped_materialized: registry.gauge(
                "vsj_engine_mapped_materialized_vectors",
                "Mapped base vectors decoded into heap cells on demand",
            ),
            major_faults: registry.gauge(
                "vsj_process_major_page_faults",
                "Major page faults of this process (mapped-tier cold reads)",
            ),
            coldstart_heap_us: registry.histogram_with(
                "vsj_engine_coldstart_duration_us",
                "Recovery time to a serving engine in microseconds",
                &[("tier", "heap")],
                latency,
            ),
            coldstart_mapped_us: registry.histogram_with(
                "vsj_engine_coldstart_duration_us",
                "Recovery time to a serving engine in microseconds",
                &[("tier", "mapped")],
                latency,
            ),
            pool_tasks: registry.counter(
                "vsj_pool_tasks_total",
                "Tasks executed by the engine work pool",
            ),
            pool_steals: registry.counter(
                "vsj_pool_steal_total",
                "Pool tasks stolen from another worker's queue",
            ),
            pool_queue_depth: registry.gauge(
                "vsj_pool_queue_depth",
                "Tasks currently queued in the engine work pool",
            ),
            pool_task_us: registry.histogram(
                "vsj_pool_task_duration_us",
                "Work-pool task execution time in microseconds",
                latency,
            ),
            registry,
            obs,
        }
    }

    /// WAL histogram handles on this registry (idempotent).
    fn wal_metrics(&self) -> WalMetrics {
        WalMetrics::registered(
            &self.registry,
            self.obs.latency_spec(),
            self.obs.size_spec(),
        )
    }
}

/// One answer from the service, with the provenance a query optimizer
/// (or an SLA dashboard) needs to judge it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceEstimate {
    /// The join-size estimate (value + how it was formed).
    pub estimate: Estimate,
    /// Standard error of the estimate: the square root of the summed
    /// per-stratum variances the same sampling pass accumulated (see
    /// [`vsj_core::LshSsEstimate::std_err`]). Cache-served answers
    /// replay the std_err recorded when they were computed.
    pub std_err: f64,
    /// Epoch of the snapshot it was computed on.
    pub epoch: u64,
    /// Live vectors in that snapshot.
    pub n: usize,
    /// The threshold asked for.
    pub tau: f64,
    /// Whether the answer came from the estimate cache (no sampling
    /// performed by this call).
    pub cached: bool,
}

/// Normal-approximation z for the served ~95% confidence interval.
const CI_Z: f64 = 1.96;

/// `b` distinct indices drawn uniformly from `0..n` (partial
/// Fisher–Yates over a sparse swap map: O(b) time and space, no O(n)
/// permutation) — the audit loop's bounded-stratum selection.
fn sample_distinct_indices(n: usize, b: usize, rng: &mut Xoshiro256) -> Vec<usize> {
    debug_assert!(b <= n);
    let mut swaps: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(b);
    for i in 0..b {
        let j = i + rng.below((n - i) as u64) as usize;
        let pick = *swaps.get(&j).unwrap_or(&j);
        let at_i = *swaps.get(&i).unwrap_or(&i);
        swaps.insert(j, at_i);
        out.push(pick);
    }
    out
}

impl ServiceEstimate {
    /// Lower edge of the ~95% normal-approximation confidence interval,
    /// clamped to `[0, value]` — a join size is never negative, and the
    /// interval always contains the point estimate.
    pub fn ci_low(&self) -> f64 {
        (self.estimate.value - CI_Z * self.std_err)
            .max(0.0)
            .min(self.estimate.value)
    }

    /// Upper edge of the ~95% normal-approximation confidence interval
    /// (always ≥ the point estimate).
    pub fn ci_high(&self) -> f64 {
        (self.estimate.value + CI_Z * self.std_err).max(self.estimate.value)
    }
}

/// Point-in-time engine statistics.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Epoch of the currently published snapshot.
    pub epoch: u64,
    /// Live vectors across all shards (may be ahead of the snapshot).
    pub live: usize,
    /// Total ingest operations (inserts + removes + upsert halves).
    pub ingests: u64,
    /// Ingest operations applied since the current snapshot's cut — the
    /// staleness of the read view, and the signal a serving layer sheds
    /// load on (see [`EstimationEngine::publish_lag`]).
    pub publish_lag: u64,
    /// Snapshots published.
    pub publishes: u64,
    /// Publishes served by the incremental O(changed) path (append-only
    /// epochs extending the previous snapshot).
    pub delta_publishes: u64,
    /// Publishes that fell back to the full pointer-merge (epochs with
    /// removals, upserts of existing ids, or out-of-order id arrivals).
    pub full_publishes: u64,
    /// Per-shard breakdown.
    pub shards: Vec<ShardStats>,
    /// Estimate-cache hits.
    pub cache_hits: u64,
    /// Estimate-cache misses.
    pub cache_misses: u64,
    /// Resident cache entries.
    pub cache_entries: usize,
    /// Estimate computations that actually sampled (cache misses served).
    pub sampling_passes: u64,
    /// Total pair draws across those passes.
    pub sampled_pairs: u64,
    /// WAL records not yet covered by a checkpoint (0 for non-durable
    /// engines).
    pub wal_pending: u64,
    /// Per-shard WAL backlog (records past the checkpoint cut on each
    /// shard's segment chain) — the serving layer's per-shard shed
    /// signal. Empty for non-durable engines.
    pub wal_shard_pending: Vec<u64>,
    /// Live WAL segment files across all shards (0 when non-durable).
    pub wal_segments: u64,
    /// fsync calls the WAL issued — appends under
    /// [`FsyncPolicy::Always`](crate::FsyncPolicy) share one per
    /// group-commit batch, segment seals and checkpoint cuts always
    /// sync.
    pub wal_fsyncs: u64,
    /// Segment rotations (seal + fresh segment).
    pub wal_rotations: u64,
    /// Background compactions completed (mapped tier; see
    /// [`EstimationEngine::compact`]).
    pub compactions: u64,
    /// Encoded bytes of the published mapped-tier heap overlay (0 on
    /// the heap tier, and again right after a compaction folds the
    /// overlay into the base).
    pub overlay_bytes: u64,
    /// Tombstoned mapped base rows awaiting compaction.
    pub tombstones: usize,
    /// Worker threads in the engine's data-parallel pool (1 means the
    /// pool is disabled and every hot path runs its serial legacy
    /// route).
    pub pool_threads: usize,
    /// Tasks executed by the pool since engine construction.
    pub pool_tasks: u64,
    /// Pool tasks stolen from another worker's queue — the load-skew
    /// signal (stealing is scheduling only; results are always joined
    /// in submission order).
    pub pool_steals: u64,
}

/// A long-lived, concurrently usable VSJ size-estimation service.
///
/// * **Writes** (`insert` / `remove` / `upsert`) go to one of `S` shards
///   chosen by a hash of the global id; each shard hashes the vector
///   once (`k` LSH functions) and maintains its bucket counts
///   incrementally under its own lock — writers on different shards
///   never contend.
/// * **Publication** (`publish`, or automatic every
///   [`ServiceConfig::auto_publish_every`] ingests) takes a consistent
///   cut across the shards and assembles an immutable epoch
///   [`Snapshot`] in **O(changed)**: append-only epochs extend the
///   previous snapshot (payloads and untouched bucket runs are
///   `Arc`-shared; no re-hashing, no payload copies), and only epochs
///   with removals or replacing upserts pay a full — still
///   pointer-only — merge. The new snapshot is then swapped in as the
///   current read view.
/// * **Reads** (`estimate` / `estimate_batch`) clone the current
///   snapshot `Arc` (readers never block writers or each other beyond
///   that pointer read) and run the paper's LSH-SS estimator against
///   it, through the [`IndexView`](vsj_core::IndexView) abstraction.
/// * **The estimate cache** short-circuits repeated thresholds: answers
///   stay servable until the data drifts more than ε ingests past the
///   state they were computed on.
///
/// Determinism: an estimate at `(epoch, τ)` uses the RNG
/// [`EstimationEngine::estimate_rng`] derives from the master seed, so
/// the same engine state always returns the same value — and the value
/// equals an offline [`LshSs`] run over the snapshot with that RNG.
pub struct EstimationEngine {
    config: ServiceConfig,
    hasher: Arc<dyn BucketHasher>,
    shards: Vec<Mutex<ShardState>>,
    /// Current published snapshot; writers swap, readers clone the Arc.
    current: RwLock<Arc<Snapshot>>,
    /// Serializes publishes; holds the last published epoch.
    publish_lock: Mutex<u64>,
    next_id: AtomicU64,
    metrics: EngineMetrics,
    cache: Mutex<EstimateCache>,
    streams: RngStreams,
    /// Mapped-tier removal state: base-row indices removed (or replaced
    /// by an upsert) since the current mapping's cut, sorted ascending.
    /// Mutated only under the owning gid's shard lock (the established
    /// shard → tombstones lock order), cloned into every mapped cut,
    /// reset when a compaction folds it into a fresh base. Always empty
    /// on the heap tier.
    tombstones: Mutex<Vec<u32>>,
    /// Latched across [`checkpoint`](Self::checkpoint)/
    /// [`compact`](Self::compact) so the trigger policy
    /// ([`compaction_due`](Self::compaction_due)) never fires into an
    /// in-flight cut.
    checkpoint_in_flight: AtomicBool,
    /// `Some` for durable engines (see [`EstimationEngine::durable`]).
    durability: Option<Durability>,
    /// Estimator-quality audit state: the recently-served threshold
    /// ring, the `vsj_audit_*` series (on the engine registry), and the
    /// worst-calibrated ring (see [`crate::Auditor`]).
    audit: AuditState,
    /// The engine's work pool for data-parallel hot paths (batch
    /// hashing, `estimate_batch` fan-out, checkpoint encode). Sized by
    /// [`crate::ParallelOptions::pool_threads`]; one thread means the
    /// pool spawns no workers and every hot path takes its exact serial
    /// legacy route. Every pooled path is bit-identical to serial at
    /// any thread count (see the crate docs of `vsj_pool`).
    pool: Arc<WorkPool>,
}

impl EstimationEngine {
    /// Builds an engine from a configuration (default observability
    /// bucket layout — see [`with_obs`](Self::with_obs)).
    pub fn new(config: ServiceConfig) -> Self {
        Self::with_obs(config, ObsOptions::default())
    }

    /// Builds an engine with explicit observability options (histogram
    /// bucket layouts for the engine + WAL series). `obs` is purely
    /// operational: it is not part of the persisted configuration and
    /// may differ across lives of the same durable directory.
    pub fn with_obs(config: ServiceConfig, obs: ObsOptions) -> Self {
        assert!(config.shards >= 1, "an engine needs at least one shard");
        assert!(config.k >= 1, "k must be at least 1");
        assert!(
            config.auto_publish_every != Some(0),
            "auto_publish_every must be at least 1"
        );
        config.parallel.validate();
        let hasher: Arc<dyn BucketHasher> = match config.family {
            IndexFamily::SimHash => Arc::new(Composite::derive(
                SimHashFamily::new(),
                config.seed,
                0,
                config.k,
            )),
            IndexFamily::MinHash => Arc::new(Composite::derive(
                MinHashFamily::new(),
                config.seed,
                0,
                config.k,
            )),
        };
        let shards = (0..config.shards)
            .map(|_| Mutex::new(ShardState::new(hasher.clone())))
            .collect();
        let metrics = EngineMetrics::new(obs);
        let audit = AuditState::new(&metrics.registry, &metrics.obs);
        let pool = Arc::new(WorkPool::new(config.parallel.pool_threads));
        let task_us = metrics.pool_task_us.clone();
        pool.set_observer(Some(Arc::new(move |d| task_us.record_duration(d))));
        Self {
            config,
            current: RwLock::new(Arc::new(Snapshot::empty(hasher.clone()))),
            hasher,
            shards,
            publish_lock: Mutex::new(0),
            next_id: AtomicU64::new(0),
            metrics,
            audit,
            cache: Mutex::new(EstimateCache::default()),
            streams: RngStreams::new(config.seed),
            tombstones: Mutex::new(Vec::new()),
            checkpoint_in_flight: AtomicBool::new(false),
            durability: None,
            pool,
        }
    }

    // --- durability ------------------------------------------------------

    /// Builds a **durable** engine over a fresh storage directory: an
    /// initial (epoch 0) checkpoint pins the configuration on disk, and
    /// every subsequent ingest is appended to a write-ahead log *before*
    /// it is applied. Combined with periodic
    /// [`checkpoint`](Self::checkpoint) calls (or a
    /// [`Checkpointer`](crate::Checkpointer)), the engine survives
    /// restarts via [`recover`](Self::recover).
    ///
    /// Durable writes are **shard-parallel**: each ingest appends to
    /// its own shard's WAL segment chain under that shard's locks only,
    /// stitched into one replayable history by a global sequence
    /// number. Acknowledgement is governed by
    /// [`DurabilityOptions::fsync`] (see
    /// [`FsyncPolicy`](crate::FsyncPolicy)).
    ///
    /// # Errors
    /// Filesystem failures, or [`PersistError::AlreadyInitialized`]
    /// when `dir` already holds a checkpoint (recover it instead —
    /// silently overwriting a previous life's state is exactly the kind
    /// of data loss this subsystem exists to prevent).
    ///
    /// # Example
    ///
    /// ```
    /// use vsj_service::{EstimationEngine, ServiceConfig};
    /// use vsj_vector::SparseVector;
    ///
    /// let dir = std::env::temp_dir().join(format!("vsj-doc-durable-{}", std::process::id()));
    /// let _ = std::fs::remove_dir_all(&dir);
    ///
    /// let config = ServiceConfig::builder().shards(2).k(8).seed(1).build();
    /// let engine = EstimationEngine::durable(config, &dir).unwrap();
    /// engine.insert(SparseVector::binary_from_members(vec![1, 2, 3]));
    /// assert_eq!(engine.wal_pending(), 1, "the insert is WAL-logged");
    ///
    /// // A second life must recover, never re-initialize.
    /// assert!(EstimationEngine::durable(config, &dir).is_err());
    /// # std::fs::remove_dir_all(&dir).unwrap();
    /// ```
    pub fn durable(config: ServiceConfig, dir: &Path) -> Result<Self, PersistError> {
        Self::durable_with(config, dir, DurabilityOptions::default())
    }

    /// [`durable`](Self::durable) with explicit storage-layer options
    /// (checkpoint retention, see [`DurabilityOptions`]).
    pub fn durable_with(
        config: ServiceConfig,
        dir: &Path,
        options: DurabilityOptions,
    ) -> Result<Self, PersistError> {
        options.validate();
        std::fs::create_dir_all(dir)?;
        if dir.join(CHECKPOINT_FILE).exists() {
            return Err(PersistError::AlreadyInitialized(dir.to_path_buf()));
        }
        // A crashed previous life may have left a checkpoint temp file
        // without ever completing a checkpoint; reclaim it.
        persist::clean_stale_tmp(dir)?;
        let mut engine = Self::new(config);
        let meta = CheckpointMeta {
            epoch: 0,
            ingested: 0,
            next_id: 0,
            applied_seq: 0,
            publishes: 0,
            config,
        };
        persist::write_checkpoint(dir, &meta, &engine.snapshot(), &engine.pool)?;
        // A stray legacy log without a checkpoint is meaningless —
        // remove it so a later recover() cannot mispair it.
        let legacy = dir.join(WAL_FILE);
        if legacy.exists() {
            std::fs::remove_file(&legacy)?;
        }
        let wal = WalSet::create(
            dir,
            config.shards,
            0,
            persist::config_fingerprint(&config),
            options.fsync,
            options.segment_bytes,
        )?
        .with_metrics(engine.metrics.wal_metrics());
        engine.durability = Some(Durability {
            dir: dir.to_path_buf(),
            wal,
            gate: RwLock::new(()),
            pending: AtomicU64::new(0),
            horizons: Mutex::new(vec![0]),
            options,
        });
        Ok(engine)
    }

    /// Resurrects a durable engine from its storage directory: loads
    /// the checkpoint (every section checksum-verified), rebuilds the
    /// shards from the stored bucket keys (no re-hashing), restores the
    /// epoch/ingest/id counters, then replays the WAL records past the
    /// checkpoint's cut through the normal apply path — re-firing any
    /// auto-publishes at the same ingest boundaries as the original
    /// run. A torn WAL tail (crash mid-append) is truncated and the
    /// clean prefix recovered; a damaged checkpoint or WAL header fails
    /// loudly.
    ///
    /// The recovered engine is *bit-identical* to the pre-shutdown one
    /// at every published epoch: the same `(epoch, τ)` query returns the
    /// same estimate, and the next publish produces the same snapshot,
    /// because all RNG streams derive from the recovered seed and epoch
    /// counter.
    ///
    /// Explicit [`publish`](Self::publish) calls are WAL-logged (a
    /// dedicated record type) and re-fired by replay at the same
    /// position in the ingest order, so manual epochs — not just
    /// auto-publish cadences and [`checkpoint`](Self::checkpoint)
    /// epochs — are reproduced exactly.
    ///
    /// # Example
    ///
    /// ```
    /// use vsj_service::{EstimationEngine, ServiceConfig};
    /// use vsj_vector::SparseVector;
    ///
    /// let dir = std::env::temp_dir().join(format!("vsj-doc-recover-{}", std::process::id()));
    /// let _ = std::fs::remove_dir_all(&dir);
    ///
    /// let config = ServiceConfig::builder().shards(2).k(8).seed(9).build();
    /// let engine = EstimationEngine::durable(config, &dir).unwrap();
    /// for i in 0..20u32 {
    ///     engine.insert(SparseVector::binary_from_members(vec![i % 5, 50 + i % 3]));
    /// }
    /// engine.checkpoint().unwrap();
    /// engine.insert(SparseVector::binary_from_members(vec![7, 8])); // rides the WAL
    /// let before = engine.publish(); // explicit epoch — also WAL-logged
    /// let answer = engine.estimate(0.8);
    /// drop(engine); // "crash"
    ///
    /// let revived = EstimationEngine::recover(&dir).unwrap();
    /// assert_eq!(revived.current_epoch(), before, "manual epoch replayed");
    /// assert_eq!(revived.estimate(0.8), answer, "estimates are bit-identical");
    /// # std::fs::remove_dir_all(&dir).unwrap();
    /// ```
    pub fn recover(dir: &Path) -> Result<Self, PersistError> {
        Self::recover_with(dir, DurabilityOptions::default())
    }

    /// [`recover`](Self::recover) with explicit storage-layer options
    /// (checkpoint retention, fsync policy, segment size — see
    /// [`DurabilityOptions`]).
    ///
    /// **Version sniff / migration.** A directory holding a legacy
    /// v1/v2 single-file `wal.vsjw` (written before the segmented WAL)
    /// is routed through the legacy reader: its tail is replayed with
    /// the legacy semantics (auto-publish epochs re-derived from the
    /// ingest counter) and simultaneously re-logged — auto-publish
    /// boundaries now as explicit barrier records — into fresh v3
    /// segments. The legacy file is deleted only after the segments are
    /// fsync'd, so a crash mid-migration re-runs it from the legacy log
    /// (stale half-written segments are discarded whenever the legacy
    /// file still exists).
    pub fn recover_with(dir: &Path, options: DurabilityOptions) -> Result<Self, PersistError> {
        options.validate();
        let started = Instant::now();
        // A crash between the checkpoint temp write and its atomic
        // rename leaves `checkpoint.vsjc.tmp` behind; reclaim it before
        // anything else so it can never accumulate or confuse a later
        // directory scan.
        if persist::clean_stale_tmp(dir)? {
            eprintln!(
                "vsj-service: removed a stale checkpoint temp file in {}",
                dir.display()
            );
        }
        let legacy_path = dir.join(WAL_FILE);
        let mut mapped_fallback = false;
        if options.storage_tier == StorageTier::Mapped {
            if legacy_path.exists() {
                eprintln!(
                    "vsj-service: legacy single-file WAL present; the mapped tier needs the \
                     segmented log — falling back to heap recovery"
                );
                mapped_fallback = true;
            } else {
                match Self::recover_mapped(dir, options, started)? {
                    Some(engine) => return Ok(engine),
                    None => mapped_fallback = true,
                }
            }
        }
        let (meta, rows) = persist::read_checkpoint(dir)?;
        let mut engine = Self::hydrate(&meta, rows)?;
        if mapped_fallback {
            engine.metrics.mapped_fallbacks.inc();
        }
        let fingerprint = persist::config_fingerprint(&meta.config);

        let wal = if legacy_path.exists() {
            // Legacy route: the single-file log is the source of truth;
            // any v3 segments beside it are residue of an interrupted
            // earlier migration (WalSet::create discards them).
            let replay = wal::read_wal(&legacy_path)?;
            if replay.fingerprint != fingerprint {
                return Err(PersistError::ConfigMismatch(format!(
                    "WAL fingerprint {:#x} does not match the checkpoint's engine config ({:#x})",
                    replay.fingerprint, fingerprint
                )));
            }
            let end_seq = replay.base_seq + replay.entries.len() as u64;
            if end_seq < meta.applied_seq {
                return Err(PersistError::Corrupt(format!(
                    "WAL ends at seq {end_seq} but the checkpoint covers {}",
                    meta.applied_seq
                )));
            }
            let wal = WalSet::create(
                dir,
                meta.config.shards,
                meta.applied_seq,
                fingerprint,
                options.fsync,
                options.segment_bytes,
            )?
            .with_metrics(engine.metrics.wal_metrics());
            for entry in &replay.entries {
                if entry.seq > meta.applied_seq {
                    engine.apply_replayed(&entry.record, Some(&wal), true)?;
                }
            }
            wal.sync_all()?;
            // The fresh segments' directory entries must be durable
            // before the legacy unlink can be — otherwise a power cut
            // could persist the unlink but not the new files, leaving
            // no copy of the tail at all.
            wal::sync_dir(dir)?;
            // Commit point of the migration: once the legacy file is
            // gone, the v3 chains are the only (and complete) log.
            std::fs::remove_file(&legacy_path)?;
            wal::sync_dir(dir)?;
            wal
        } else {
            let (wal, entries) = WalSet::open(
                dir,
                meta.config.shards,
                meta.applied_seq,
                fingerprint,
                options.fsync,
                options.segment_bytes,
            )?;
            let wal = wal.with_metrics(engine.metrics.wal_metrics());
            for entry in &entries {
                if entry.seq > meta.applied_seq {
                    // v3 logs carry every publish (explicit, auto,
                    // checkpoint) as a barrier record — replay must not
                    // re-derive auto-publishes on top of them.
                    engine.apply_replayed(&entry.record, None, false)?;
                }
            }
            wal
        };
        let pending = wal.last_seq().saturating_sub(meta.applied_seq);
        // The retention horizon needs every kept generation's cut;
        // their METAs are peeked (not fully decoded) once per life.
        let mut horizons = vec![meta.applied_seq];
        for generation in persist::list_generations(dir) {
            horizons.push(
                persist::peek_checkpoint_meta(&persist::generation_path(dir, generation))?
                    .applied_seq,
            );
        }
        engine.durability = Some(Durability {
            dir: dir.to_path_buf(),
            wal,
            gate: RwLock::new(()),
            pending: AtomicU64::new(pending),
            horizons: Mutex::new(horizons),
            options,
        });
        engine
            .metrics
            .coldstart_heap_us
            .record_duration(started.elapsed());
        Ok(engine)
    }

    /// The "map + go" arm of [`recover_with`](Self::recover_with):
    /// `mmap` the checkpoint, validate it in place, replay the WAL tail
    /// into the heap overlay (removals and upserts of base rows land in
    /// the tombstone set), and serve the merged view — the base corpus
    /// is never decoded or rebuilt. Returns `Ok(None)` (the caller
    /// falls back to heap recovery, loudly) only when the checkpoint
    /// cannot be mapped (v2 container, corruption — the heap path then
    /// renders the authoritative error).
    fn recover_mapped(
        dir: &Path,
        options: DurabilityOptions,
        started: Instant,
    ) -> Result<Option<Self>, PersistError> {
        let base = match MappedCheckpoint::open(&dir.join(CHECKPOINT_FILE)) {
            Ok(base) => {
                if !base.is_mapped() {
                    // Non-Unix fallback: the "mapping" is a buffered
                    // read. Everything still works (and stays
                    // bit-identical); only the out-of-core memory
                    // benefit is lost, which is worth a note.
                    eprintln!(
                        "vsj-service: mmap unavailable; serving the checkpoint from a \
                         buffered copy"
                    );
                }
                Arc::new(base)
            }
            Err(e) => {
                eprintln!(
                    "vsj-service: cannot map the checkpoint in {} ({e}); \
                     falling back to heap recovery",
                    dir.display()
                );
                return Ok(None);
            }
        };
        let meta = *base.meta();
        let fingerprint = persist::config_fingerprint(&meta.config);
        let (wal, entries) = WalSet::open(
            dir,
            meta.config.shards,
            meta.applied_seq,
            fingerprint,
            options.fsync,
            options.segment_bytes,
        )?;
        let mut engine = Self::new(meta.config);
        let wal = wal.with_metrics(engine.metrics.wal_metrics());
        // The mapped base *is* the published cut: shards start empty
        // (they hold only post-recovery rows), and the current snapshot
        // serves the mapping with an empty overlay.
        *engine.current.get_mut() = Arc::new(
            Snapshot::from_mapped(
                meta.epoch,
                meta.ingested,
                meta.config.k,
                base.clone(),
                Vec::new(),
                Arc::new(TombstoneSet::empty()),
            )
            .expect("an empty overlay over a fresh mapping is trivially consistent"),
        );
        *engine.publish_lock.get_mut() = meta.epoch;
        *engine.next_id.get_mut() = meta.next_id;
        engine.metrics.ingests.store(meta.ingested);
        engine.metrics.publishes.store(meta.publishes);
        // Replay the tail through the normal apply path: inserts land
        // in the shards (the future overlay), removals/upserts of base
        // rows land in the tombstone set, publish barriers re-fire
        // their epochs against the merged mapped snapshot — the same
        // epoch/ingest boundaries, hence bit-identical estimates.
        for entry in &entries {
            if entry.seq > meta.applied_seq {
                engine.apply_replayed(&entry.record, None, false)?;
            }
        }
        let pending = wal.last_seq().saturating_sub(meta.applied_seq);
        let mut horizons = vec![meta.applied_seq];
        for generation in persist::list_generations(dir) {
            horizons.push(
                persist::peek_checkpoint_meta(&persist::generation_path(dir, generation))?
                    .applied_seq,
            );
        }
        engine.durability = Some(Durability {
            dir: dir.to_path_buf(),
            wal,
            gate: RwLock::new(()),
            pending: AtomicU64::new(pending),
            horizons: Mutex::new(horizons),
            options,
        });
        engine.metrics.checkpoint_maps.inc();
        engine.metrics.mapped_bytes.set(base.file_len() as u64);
        engine
            .metrics
            .coldstart_mapped_us
            .record_duration(started.elapsed());
        Ok(Some(engine))
    }

    /// Resurrects a **read-only view of a prior checkpoint generation**
    /// (`generation` = 1 for the most recent previous checkpoint, 2 for
    /// the one before, …; see [`DurabilityOptions::retain_checkpoints`]).
    /// The returned engine is *non-durable* and replays **no** WAL: the
    /// log on disk belongs to the newest generation, so an older
    /// checkpoint can only be restored exactly as it was cut. Estimates
    /// at that checkpoint's epoch are bit-identical to the answers the
    /// original engine served then — the point-in-time debugging story.
    pub fn recover_generation(dir: &Path, generation: u64) -> Result<Self, PersistError> {
        let (meta, rows) = persist::read_checkpoint_generation(dir, generation)?;
        Self::hydrate(&meta, rows)
    }

    /// Rebuilds an engine from a decoded checkpoint — the restoration
    /// protocol shared by [`recover_with`](Self::recover_with) (which
    /// then replays the WAL and attaches storage) and
    /// [`recover_generation`](Self::recover_generation) (which stops
    /// here): shards from the stored bucket keys (no re-hashing), the
    /// checkpoint rows as the published snapshot, counters restored to
    /// the cut.
    fn hydrate(meta: &CheckpointMeta, rows: persist::SnapshotRows) -> Result<Self, PersistError> {
        let mut engine = Self::new(meta.config);
        for (gid, key, v) in &rows {
            let shard = engine.shard_of(*gid);
            let fresh = engine.shards[shard]
                .get_mut()
                .insert_precomputed(*gid, *key, v.clone());
            if !fresh {
                return Err(PersistError::Corrupt(format!(
                    "checkpoint carries global id {gid} twice"
                )));
            }
        }
        // The checkpoint rows ARE the base snapshot: drain the delta
        // logs the rebuild just filled so the next publish extends this
        // snapshot rather than double-counting its rows.
        for shard in &mut engine.shards {
            let _ = shard.get_mut().take_delta();
        }
        *engine.current.get_mut() = Arc::new(Snapshot::assemble(
            meta.epoch,
            meta.ingested,
            engine.hasher.clone(),
            rows,
        ));
        *engine.publish_lock.get_mut() = meta.epoch;
        *engine.next_id.get_mut() = meta.next_id;
        engine.metrics.ingests.store(meta.ingested);
        engine.metrics.publishes.store(meta.publishes);
        Ok(engine)
    }

    /// Re-applies one replayed WAL record. Runs single-threaded during
    /// recovery, reproducing the original serialized order exactly.
    ///
    /// `relog` is the legacy-migration hook: the record (and any
    /// auto-publish its counter crossing fires) is appended to the
    /// fresh v3 [`WalSet`] before it is applied. `auto_publish` selects
    /// the replay semantics: legacy v1/v2 logs re-derive auto-publish
    /// epochs from the ingest counter (they were never logged); v3 logs
    /// carry every publish as an explicit barrier record, so re-derived
    /// ones would double-fire.
    fn apply_replayed(
        &self,
        record: &WalRecord,
        relog: Option<&WalSet>,
        auto_publish: bool,
    ) -> Result<(), PersistError> {
        let ops = match record {
            WalRecord::Insert { id, vector } => {
                if let Some(wal) = relog {
                    wal.append(self.shard_of(*id), WalOp::Insert(*id, vector))?;
                }
                self.next_id.fetch_max(id + 1, Ordering::Relaxed);
                let fresh = self.shards[self.shard_of(*id)]
                    .lock()
                    .insert(*id, Arc::new(vector.clone()));
                if !fresh {
                    return Err(PersistError::Corrupt(format!(
                        "WAL replays insert of already-live id {id}"
                    )));
                }
                1
            }
            WalRecord::Remove { id } => {
                if let Some(wal) = relog {
                    wal.append(self.shard_of(*id), WalOp::Remove(*id))?;
                }
                // Mirror the live path: a shard row is removed in
                // place; a live mapped base row is tombstoned.
                let removed = {
                    let mut shard = self.shards[self.shard_of(*id)].lock();
                    shard.remove(*id) || self.tombstone_base_row(*id)
                };
                if !removed {
                    return Err(PersistError::Corrupt(format!(
                        "WAL replays remove of non-live id {id}"
                    )));
                }
                1
            }
            WalRecord::Upsert { id, vector } => {
                if let Some(wal) = relog {
                    wal.append(self.shard_of(*id), WalOp::Upsert(*id, vector))?;
                }
                self.next_id.fetch_max(id + 1, Ordering::Relaxed);
                let replaced = {
                    let mut shard = self.shards[self.shard_of(*id)].lock();
                    // Mirror the live path: replacing a live mapped
                    // base row tombstones it; the fresh vector lands in
                    // the shard (the overlay).
                    let replaced = shard.remove(*id) || self.tombstone_base_row(*id);
                    let inserted = shard.insert(*id, Arc::new(vector.clone()));
                    debug_assert!(inserted, "id was just vacated");
                    replaced
                };
                if replaced {
                    2
                } else {
                    1
                }
            }
            WalRecord::Publish => {
                if let Some(wal) = relog {
                    wal.append(PUBLISH_SHARD, WalOp::Publish)?;
                }
                self.publish_inner();
                return Ok(());
            }
        };
        if self.count_ingest(ops) && auto_publish {
            // Legacy semantics: the boundary crossing *is* the publish.
            // Migration writes it down as the explicit barrier it will
            // be from now on.
            if let Some(wal) = relog {
                wal.append(PUBLISH_SHARD, WalOp::Publish)?;
            }
            self.publish_inner();
        }
        Ok(())
    }

    /// Publishes the next epoch **and makes it durable**: under the
    /// exclusive apply gate (no ingest in flight), logs the cut as a
    /// publish barrier record, fsyncs every shard chain, takes the cut,
    /// writes the snapshot container (temp file + atomic rename), then
    /// drops whole WAL segments older than the retention horizon — an
    /// O(files) unlink pass that rewrites **no** surviving byte.
    /// Returns the checkpointed epoch.
    ///
    /// The barrier record is what keeps *older* checkpoint generations
    /// recoverable: replaying from generation `g` re-fires every later
    /// checkpoint's epoch at its exact position (the newest checkpoint
    /// itself skips it — its `applied_seq` covers the record). The
    /// horizon is therefore the minimum cut over every kept generation,
    /// so any of them can roll forward through the surviving chains.
    ///
    /// Crash windows are all safe: before the rename the previous
    /// checkpoint + full chains recover the same state (the barrier
    /// record replays the epoch); between rename and truncation the new
    /// checkpoint simply skips the already-covered records.
    ///
    /// # Errors
    /// [`PersistError::NotDurable`] on a non-durable engine; otherwise
    /// filesystem failures — which poison the WAL, so every subsequent
    /// durable ingest fails loudly instead of being acknowledged and
    /// lost.
    pub fn checkpoint(&self) -> Result<u64, PersistError> {
        self.cut(false)
    }

    /// A **minor compaction**: a [`checkpoint`](Self::checkpoint) that,
    /// on the mapped tier, additionally folds the heap overlay and the
    /// tombstone set into the freshly written v3 checkpoint, re-maps
    /// it, and swaps the serving view to the bare new base — overlay
    /// heap bytes return to ~0 and the tombstone set empties.
    ///
    /// The swap happens **at the epoch boundary the cut just
    /// published** and changes no answer: the checkpoint writer emits
    /// exactly the live rows in global-id order (the view's dense id
    /// space), so the folded view has the same buckets, the same
    /// `C(b,2)` weight sequence, and the same sampling streams —
    /// estimates at every `(seed, epoch, τ)` are bit-identical before,
    /// during, and after the fold. Readers holding older snapshots keep
    /// the old mapping alive (the inode survives the rename) until they
    /// drop.
    ///
    /// On a heap-tier engine this degenerates to a plain checkpoint.
    /// Usually driven by a [`Compactor`](crate::Compactor) thread via
    /// [`compaction_due`](Self::compaction_due); safe to call directly.
    ///
    /// # Errors
    /// As [`checkpoint`](Self::checkpoint): [`PersistError::NotDurable`]
    /// without storage, otherwise filesystem failures (which poison the
    /// WAL). A crash at any phase — tmp write, rename, WAL truncation,
    /// re-map — recovers to a consistent generation: the fold is
    /// *disk-first*, so the in-memory swap happens only after the
    /// checkpoint is durable.
    pub fn compact(&self) -> Result<u64, PersistError> {
        self.cut(true)
    }

    /// Whether the compaction trigger policy says a
    /// [`compact`](Self::compact) is worthwhile now: the engine is
    /// durable and mapped, no checkpoint/compaction is already in
    /// flight, and a [`DurabilityOptions`] threshold is crossed —
    /// `compact_overlay_bytes` against the published overlay's encoded
    /// size, or `compact_tombstone_ratio` against the tombstoned
    /// fraction of the base. `false` when both knobs are `None`.
    pub fn compaction_due(&self) -> bool {
        let Some(durability) = &self.durability else {
            return false;
        };
        if self.checkpoint_in_flight.load(Ordering::SeqCst) {
            return false;
        }
        let snapshot = self.snapshot();
        let Some(view) = snapshot.mapped_view() else {
            return false;
        };
        let options = &durability.options;
        let overlay = options
            .compact_overlay_bytes
            .is_some_and(|limit| view.tail_bytes() >= limit);
        let ratio = options.compact_tombstone_ratio.is_some_and(|limit| {
            let base_n = view.base().len();
            base_n > 0 && self.tombstones.lock().len() as f64 >= limit * base_n as f64
        });
        overlay || ratio
    }

    /// The shared cut machinery of [`checkpoint`](Self::checkpoint) and
    /// [`compact`](Self::compact): barrier, publish, container write,
    /// WAL truncation, then (when `fold` and the engine is mapped) the
    /// re-map swap. Returns the cut epoch.
    fn cut(&self, fold: bool) -> Result<u64, PersistError> {
        let durability = self.durability.as_ref().ok_or(PersistError::NotDurable)?;
        let started = Instant::now();
        self.checkpoint_in_flight.store(true, Ordering::SeqCst);
        let result = self.cut_inner(durability, fold);
        self.checkpoint_in_flight.store(false, Ordering::SeqCst);
        let (epoch, remapped) = result?;
        if remapped {
            self.metrics.compactions.inc();
            self.metrics
                .compaction_us
                .record_duration(started.elapsed());
        }
        Ok(epoch)
    }

    fn cut_inner(&self, durability: &Durability, fold: bool) -> Result<(u64, bool), PersistError> {
        let _quiesced = durability.gate.write();
        durability.wal.append(PUBLISH_SHARD, WalOp::Publish)?;
        durability.pending.fetch_add(1, Ordering::Relaxed);
        let epoch = self.publish_inner();
        let cut_seq = durability.wal.last_seq();
        let snapshot = self.snapshot();
        debug_assert_eq!(snapshot.epoch(), epoch, "cut raced a publish");
        let meta = CheckpointMeta {
            epoch,
            ingested: snapshot.ingested(),
            next_id: self.next_id.load(Ordering::SeqCst),
            applied_seq: cut_seq,
            publishes: self.metrics.publishes.get(),
            config: self.config,
        };
        let result = durability.wal.sync_all().and_then(|()| {
            persist::rotate_generations(&durability.dir, durability.options.retain_checkpoints)?;
            persist::write_checkpoint(&durability.dir, &meta, &snapshot, &self.pool)?;
            // The generation set just rotated: the new cut is [0], the
            // old horizons shift back, pruned ones fall off the window.
            let horizon = {
                let mut horizons = durability.horizons.lock();
                horizons.insert(0, cut_seq);
                horizons.truncate(durability.options.retain_checkpoints);
                *horizons.last().expect("at least the fresh cut")
            };
            // Seal the record-bearing active segments at the cut:
            // everything they hold is now covered by the checkpoint,
            // so truncation can drop the whole files (here, or as soon
            // as older retained generations age out) instead of every
            // future recovery re-decoding records the checkpoint
            // already owns.
            durability.wal.seal_active()?;
            durability.wal.truncate(horizon)?;
            // The fold: the container just written holds the merged
            // live rows, so the overlay and tombstones it absorbed can
            // be dropped by re-mapping it as the new bare base. Disk
            // state is already final — a crash from here on recovers
            // straight onto the compacted generation.
            if fold && snapshot.is_mapped() {
                self.remap(durability, &meta)?;
                Ok(true)
            } else {
                Ok(false)
            }
        });
        match result {
            Err(e) => {
                // A deployment that cannot persist must not keep
                // acknowledging writes it may lose: latch the failure so
                // every subsequent durable ingest fails loudly.
                durability.wal.poison();
                Err(e)
            }
            Ok(remapped) => {
                durability.wal.mark_cut();
                durability.pending.store(0, Ordering::Relaxed);
                Ok((epoch, remapped))
            }
        }
    }

    /// The in-memory half of a compaction: map the just-written
    /// checkpoint, verify nothing changed observationally, and swap it
    /// in as the bare base — shards and tombstones reset (their
    /// contents now live in the mapping). Runs under the exclusive
    /// apply gate, so no write is in flight; readers keep sampling old
    /// snapshots and see the new view only at the swap, which by
    /// construction answers identically at this epoch.
    fn remap(&self, durability: &Durability, meta: &CheckpointMeta) -> Result<(), PersistError> {
        let base = Arc::new(MappedCheckpoint::open(
            &durability.dir.join(CHECKPOINT_FILE),
        )?);
        let fresh = Snapshot::from_mapped(
            meta.epoch,
            meta.ingested,
            meta.config.k,
            base.clone(),
            Vec::new(),
            Arc::new(TombstoneSet::empty()),
        )
        .expect("an empty overlay over a fresh mapping is trivially consistent");
        let last_epoch = self.publish_lock.lock();
        debug_assert_eq!(*last_epoch, meta.epoch, "remap raced a publish");
        let mut guards: Vec<_> = self.shards.iter().map(Mutex::lock).collect();
        debug_assert_eq!(
            self.current.read().global_ids(),
            fresh.global_ids(),
            "the folded base must present exactly the live id set"
        );
        for g in guards.iter_mut() {
            **g = ShardState::new(self.hasher.clone());
        }
        self.tombstones.lock().clear();
        *self.current.write() = Arc::new(fresh);
        drop(guards);
        drop(last_epoch);
        self.metrics.checkpoint_maps.inc();
        self.metrics.mapped_bytes.set(base.file_len() as u64);
        Ok(())
    }

    /// Whether the engine has storage attached.
    #[inline]
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The storage directory of a durable engine.
    pub fn storage_dir(&self) -> Option<&Path> {
        self.durability.as_ref().map(|d| d.dir.as_path())
    }

    /// WAL records not yet covered by a checkpoint (0 when
    /// non-durable). Lock-free: safe to poll while a checkpoint is in
    /// flight.
    pub fn wal_pending(&self) -> u64 {
        self.durability
            .as_ref()
            .map_or(0, |d| d.pending.load(Ordering::Relaxed))
    }

    /// The deepest per-shard WAL backlog (records past the checkpoint
    /// cut on any one shard's segment chain); 0 when non-durable.
    /// Lock-free — the serving layer polls this per ingest to key
    /// `429 Retry-After` backpressure off durable-write depth.
    pub fn max_wal_shard_pending(&self) -> u64 {
        self.durability
            .as_ref()
            .map_or(0, |d| d.wal.max_shard_pending())
    }

    /// The engine's configuration.
    #[inline]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    fn shard_of(&self, global: GlobalId) -> usize {
        (SplitMix64::mix(global) % self.shards.len() as u64) as usize
    }

    // --- writes ----------------------------------------------------------

    /// Ingests a vector, returning its engine-assigned global id. Not
    /// visible to reads until the next [`publish`](Self::publish). On a
    /// durable engine the vector is WAL-logged before it is applied.
    ///
    /// # Panics
    /// A durable engine panics when the WAL append fails — accepting a
    /// write that would vanish on restart is worse than refusing it.
    pub fn insert(&self, v: SparseVector) -> GlobalId {
        self.insert_arc(Arc::new(v), None)
    }

    /// Shared insert body. `key` is `Some` when the bucket key was
    /// precomputed off the shard lock (the [`insert_batch`] pool
    /// pre-hash); the hasher is deterministic per vector, so a
    /// precomputed key is bit-identical to hashing under the lock.
    ///
    /// [`insert_batch`]: Self::insert_batch
    fn insert_arc(&self, v: Arc<SparseVector>, key: Option<u64>) -> GlobalId {
        if let Some(durability) = &self.durability {
            let shared = durability.gate.read();
            let (id, ticket) = loop {
                let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                let mut shard = self.shards[self.shard_of(id)].lock();
                // A concurrent upsert may have claimed this id between
                // our allocation and the shard lock (its fetch_max
                // reservation is not atomic with our fetch_add); ids
                // only grow, so retrying with a fresh id terminates.
                // The check and the log share one shard guard — the
                // same guard the upsert's own log+apply holds — so a
                // logged insert is always fresh.
                if shard.contains(id) {
                    continue;
                }
                let ticket = durability
                    .wal
                    .append(self.shard_of(id), WalOp::Insert(id, &v))
                    .expect("WAL append failed; refusing to apply an unlogged insert");
                durability.pending.fetch_add(1, Ordering::Relaxed);
                let apply_started = Instant::now();
                let fresh = match key {
                    Some(key) => shard.insert_precomputed(id, key, v.clone()),
                    None => shard.insert(id, v.clone()),
                };
                self.metrics
                    .ingest_apply_us
                    .record_duration(apply_started.elapsed());
                debug_assert!(fresh, "freshness checked under this shard guard");
                break (id, ticket);
            };
            let crossed = self.count_ingest(1);
            drop(shared);
            durability
                .wal
                .commit(&ticket)
                .expect("WAL flush failed; refusing to acknowledge an unflushed insert");
            if crossed {
                self.durable_publish(durability);
            }
            return id;
        }
        loop {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            // See the durable arm for why a collision is possible here.
            let apply_started = Instant::now();
            let inserted = {
                let mut shard = self.shards[self.shard_of(id)].lock();
                match key {
                    Some(key) => shard.insert_precomputed(id, key, v.clone()),
                    None => shard.insert(id, v.clone()),
                }
            };
            self.metrics
                .ingest_apply_us
                .record_duration(apply_started.elapsed());
            if inserted {
                self.after_ingest(1);
                return id;
            }
        }
    }

    /// Ingests a batch, returning the assigned ids (one auto-publish
    /// check per vector, same as sequential inserts).
    ///
    /// When the engine's [work pool](crate::ParallelOptions) has more
    /// than one thread, the bucket keys of the whole batch are hashed
    /// in parallel *before* any shard lock is taken, and each insert
    /// applies its precomputed key. Hashing consumes no RNG and is a
    /// pure function of the vector, so ids, shard contents, and every
    /// later estimate are bit-identical to the sequential path.
    pub fn insert_batch<I>(&self, vectors: I) -> Vec<GlobalId>
    where
        I: IntoIterator<Item = SparseVector>,
    {
        let vectors: Vec<Arc<SparseVector>> = vectors.into_iter().map(Arc::new).collect();
        if self.pool.threads() <= 1 || vectors.len() < 2 {
            return vectors
                .into_iter()
                .map(|v| self.insert_arc(v, None))
                .collect();
        }
        let hasher = &self.hasher;
        let keys = self
            .pool
            .parallel_map_indexed(&vectors, |_, v| hasher.key(v));
        vectors
            .into_iter()
            .zip(keys)
            .map(|(v, key)| self.insert_arc(v, Some(key)))
            .collect()
    }

    /// Removes a vector by global id; `false` when absent (or already
    /// removed). Takes effect for reads at the next publish. Only
    /// *applied* removes are WAL-logged, so replay never sees a
    /// spurious record.
    ///
    /// Works on **both storage tiers**: a shard (heap or overlay) row
    /// is removed in place; a live mapped base row is *tombstoned* —
    /// excluded from every later cut — and physically dropped by the
    /// next [`compact`](Self::compact).
    ///
    /// # Panics
    /// A durable engine panics when the WAL append fails — accepting a
    /// removal that would silently reappear on restart is worse than
    /// refusing it.
    pub fn remove(&self, global: GlobalId) -> bool {
        if let Some(durability) = &self.durability {
            let shared = durability.gate.read();
            // One shard guard across peek, log, and apply: only applied
            // removes reach the WAL, with no window for liveness to
            // change in between. The guard also covers the tombstone
            // decision — upserts of this gid mutate the tombstone set
            // under the same shard lock, so shard row and base row are
            // judged against one consistent state.
            let mut shard = self.shards[self.shard_of(global)].lock();
            let ticket = if shard.contains(global) {
                let ticket = durability
                    .wal
                    .append(self.shard_of(global), WalOp::Remove(global))
                    .expect("WAL append failed; refusing to apply an unlogged remove");
                durability.pending.fetch_add(1, Ordering::Relaxed);
                let apply_started = Instant::now();
                let removed = shard.remove(global);
                self.metrics
                    .ingest_apply_us
                    .record_duration(apply_started.elapsed());
                debug_assert!(removed, "contains() held under the shard lock");
                ticket
            } else {
                let Some(row) = self.live_base_row(global) else {
                    return false;
                };
                let ticket = durability
                    .wal
                    .append(self.shard_of(global), WalOp::Remove(global))
                    .expect("WAL append failed; refusing to apply an unlogged remove");
                durability.pending.fetch_add(1, Ordering::Relaxed);
                let apply_started = Instant::now();
                let mut tombstones = self.tombstones.lock();
                let at = tombstones
                    .binary_search(&row)
                    .expect_err("live_base_row() held under the shard lock");
                tombstones.insert(at, row);
                drop(tombstones);
                self.metrics
                    .ingest_apply_us
                    .record_duration(apply_started.elapsed());
                ticket
            };
            drop(shard);
            let crossed = self.count_ingest(1);
            drop(shared);
            durability
                .wal
                .commit(&ticket)
                .expect("WAL flush failed; refusing to acknowledge an unflushed remove");
            if crossed {
                self.durable_publish(durability);
            }
            return true;
        }
        let apply_started = Instant::now();
        let removed = {
            let mut shard = self.shards[self.shard_of(global)].lock();
            shard.remove(global) || self.tombstone_base_row(global)
        };
        self.metrics
            .ingest_apply_us
            .record_duration(apply_started.elapsed());
        if removed {
            self.after_ingest(1);
        }
        removed
    }

    /// The base row currently holding `global` as **live** data: in the
    /// mapped view and not yet tombstoned. Callers hold the gid's shard
    /// lock, which serializes this against the tombstone mutations of
    /// concurrent removes/upserts of the same gid.
    fn live_base_row(&self, global: GlobalId) -> Option<u32> {
        let snapshot = self.snapshot();
        let row = snapshot.mapped_view()?.base().find_gid(global)? as u32;
        self.tombstones
            .lock()
            .binary_search(&row)
            .is_err()
            .then_some(row)
    }

    /// Tombstones the live base row holding `global`, if any; `true`
    /// when a row was tombstoned. Must run under the gid's shard lock
    /// (the shard → tombstones lock order every mutation path uses).
    fn tombstone_base_row(&self, global: GlobalId) -> bool {
        let snapshot = self.snapshot();
        let Some(row) = snapshot
            .mapped_view()
            .and_then(|m| m.base().find_gid(global))
        else {
            return false;
        };
        let row = row as u32;
        let mut tombstones = self.tombstones.lock();
        match tombstones.binary_search(&row) {
            Ok(_) => false,
            Err(at) => {
                tombstones.insert(at, row);
                true
            }
        }
    }

    /// Inserts or replaces the vector under a caller-chosen global id.
    /// Returns `true` when an existing vector was replaced. The id is
    /// reserved against future [`insert`](Self::insert) allocations.
    ///
    /// Works on **both storage tiers**: replacing a live mapped base
    /// row tombstones it and the fresh vector joins the heap overlay
    /// under the same gid, folded back into one base row by the next
    /// [`compact`](Self::compact).
    ///
    /// # Panics
    /// A durable engine panics when the WAL append fails, exactly like
    /// [`insert`](Self::insert).
    pub fn upsert(&self, global: GlobalId, v: SparseVector) -> bool {
        if let Some(durability) = &self.durability {
            let shared = durability.gate.read();
            self.next_id.fetch_max(global + 1, Ordering::Relaxed);
            let (replaced, ticket) = {
                let mut shard = self.shards[self.shard_of(global)].lock();
                let ticket = durability
                    .wal
                    .append(self.shard_of(global), WalOp::Upsert(global, &v))
                    .expect("WAL append failed; refusing to apply an unlogged upsert");
                durability.pending.fetch_add(1, Ordering::Relaxed);
                let apply_started = Instant::now();
                // A live mapped base row under this gid is replaced by
                // tombstoning it (checked only when no shard row was —
                // an earlier upsert of the same gid already tombstoned
                // the base row when it created the shard row).
                let replaced = shard.remove(global) || self.tombstone_base_row(global);
                let inserted = shard.insert(global, Arc::new(v));
                self.metrics
                    .ingest_apply_us
                    .record_duration(apply_started.elapsed());
                debug_assert!(inserted, "id was just vacated");
                (replaced, ticket)
            };
            let crossed = self.count_ingest(if replaced { 2 } else { 1 });
            drop(shared);
            durability
                .wal
                .commit(&ticket)
                .expect("WAL flush failed; refusing to acknowledge an unflushed upsert");
            if crossed {
                self.durable_publish(durability);
            }
            return replaced;
        }
        self.next_id.fetch_max(global + 1, Ordering::Relaxed);
        let replaced = {
            let mut shard = self.shards[self.shard_of(global)].lock();
            let apply_started = Instant::now();
            let replaced = shard.remove(global) || self.tombstone_base_row(global);
            let inserted = shard.insert(global, Arc::new(v));
            self.metrics
                .ingest_apply_us
                .record_duration(apply_started.elapsed());
            debug_assert!(inserted, "id was just vacated");
            replaced
        };
        self.after_ingest(if replaced { 2 } else { 1 });
        replaced
    }

    /// Whether a global id is currently live in the mutable index (the
    /// current snapshot may not reflect it yet). On the mapped tier a
    /// checkpoint base row counts as live unless it has been tombstoned
    /// by a [`remove`](Self::remove)/[`upsert`](Self::upsert).
    pub fn contains(&self, global: GlobalId) -> bool {
        let shard = self.shards[self.shard_of(global)].lock();
        shard.contains(global) || self.live_base_row(global).is_some()
    }

    /// Counts `ops` ingest operations; returns whether the counter
    /// crossed an auto-publish boundary. The *caller* owns firing the
    /// publish: inline for non-durable engines
    /// ([`after_ingest`](Self::after_ingest)), as a logged sequence
    /// barrier for durable ones ([`durable_publish`](Self::durable_publish)).
    fn count_ingest(&self, ops: u64) -> bool {
        let count = self.metrics.ingests.add_fetch(ops);
        match self.config.auto_publish_every {
            // Crossing test (not `% == 0`) so multi-op ingests keep the
            // cadence even.
            Some(batch) => count / batch > (count - ops) / batch,
            None => false,
        }
    }

    fn after_ingest(&self, ops: u64) {
        if self.count_ingest(ops) {
            self.publish_inner();
        }
    }

    /// Logs a publish barrier record and fires the publish under the
    /// exclusive apply gate — the durable arm of every explicit and
    /// auto publish. Exclusivity is what makes the record a barrier:
    /// every ingest with a smaller sequence has fully applied, none
    /// with a larger one has started, so merge-replay firing the
    /// publish at this sequence reproduces the cut exactly.
    fn durable_publish(&self, durability: &Durability) -> u64 {
        let excl = durability.gate.write();
        let ticket = durability
            .wal
            .append(PUBLISH_SHARD, WalOp::Publish)
            .expect("WAL append failed; refusing to apply an unlogged publish");
        durability.pending.fetch_add(1, Ordering::Relaxed);
        let epoch = self.publish_inner();
        drop(excl);
        // Barrier acknowledgement flushes every chain (not just the
        // barrier's own): the ack promises the cut epoch is
        // reproducible, which needs every smaller-sequence record on
        // every shard durable.
        durability
            .wal
            .commit_barrier(&ticket)
            .expect("WAL flush failed; refusing to acknowledge an unflushed publish");
        epoch
    }

    // --- publication -----------------------------------------------------

    /// Takes a consistent cut across all shards and publishes it as the
    /// next epoch snapshot. Returns the new epoch. Concurrent publishers
    /// are serialized; readers are never blocked (they keep the old
    /// snapshot until the swap).
    ///
    /// **Cost is proportional to what changed, not to corpus size.**
    /// Each shard logs its mutations since the last cut; when every
    /// shard's delta is append-only (pure inserts with fresh, past-cut
    /// global ids — the common ingest pattern), the new epoch is
    /// assembled from the previous snapshot plus the delta
    /// (`Snapshot::assemble_delta`): payloads and untouched buckets
    /// are `Arc`-shared, so an epoch after `k` ingests into an
    /// `n`-vector corpus costs O(k) real work. Epochs whose delta holds
    /// removals, replacing upserts, or out-of-order ids fall back to a
    /// full merge — O(n log n) but still pure pointer work (payloads
    /// stay shared, nothing is re-hashed). Either way the published
    /// snapshot is bit-identical to a full offline rebuild; only the
    /// assembly cost differs (see [`EngineStats::delta_publishes`]).
    ///
    /// # Example
    ///
    /// ```
    /// use vsj_service::{EstimationEngine, ServiceConfig};
    /// use vsj_vector::SparseVector;
    ///
    /// let engine = EstimationEngine::new(
    ///     ServiceConfig::builder().shards(2).k(8).seed(3).build(),
    /// );
    /// engine.insert(SparseVector::binary_from_members(vec![1, 2]));
    /// assert_eq!(engine.current_epoch(), 0, "not visible before publish");
    ///
    /// let epoch = engine.publish();
    /// assert_eq!(epoch, 1);
    /// assert_eq!(engine.snapshot().len(), 1, "the cut is now readable");
    /// // Appends-only epochs take the incremental O(changed) path.
    /// assert_eq!(engine.stats().delta_publishes, 1);
    /// ```
    ///
    /// On a **durable** engine an explicit publish is WAL-logged (its
    /// own record type) before it is applied, so recovery re-fires it
    /// at the same position in the ingest order — the epoch counter
    /// survives restarts even for manual epochs.
    ///
    /// # Panics
    /// A durable engine panics when the WAL append fails, exactly like
    /// the ingest paths: acknowledging an epoch that would vanish on
    /// restart is worse than refusing it.
    pub fn publish(&self) -> u64 {
        if let Some(durability) = &self.durability {
            return self.durable_publish(durability);
        }
        self.publish_inner()
    }

    /// The publish machinery, *without* WAL logging — the shared tail
    /// of explicit publishes (logged by [`publish`](Self::publish)),
    /// auto-publishes (reproduced by ingest replay), checkpoint cuts
    /// (recorded in checkpoint metadata), and WAL replay itself.
    fn publish_inner(&self) -> u64 {
        let publish_started = Instant::now();
        let mut last_epoch = self.publish_lock.lock();
        // Only publish() (serialized by the lock we hold) and recovery
        // (exclusive access) replace `current`, so this read is the
        // previous cut — the base the delta path extends.
        let prev = self.current.read().clone();
        // Lock every shard (in index order) for the cut: ingest counter
        // and delta/live rows are read under the same freeze, so the
        // snapshot is transactionally consistent. The publish path is
        // decided *under the cut* — a delta found invalid here must be
        // re-collected before any writer can slip in a mutation that
        // would otherwise straddle two epochs.
        let mut guards: Vec<_> = self.shards.iter().map(Mutex::lock).collect();
        let ingested = self.metrics.ingests.get();
        let mut delta = Vec::new();
        let mut full = false;
        for g in &mut guards {
            match g.take_delta() {
                ShardDelta::Appends(rows) => delta.extend(rows),
                ShardDelta::Full => full = true,
            }
        }
        // A mapped cut freezes the tombstone state under the same
        // guards as the shard deltas (every tombstone mutation holds a
        // shard lock, all of which we hold). The shard delta logs don't
        // see tombstones, so any change since the published set forces
        // the full path.
        let tombstone_cut = prev.is_mapped().then(|| self.tombstones.lock().clone());
        if !full {
            if let Some(cut) = &tombstone_cut {
                let published = prev.mapped_view().expect("is_mapped() held").tombstones();
                full = cut.len() != published.len();
            }
        }
        if !full {
            delta.sort_unstable_by_key(|r| r.0);
            full = !Snapshot::is_append_only(&prev, &delta);
        }
        let epoch = *last_epoch + 1;
        let snapshot = if full {
            let mut rows = Vec::new();
            for g in &guards {
                g.collect_live(&mut rows);
            }
            drop(guards);
            if let Some(mapped) = prev.mapped_view() {
                // Mapped tier: the shards hold *only* post-cut rows (the
                // base lives in the mapping), so the live collection is
                // the complete overlay; the frozen tombstone set
                // subtracts the base rows removed or replaced since the
                // mapping's cut. Every overlay gid landing on a base row
                // tombstoned that row when it was written, so the
                // combination is always representable.
                let tombstones = Arc::new(TombstoneSet::from_rows(
                    tombstone_cut.expect("mapped prev froze its tombstones"),
                ));
                Arc::new(
                    Snapshot::from_mapped(
                        epoch,
                        ingested,
                        IndexView::k(prev.as_ref()),
                        mapped.base().clone(),
                        rows,
                        tombstones,
                    )
                    .expect("overlay rows never collide with live base rows"),
                )
            } else {
                Arc::new(Snapshot::assemble(
                    epoch,
                    ingested,
                    self.hasher.clone(),
                    rows,
                ))
            }
        } else {
            drop(guards);
            Arc::new(
                Snapshot::assemble_delta(&prev, epoch, ingested, delta)
                    .expect("append-only delta was validated under the cut"),
            )
        };
        *self.current.write() = snapshot;
        *last_epoch = epoch;
        // Counter order matters for torn-read-free stats: the total is
        // bumped before its per-kind breakdown, and stats() reads the
        // breakdown first, so `delta + full ≤ publishes` always holds
        // (publishes are serialized by the lock we still hold anyway).
        self.metrics.publishes.inc();
        if full {
            self.metrics.full_publishes.inc();
            self.metrics
                .publish_full_us
                .record_duration(publish_started.elapsed());
        } else {
            self.metrics.delta_publishes.inc();
            self.metrics
                .publish_delta_us
                .record_duration(publish_started.elapsed());
        }
        epoch
    }

    /// The current published snapshot (cheap: one `Arc` clone under a
    /// briefly held read lock; sampling happens entirely lock-free
    /// against the immutable snapshot).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.current.read().clone()
    }

    /// Epoch of the current snapshot.
    pub fn current_epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// Ingest operations applied since the current snapshot's cut — how
    /// stale the read view is. This is the signal a serving front-end
    /// applies backpressure on: when the lag crosses a threshold,
    /// shedding ingests (until a publish catches the view up) bounds
    /// both snapshot staleness and the cost of the next publish.
    /// Lock-free and O(1).
    pub fn publish_lag(&self) -> u64 {
        // Two reads that can race a concurrent publish; the value is a
        // momentary lag estimate either way, which is all a
        // load-shedding threshold needs.
        self.metrics
            .ingests
            .get()
            .saturating_sub(self.snapshot().ingested())
    }

    // --- reads -----------------------------------------------------------

    /// The LSH-SS parameters used at live size `n` (the configured fixed
    /// parameters, or the paper defaults derived from `n`).
    pub fn estimator_config(&self, n: usize) -> LshSsConfig {
        self.config
            .estimator
            .unwrap_or_else(|| LshSsConfig::paper_defaults(n))
    }

    /// The deterministic RNG an estimate at `(epoch, τ)` uses. Exposed
    /// so offline runs can replicate service answers exactly:
    /// `LshSs::estimate(snapshot.collection(), snapshot, measure, τ,
    /// &mut engine.estimate_rng(epoch, τ))` equals
    /// [`estimate`](Self::estimate) at that epoch.
    pub fn estimate_rng(&self, epoch: u64, tau: f64) -> Xoshiro256 {
        self.streams.subfamily(epoch).stream(tau.to_bits())
    }

    /// The deterministic RNG a batch estimate at `epoch` uses —
    /// deliberately keyed by the epoch **alone**, not the τ grid.
    /// [`estimate_curve`](LshSs::estimate_curve) consumes the RNG
    /// independently of the grid (one shared pair sample, per-τ replay),
    /// so with a grid-independent stream every τ's batch answer at a
    /// given epoch is one fixed value no matter which other thresholds
    /// ride in the same call. That is what lets a serving layer coalesce
    /// whatever estimate requests happen to be concurrent into one
    /// sampling pass without changing any individual answer.
    pub fn batch_rng(&self, epoch: u64) -> Xoshiro256 {
        self.streams.subfamily(epoch).stream(0x6A09_E667_F3BC_C909)
    }

    /// Cache fingerprint of the estimator *policy*. With a fixed config
    /// the exact parameters are hashed; with per-snapshot paper defaults
    /// a constant is used — the defaults drift together with `n`, and
    /// serving an answer computed under a ≤ ε-stale `n` is precisely the
    /// staleness the drift tolerance already accepts.
    fn fingerprint(&self) -> u64 {
        match self.config.estimator {
            None => 0x7A9E_7A9E_7A9E_7A9E,
            Some(config) => {
                let damp = match config.dampening {
                    vsj_core::Dampening::SafeLowerBound => 0u64,
                    vsj_core::Dampening::Constant(c) => 1 ^ c.to_bits().rotate_left(8),
                    vsj_core::Dampening::NlOverDelta => 2,
                };
                let mut acc = SplitMix64::mix(config.m_h);
                acc = SplitMix64::mix(acc ^ config.m_l);
                acc = SplitMix64::mix(acc ^ config.delta);
                SplitMix64::mix(acc ^ damp)
            }
        }
    }

    /// Estimates the join size at threshold `τ` against the current
    /// snapshot, serving from the estimate cache when a previous answer
    /// is within the configured drift tolerance ε.
    pub fn estimate(&self, tau: f64) -> ServiceEstimate {
        let started = Instant::now();
        let snapshot = self.snapshot();
        let est_config = self.estimator_config(snapshot.len());
        let key = CacheKey {
            tau_bits: tau.to_bits(),
            config: self.fingerprint(),
            batch: false,
        };
        let now = snapshot.ingested();
        if let Some(hit) = self
            .cache
            .lock()
            .lookup(key, now, self.config.cache_epsilon)
        {
            self.metrics.cache_hits.inc();
            self.metrics.cache_hit_us.record_duration(started.elapsed());
            self.audit.note_served(tau);
            return ServiceEstimate {
                estimate: hit.estimate,
                std_err: hit.std_err,
                epoch: hit.epoch,
                n: hit.n,
                tau,
                cached: true,
            };
        }
        // Miss before pass: stats() reads passes first, so it can never
        // observe more sampling passes than cache misses.
        self.metrics.cache_misses.inc();
        let sampling_started = Instant::now();
        let (estimate, std_err, sampled) = self.compute(&snapshot, est_config, tau);
        self.metrics
            .sampling_us
            .record_duration(sampling_started.elapsed());
        self.metrics.pairs_per_pass.record(sampled);
        self.metrics.sampled_pairs.add(sampled);
        self.metrics.sampling_passes.inc();
        self.cache.lock().store(
            key,
            CacheEntry {
                estimate,
                std_err,
                epoch: snapshot.epoch(),
                ingested: now,
                n: snapshot.len(),
            },
        );
        self.audit.note_served(tau);
        ServiceEstimate {
            estimate,
            std_err,
            epoch: snapshot.epoch(),
            n: snapshot.len(),
            tau,
            cached: false,
        }
    }

    /// Estimates a whole threshold grid from **one** sampling pass
    /// ([`LshSs::estimate_curve`]) unless every τ is already cached
    /// within tolerance. Results are cached per τ, in a key space
    /// separate from [`estimate`](Self::estimate): the two APIs sample
    /// through different RNG streams ([`batch_rng`](Self::batch_rng) vs
    /// [`estimate_rng`](Self::estimate_rng)), so each is individually
    /// deterministic at a fixed epoch but their answers may differ —
    /// both are unbiased draws of the same estimator. The batch stream
    /// is keyed by the epoch alone, so each τ's answer at a given epoch
    /// is **independent of the grid it rides in**: `estimate_batch(&[τ])`
    /// equals the τ entry of any larger same-epoch batch, which is what
    /// makes request coalescing in a serving layer invisible to callers.
    pub fn estimate_batch(&self, taus: &[f64]) -> Vec<ServiceEstimate> {
        if taus.is_empty() {
            return Vec::new();
        }
        let started = Instant::now();
        let snapshot = self.snapshot();
        let est_config = self.estimator_config(snapshot.len());
        let config_fp = self.fingerprint();
        let now = snapshot.ingested();
        // Fast path: only when *every* threshold can be served from
        // cache (lookup is a pure read — hits are recorded only if
        // actually served, misses only for the batch that bypasses the
        // cache).
        {
            let cache = self.cache.lock();
            let hits: Option<Vec<ServiceEstimate>> = taus
                .iter()
                .map(|&tau| {
                    cache
                        .lookup(
                            CacheKey {
                                tau_bits: tau.to_bits(),
                                config: config_fp,
                                batch: true,
                            },
                            now,
                            self.config.cache_epsilon,
                        )
                        .map(|hit| ServiceEstimate {
                            estimate: hit.estimate,
                            std_err: hit.std_err,
                            epoch: hit.epoch,
                            n: hit.n,
                            tau,
                            cached: true,
                        })
                })
                .collect();
            drop(cache);
            match hits {
                Some(all) => {
                    self.metrics.cache_hits.add(taus.len() as u64);
                    self.metrics.cache_hit_us.record_duration(started.elapsed());
                    for &tau in taus {
                        self.audit.note_served(tau);
                    }
                    return all;
                }
                None => self.metrics.cache_misses.add(taus.len() as u64),
            }
        }
        // Shared pass over the grid.
        let sampling_started = Instant::now();
        let est = LshSs { config: est_config };
        let mut rng = self.batch_rng(snapshot.epoch());
        // Pooled: pair draws stay serial on `rng`, similarity scoring
        // and the per-τ replays fan out over the engine pool — bit-
        // identical to the serial curve at any thread count (pinned by
        // `pooled_curve_is_bit_identical_to_serial` in vsj-core and the
        // parallel determinism battery).
        let curve = match self.config.family {
            IndexFamily::SimHash => est.estimate_curve_detailed_pooled(
                snapshot.as_ref(),
                snapshot.as_ref(),
                &Cosine,
                taus,
                &mut rng,
                &self.pool,
            ),
            IndexFamily::MinHash => est.estimate_curve_detailed_pooled(
                snapshot.as_ref(),
                snapshot.as_ref(),
                &Jaccard,
                taus,
                &mut rng,
                &self.pool,
            ),
        };
        let sampled = if IndexView::nh(snapshot.as_ref()) > 0 {
            est_config.m_h
        } else {
            0
        } + if IndexView::nl(snapshot.as_ref()) > 0 {
            est_config.m_l
        } else {
            0
        };
        self.metrics
            .sampling_us
            .record_duration(sampling_started.elapsed());
        self.metrics.pairs_per_pass.record(sampled);
        self.metrics.sampled_pairs.add(sampled);
        self.metrics.sampling_passes.inc();
        let mut cache = self.cache.lock();
        let answers: Vec<ServiceEstimate> = taus
            .iter()
            .zip(curve)
            .map(|(&tau, point)| {
                let estimate = point.estimate;
                let std_err = point.std_err();
                cache.store(
                    CacheKey {
                        tau_bits: tau.to_bits(),
                        config: config_fp,
                        batch: true,
                    },
                    CacheEntry {
                        estimate,
                        std_err,
                        epoch: snapshot.epoch(),
                        ingested: now,
                        n: snapshot.len(),
                    },
                );
                ServiceEstimate {
                    estimate,
                    std_err,
                    epoch: snapshot.epoch(),
                    n: snapshot.len(),
                    tau,
                    cached: false,
                }
            })
            .collect();
        drop(cache);
        for &tau in taus {
            self.audit.note_served(tau);
        }
        answers
    }

    fn compute(
        &self,
        snapshot: &Snapshot,
        est_config: LshSsConfig,
        tau: f64,
    ) -> (Estimate, f64, u64) {
        let est = LshSs { config: est_config };
        let mut rng = self.estimate_rng(snapshot.epoch(), tau);
        let detailed = match self.config.family {
            IndexFamily::SimHash => {
                est.estimate_detailed(snapshot, snapshot, &Cosine, tau, &mut rng)
            }
            IndexFamily::MinHash => {
                est.estimate_detailed(snapshot, snapshot, &Jaccard, tau, &mut rng)
            }
        };
        let sampled = if IndexView::nh(snapshot) > 0 {
            est_config.m_h
        } else {
            0
        } + detailed.l_samples;
        (detailed.estimate(), detailed.std_err(), sampled)
    }

    /// Drops every cached estimate (forces recomputation).
    pub fn clear_cache(&self) {
        self.cache.lock().clear();
    }

    // --- observability ---------------------------------------------------

    /// The engine's metric [`Registry`] — every engine and WAL series
    /// (counters, gauges, histograms), renderable as Prometheus text via
    /// [`Registry::render`]. A serving layer merges this into its own
    /// exposition under `GET /metrics`.
    pub fn metrics(&self) -> &Registry {
        &self.metrics.registry
    }

    /// Runs one estimator-quality audit cycle: picks the next threshold
    /// from the recently-served ring (deterministic rotation), re-asks
    /// the engine for it — the answer a client would get right now,
    /// cached or freshly sampled, with its interval — computes exact
    /// ground truth on a bounded stratum via [`vsj_exact::ExactJoin`],
    /// and folds the verdict into the `vsj_audit_*` series and the
    /// worst-calibrated ring.
    ///
    /// Returns `None` (counting `vsj_audit_skipped_total`) when nothing
    /// has been served yet or the snapshot holds fewer than two
    /// vectors. Corpora larger than [`AuditOptions::max_exact_n`] are
    /// audited on a deterministic uniform subset, with truth scaled by
    /// `C(n,2)/C(b,2)` — unbiased over the subset draw, at bounded
    /// cost. The served answer may be up to cache-ε stale relative to
    /// the snapshot the truth is computed on; that is exactly the
    /// staleness the drift tolerance already accepts, and miscalibration
    /// it causes is precisely what the audit series exist to surface.
    ///
    /// Usually driven by a background [`crate::Auditor`]; callable
    /// directly for synchronous audits in tests and tools.
    pub fn audit_once(&self, options: &AuditOptions) -> Option<AuditRecord> {
        options.validate();
        let Some(tau) = self.audit.next_tau() else {
            self.audit.skipped.inc();
            return None;
        };
        let snapshot = self.snapshot();
        let n = snapshot.len();
        if n < 2 {
            self.audit.skipped.inc();
            return None;
        }
        let serve_started = Instant::now();
        let served = self.estimate(tau);
        let serve_us = u64::try_from(serve_started.elapsed().as_micros()).unwrap_or(u64::MAX);

        // The audited stratum: the whole corpus when it fits the exact
        // budget (truth is exact), otherwise a deterministic uniform
        // subset with pair-count rescaling. Vectors are cloned through
        // `VectorStore`, which serves both the heap and mapped tiers.
        let bound = options.max_exact_n;
        let (vectors, scale): (Vec<SparseVector>, f64) = if n <= bound {
            let all = (0..n).map(|i| snapshot.vector(i as u32).clone()).collect();
            (all, 1.0)
        } else {
            let cycle = self.audit.cycles.get();
            let mut rng = self
                .streams
                .subfamily(snapshot.epoch())
                .stream(0xA0D1_7EA5 ^ cycle);
            let picked = sample_distinct_indices(n, bound, &mut rng);
            let subset = picked
                .iter()
                .map(|&i| snapshot.vector(i as u32).clone())
                .collect();
            let scale = pairs_of(n as u64) as f64 / pairs_of(bound as u64) as f64;
            (subset, scale)
        };
        let audited_n = vectors.len();
        let coll = VectorCollection::from_vectors(vectors);
        let exact_started = Instant::now();
        let raw = match self.config.family {
            IndexFamily::SimHash => ExactJoin::new(&coll, Cosine)
                .with_threads(options.exact_threads)
                .count(tau),
            IndexFamily::MinHash => ExactJoin::new(&coll, Jaccard)
                .with_threads(options.exact_threads)
                .count(tau),
        };
        let exact_us = u64::try_from(exact_started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.audit.exact_us.record(exact_us);

        let truth = raw as f64 * scale;
        let record = AuditRecord {
            tau,
            epoch: served.epoch,
            n,
            audited_n,
            estimate: served.estimate.value,
            std_err: served.std_err,
            ci_low: served.ci_low(),
            ci_high: served.ci_high(),
            truth,
            signed_error: signed_relative_error(served.estimate.value, truth),
            within_ci: served.ci_low() <= truth && truth <= served.ci_high(),
            cached: served.cached,
            serve_us,
            exact_us,
        };
        self.audit.record(record);
        Some(record)
    }

    /// Point-in-time audit summary: scored/skipped cycle counts, the
    /// CI-coverage ratio, a Welford summary of the signed relative
    /// errors, and the worst-calibrated audited queries. The data a
    /// serving layer renders under `GET /quality`.
    pub fn quality_report(&self) -> QualityReport {
        self.audit.report()
    }

    /// The thresholds currently in the recently-served ring — the pool
    /// [`audit_once`](Self::audit_once) rotates over (bounded,
    /// deduplicated; most useful for tests and tools).
    pub fn recently_served(&self) -> Vec<f64> {
        self.audit.served_taus()
    }

    /// The fsync policy of a durable engine (`None` when storage is not
    /// attached) — operational provenance for health endpoints.
    pub fn fsync_policy(&self) -> Option<FsyncPolicy> {
        self.durability.as_ref().map(|d| d.options.fsync)
    }

    /// The storage tier the engine actually serves from:
    /// [`StorageTier::Mapped`] when the base corpus is a checkpoint
    /// mapping (a mapped-tier recovery that did not fall back),
    /// [`StorageTier::Heap`] otherwise. Operational provenance for
    /// health endpoints.
    pub fn storage_tier(&self) -> StorageTier {
        if self.snapshot().is_mapped() {
            StorageTier::Mapped
        } else {
            StorageTier::Heap
        }
    }

    /// Point-in-time statistics (briefly locks each shard in turn).
    ///
    /// Counter families are read through [`snapshot_ordered`],
    /// downstream-first, so causally-related pairs can never invert:
    /// `sampling_passes ≤ cache_misses` and
    /// `delta_publishes + full_publishes ≤ publishes` hold in every
    /// snapshot, no matter how reads race concurrent increments.
    pub fn stats(&self) -> EngineStats {
        let m = &self.metrics;
        let [sampling_passes, cache_misses, cache_hits, sampled_pairs] = snapshot_ordered([
            &m.sampling_passes,
            &m.cache_misses,
            &m.cache_hits,
            &m.sampled_pairs,
        ]);
        let [delta_publishes, full_publishes, publishes, ingests] = snapshot_ordered([
            &m.delta_publishes,
            &m.full_publishes,
            &m.publishes,
            &m.ingests,
        ]);
        let shards: Vec<ShardStats> = self.shards.iter().map(|s| s.lock().stats()).collect();
        let cache_entries = self.cache.lock().len();
        let wal = self.durability.as_ref().map(|d| d.wal.stats());
        let snapshot = self.snapshot();
        // The mapped base is live data the shards don't see; fold it
        // (minus its tombstoned rows) into the live count and refresh
        // the lazily-sampled gauges.
        let mapped_base = snapshot.mapped_view().map(|m| m.base().clone());
        let overlay_bytes = snapshot.mapped_view().map_or(0, |m| m.tail_bytes());
        let tombstones = if mapped_base.is_some() {
            self.tombstones.lock().len()
        } else {
            0
        };
        if let Some(base) = &mapped_base {
            self.metrics.mapped_materialized.set(base.materialized());
        }
        self.metrics.overlay_bytes.set(overlay_bytes);
        self.metrics.tombstone_rows.set(tombstones as u64);
        if let Some(faults) = vsj_obs::major_page_faults() {
            self.metrics.major_faults.set(faults);
        }
        // Pool series follow the refreshed-by-stats() convention of the
        // other lazily-sampled gauges above.
        let pool_stats = self.pool.stats();
        self.metrics.pool_tasks.store(pool_stats.tasks_total);
        self.metrics.pool_steals.store(pool_stats.steals_total);
        self.metrics.pool_queue_depth.set(pool_stats.queued);
        EngineStats {
            wal_shard_pending: wal
                .as_ref()
                .map(|w| w.shard_pending.clone())
                .unwrap_or_default(),
            wal_segments: wal.as_ref().map_or(0, |w| w.segments),
            wal_fsyncs: wal.as_ref().map_or(0, |w| w.fsyncs),
            wal_rotations: wal.as_ref().map_or(0, |w| w.rotations),
            epoch: snapshot.epoch(),
            live: shards.iter().map(|s| s.live).sum::<usize>()
                + mapped_base.as_ref().map_or(0, |b| b.len())
                - tombstones,
            ingests,
            compactions: self.metrics.compactions.get(),
            overlay_bytes,
            tombstones,
            publish_lag: ingests.saturating_sub(snapshot.ingested()),
            publishes,
            delta_publishes,
            full_publishes,
            shards,
            cache_hits,
            cache_misses,
            cache_entries,
            sampling_passes,
            sampled_pairs,
            wal_pending: self.wal_pending(),
            pool_threads: pool_stats.threads,
            pool_tasks: pool_stats.tasks_total,
            pool_steals: pool_stats.steals_total,
        }
    }
}

impl std::fmt::Debug for EstimationEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("EstimationEngine")
            .field("shards", &self.shards.len())
            .field("epoch", &stats.epoch)
            .field("live", &stats.live)
            .field("ingests", &stats.ingests)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapped_engine_with_dirty_overlay(dir: &std::path::Path) -> EstimationEngine {
        let config = ServiceConfig::builder()
            .shards(2)
            .k(8)
            .seed(5)
            .family(IndexFamily::MinHash)
            .build();
        let seed = EstimationEngine::durable_with(config, dir, crate::DurabilityOptions::default())
            .unwrap();
        for i in 0..6u32 {
            seed.insert(SparseVector::binary_from_members(vec![i, i + 1, i + 2]));
        }
        seed.checkpoint().unwrap();
        drop(seed);
        let engine = EstimationEngine::recover_with(
            dir,
            crate::DurabilityOptions {
                storage_tier: crate::StorageTier::Mapped,
                compact_overlay_bytes: Some(1),
                ..crate::DurabilityOptions::default()
            },
        )
        .unwrap();
        engine.insert(SparseVector::binary_from_members(vec![9, 10, 11]));
        engine.publish();
        engine
    }

    /// The trigger must stay quiet while a checkpoint or compaction is
    /// already cutting — the flag set by [`EstimationEngine::cut`] —
    /// even when a threshold is crossed, so a polling [`Compactor`]
    /// never stacks a second cut behind an in-flight one.
    #[test]
    fn trigger_is_suppressed_while_a_checkpoint_is_in_flight() {
        let dir = std::env::temp_dir().join(format!("vsj_engine_inflight_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let engine = mapped_engine_with_dirty_overlay(&dir);
        assert!(engine.compaction_due(), "the 1-byte threshold is crossed");
        engine.checkpoint_in_flight.store(true, Ordering::SeqCst);
        assert!(
            !engine.compaction_due(),
            "an in-flight cut must suppress the trigger"
        );
        engine.checkpoint_in_flight.store(false, Ordering::SeqCst);
        assert!(engine.compaction_due(), "clearing the flag re-arms it");
        engine.compact().unwrap();
        assert!(
            !engine.compaction_due(),
            "the fold emptied the overlay below the threshold"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    fn assert_pooled_encode_matches(engine: &EstimationEngine, what: &str) {
        let snapshot = engine.snapshot();
        let meta = CheckpointMeta {
            epoch: snapshot.epoch(),
            ingested: snapshot.ingested(),
            next_id: engine.next_id.load(Ordering::SeqCst),
            applied_seq: 0,
            publishes: 1,
            config: *engine.config(),
        };
        let serial = persist::encode_checkpoint(&meta, &snapshot);
        for threads in [1usize, 2, 8] {
            let pool = WorkPool::new(threads);
            let pooled = persist::encode_checkpoint_with(&meta, &snapshot, &pool);
            assert_eq!(
                serial.as_slice(),
                pooled.as_slice(),
                "{what}: pooled encode diverged at {threads} threads"
            );
        }
    }

    /// The pooled checkpoint encoder must produce the exact bytes of
    /// the serial one — on the heap tier (Arc payload re-encode) and on
    /// the mapped tier (base byte-copy interleaved with overlay
    /// re-encode, tombstoned rows dropped) — at every thread count.
    #[test]
    fn parallel_encode_is_byte_identical() {
        let config = ServiceConfig::builder().shards(3).k(8).seed(42).build();
        let engine = EstimationEngine::new(config);
        let ids: Vec<GlobalId> =
            engine.insert_batch((0..257u32).map(|i| {
                SparseVector::binary_from_members(vec![i, i * 7 % 97, i * 13 % 101 + 200])
            }));
        engine.remove(ids[3]);
        engine.publish();
        assert_pooled_encode_matches(&engine, "heap");

        let dir = std::env::temp_dir().join(format!("vsj_engine_parenc_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mapped = mapped_engine_with_dirty_overlay(&dir);
        assert!(mapped.remove(2), "base row 2 is live");
        mapped.publish();
        assert_pooled_encode_matches(&mapped, "mapped");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `insert_batch`'s pool pre-hash must assign the same ids and
    /// build the same index as sequential inserts — same estimates,
    /// same stats — and the pool counters must surface through
    /// `stats()`.
    #[test]
    fn pooled_insert_batch_matches_sequential_inserts() {
        let mk = |threads: usize| {
            ServiceConfig::builder()
                .shards(2)
                .k(8)
                .seed(11)
                .pool_threads(threads)
                .build()
        };
        let vectors: Vec<SparseVector> = (0..300u32)
            .map(|i| SparseVector::binary_from_members(vec![i % 50, i % 51 + 60, i % 7 + 120]))
            .collect();
        let serial = EstimationEngine::new(mk(1));
        let serial_ids: Vec<GlobalId> = vectors.iter().map(|v| serial.insert(v.clone())).collect();
        serial.publish();
        let pooled = EstimationEngine::new(mk(4));
        let pooled_ids = pooled.insert_batch(vectors.clone());
        pooled.publish();
        assert_eq!(serial_ids, pooled_ids, "id assignment must not change");
        let taus = [0.2, 0.5, 0.9];
        let a = serial.estimate_batch(&taus);
        let b = pooled.estimate_batch(&taus);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.estimate.value.to_bits(), y.estimate.value.to_bits());
            assert_eq!(x.std_err.to_bits(), y.std_err.to_bits());
        }
        let stats = pooled.stats();
        assert_eq!(stats.pool_threads, 4);
        assert!(
            stats.pool_tasks > 0,
            "the batch pre-hash must run on the pool"
        );
    }
}
