//! The concurrent estimation engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use vsj_core::{Estimate, LshSs, LshSsConfig};
use vsj_lsh::{BucketHasher, Composite, MinHashFamily, SimHashFamily};
use vsj_sampling::{RngStreams, SplitMix64, Xoshiro256};
use vsj_vector::{Cosine, Jaccard, SparseVector};

use crate::cache::{CacheEntry, CacheKey, EstimateCache};
use crate::config::{IndexFamily, ServiceConfig};
use crate::shard::{ShardState, ShardStats};
use crate::snapshot::Snapshot;
use crate::GlobalId;

/// One answer from the service, with the provenance a query optimizer
/// (or an SLA dashboard) needs to judge it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceEstimate {
    /// The join-size estimate (value + how it was formed).
    pub estimate: Estimate,
    /// Epoch of the snapshot it was computed on.
    pub epoch: u64,
    /// Live vectors in that snapshot.
    pub n: usize,
    /// The threshold asked for.
    pub tau: f64,
    /// Whether the answer came from the estimate cache (no sampling
    /// performed by this call).
    pub cached: bool,
}

/// Point-in-time engine statistics.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Epoch of the currently published snapshot.
    pub epoch: u64,
    /// Live vectors across all shards (may be ahead of the snapshot).
    pub live: usize,
    /// Total ingest operations (inserts + removes + upsert halves).
    pub ingests: u64,
    /// Snapshots published.
    pub publishes: u64,
    /// Per-shard breakdown.
    pub shards: Vec<ShardStats>,
    /// Estimate-cache hits.
    pub cache_hits: u64,
    /// Estimate-cache misses.
    pub cache_misses: u64,
    /// Resident cache entries.
    pub cache_entries: usize,
    /// Estimate computations that actually sampled (cache misses served).
    pub sampling_passes: u64,
    /// Total pair draws across those passes.
    pub sampled_pairs: u64,
}

/// A long-lived, concurrently usable VSJ size-estimation service.
///
/// * **Writes** (`insert` / `remove` / `upsert`) go to one of `S` shards
///   chosen by a hash of the global id; each shard hashes the vector
///   once (`k` LSH functions) and maintains its bucket counts
///   incrementally under its own lock — writers on different shards
///   never contend.
/// * **Publication** (`publish`, or automatic every
///   [`ServiceConfig::auto_publish_every`] ingests) takes a consistent
///   cut across the shards and assembles an immutable epoch
///   [`Snapshot`] — an O(n) merge of precomputed bucket keys, no
///   re-hashing — then swaps it in as the current read view.
/// * **Reads** (`estimate` / `estimate_batch`) clone the current
///   snapshot `Arc` (readers never block writers or each other beyond
///   that pointer read) and run the paper's LSH-SS estimator against
///   it, through the [`IndexView`](vsj_core::IndexView) abstraction.
/// * **The estimate cache** short-circuits repeated thresholds: answers
///   stay servable until the data drifts more than ε ingests past the
///   state they were computed on.
///
/// Determinism: an estimate at `(epoch, τ)` uses the RNG
/// [`EstimationEngine::estimate_rng`] derives from the master seed, so
/// the same engine state always returns the same value — and the value
/// equals an offline [`LshSs`] run over the snapshot with that RNG.
pub struct EstimationEngine {
    config: ServiceConfig,
    hasher: Arc<dyn BucketHasher>,
    shards: Vec<Mutex<ShardState>>,
    /// Current published snapshot; writers swap, readers clone the Arc.
    current: RwLock<Arc<Snapshot>>,
    /// Serializes publishes; holds the last published epoch.
    publish_lock: Mutex<u64>,
    next_id: AtomicU64,
    ingests: AtomicU64,
    publishes: AtomicU64,
    sampling_passes: AtomicU64,
    sampled_pairs: AtomicU64,
    cache: Mutex<EstimateCache>,
    streams: RngStreams,
}

impl EstimationEngine {
    /// Builds an engine from a configuration.
    pub fn new(config: ServiceConfig) -> Self {
        assert!(config.shards >= 1, "an engine needs at least one shard");
        assert!(config.k >= 1, "k must be at least 1");
        assert!(
            config.auto_publish_every != Some(0),
            "auto_publish_every must be at least 1"
        );
        let hasher: Arc<dyn BucketHasher> = match config.family {
            IndexFamily::SimHash => Arc::new(Composite::derive(
                SimHashFamily::new(),
                config.seed,
                0,
                config.k,
            )),
            IndexFamily::MinHash => Arc::new(Composite::derive(
                MinHashFamily::new(),
                config.seed,
                0,
                config.k,
            )),
        };
        let shards = (0..config.shards)
            .map(|_| Mutex::new(ShardState::new(hasher.clone())))
            .collect();
        Self {
            config,
            current: RwLock::new(Arc::new(Snapshot::empty(hasher.clone()))),
            hasher,
            shards,
            publish_lock: Mutex::new(0),
            next_id: AtomicU64::new(0),
            ingests: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            sampling_passes: AtomicU64::new(0),
            sampled_pairs: AtomicU64::new(0),
            cache: Mutex::new(EstimateCache::default()),
            streams: RngStreams::new(config.seed),
        }
    }

    /// The engine's configuration.
    #[inline]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    fn shard_of(&self, global: GlobalId) -> usize {
        (SplitMix64::mix(global) % self.shards.len() as u64) as usize
    }

    // --- writes ----------------------------------------------------------

    /// Ingests a vector, returning its engine-assigned global id. Not
    /// visible to reads until the next [`publish`](Self::publish).
    pub fn insert(&self, v: SparseVector) -> GlobalId {
        let v = Arc::new(v);
        loop {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            // A concurrent upsert may claim this id between our
            // allocation and the shard lock (its fetch_max reservation
            // is not atomic with our fetch_add); ids only grow, so
            // retrying with a fresh id terminates.
            if self.shards[self.shard_of(id)].lock().insert(id, v.clone()) {
                self.after_ingest(1);
                return id;
            }
        }
    }

    /// Ingests a batch, returning the assigned ids (one auto-publish
    /// check per vector, same as sequential inserts).
    pub fn insert_batch<I>(&self, vectors: I) -> Vec<GlobalId>
    where
        I: IntoIterator<Item = SparseVector>,
    {
        vectors.into_iter().map(|v| self.insert(v)).collect()
    }

    /// Removes a vector by global id; `false` when absent (or already
    /// removed). Takes effect for reads at the next publish.
    pub fn remove(&self, global: GlobalId) -> bool {
        let removed = self.shards[self.shard_of(global)].lock().remove(global);
        if removed {
            self.after_ingest(1);
        }
        removed
    }

    /// Inserts or replaces the vector under a caller-chosen global id.
    /// Returns `true` when an existing vector was replaced. The id is
    /// reserved against future [`insert`](Self::insert) allocations.
    pub fn upsert(&self, global: GlobalId, v: SparseVector) -> bool {
        self.next_id.fetch_max(global + 1, Ordering::Relaxed);
        let replaced = {
            let mut shard = self.shards[self.shard_of(global)].lock();
            let replaced = shard.remove(global);
            let inserted = shard.insert(global, Arc::new(v));
            debug_assert!(inserted, "id was just vacated");
            replaced
        };
        self.after_ingest(if replaced { 2 } else { 1 });
        replaced
    }

    /// Whether a global id is currently live in the mutable index (the
    /// current snapshot may not reflect it yet).
    pub fn contains(&self, global: GlobalId) -> bool {
        self.shards[self.shard_of(global)].lock().contains(global)
    }

    fn after_ingest(&self, ops: u64) {
        let count = self.ingests.fetch_add(ops, Ordering::Relaxed) + ops;
        if let Some(batch) = self.config.auto_publish_every {
            // Publish when the counter crosses a batch boundary. With
            // multi-op ingests the crossing test (not `% == 0`) keeps
            // the cadence even.
            if count / batch > (count - ops) / batch {
                self.publish();
            }
        }
    }

    // --- publication -----------------------------------------------------

    /// Takes a consistent cut across all shards and publishes it as the
    /// next epoch snapshot. Returns the new epoch. Concurrent publishers
    /// are serialized; readers are never blocked (they keep the old
    /// snapshot until the swap).
    pub fn publish(&self) -> u64 {
        let mut last_epoch = self.publish_lock.lock();
        // Lock every shard (in index order) for the cut: ingest counter
        // and live rows are read under the same freeze, so the snapshot
        // is transactionally consistent.
        let mut rows = Vec::new();
        {
            let guards: Vec<_> = self.shards.iter().map(Mutex::lock).collect();
            for g in &guards {
                g.collect_live(&mut rows);
            }
            let ingested = self.ingests.load(Ordering::SeqCst);
            drop(guards);
            let epoch = *last_epoch + 1;
            let snapshot = Arc::new(Snapshot::assemble(
                epoch,
                ingested,
                self.hasher.clone(),
                rows,
            ));
            *self.current.write() = snapshot;
            *last_epoch = epoch;
        }
        self.publishes.fetch_add(1, Ordering::Relaxed);
        *last_epoch
    }

    /// The current published snapshot (cheap: one `Arc` clone under a
    /// briefly held read lock; sampling happens entirely lock-free
    /// against the immutable snapshot).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.current.read().clone()
    }

    /// Epoch of the current snapshot.
    pub fn current_epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    // --- reads -----------------------------------------------------------

    /// The LSH-SS parameters used at live size `n` (the configured fixed
    /// parameters, or the paper defaults derived from `n`).
    pub fn estimator_config(&self, n: usize) -> LshSsConfig {
        self.config
            .estimator
            .unwrap_or_else(|| LshSsConfig::paper_defaults(n))
    }

    /// The deterministic RNG an estimate at `(epoch, τ)` uses. Exposed
    /// so offline runs can replicate service answers exactly:
    /// `LshSs::estimate(snapshot.collection(), snapshot, measure, τ,
    /// &mut engine.estimate_rng(epoch, τ))` equals
    /// [`estimate`](Self::estimate) at that epoch.
    pub fn estimate_rng(&self, epoch: u64, tau: f64) -> Xoshiro256 {
        self.streams.subfamily(epoch).stream(tau.to_bits())
    }

    /// The deterministic RNG a batch estimate at `(epoch, τ-grid)` uses.
    pub fn batch_rng(&self, epoch: u64, taus: &[f64]) -> Xoshiro256 {
        let grid = taus.iter().fold(0x6A09_E667_F3BC_C909u64, |acc, t| {
            SplitMix64::mix(acc ^ t.to_bits())
        });
        self.streams.subfamily(epoch).stream(grid)
    }

    /// Cache fingerprint of the estimator *policy*. With a fixed config
    /// the exact parameters are hashed; with per-snapshot paper defaults
    /// a constant is used — the defaults drift together with `n`, and
    /// serving an answer computed under a ≤ ε-stale `n` is precisely the
    /// staleness the drift tolerance already accepts.
    fn fingerprint(&self) -> u64 {
        match self.config.estimator {
            None => 0x7A9E_7A9E_7A9E_7A9E,
            Some(config) => {
                let damp = match config.dampening {
                    vsj_core::Dampening::SafeLowerBound => 0u64,
                    vsj_core::Dampening::Constant(c) => 1 ^ c.to_bits().rotate_left(8),
                    vsj_core::Dampening::NlOverDelta => 2,
                };
                let mut acc = SplitMix64::mix(config.m_h);
                acc = SplitMix64::mix(acc ^ config.m_l);
                acc = SplitMix64::mix(acc ^ config.delta);
                SplitMix64::mix(acc ^ damp)
            }
        }
    }

    /// Estimates the join size at threshold `τ` against the current
    /// snapshot, serving from the estimate cache when a previous answer
    /// is within the configured drift tolerance ε.
    pub fn estimate(&self, tau: f64) -> ServiceEstimate {
        let snapshot = self.snapshot();
        let est_config = self.estimator_config(snapshot.len());
        let key = CacheKey {
            tau_bits: tau.to_bits(),
            config: self.fingerprint(),
            batch: false,
        };
        let now = snapshot.ingested();
        if let Some(hit) = self
            .cache
            .lock()
            .lookup(key, now, self.config.cache_epsilon)
        {
            return ServiceEstimate {
                estimate: hit.estimate,
                epoch: hit.epoch,
                n: hit.n,
                tau,
                cached: true,
            };
        }
        let (estimate, sampled) = self.compute(&snapshot, est_config, tau);
        self.sampling_passes.fetch_add(1, Ordering::Relaxed);
        self.sampled_pairs.fetch_add(sampled, Ordering::Relaxed);
        self.cache.lock().store(
            key,
            CacheEntry {
                estimate,
                epoch: snapshot.epoch(),
                ingested: now,
                n: snapshot.len(),
            },
        );
        ServiceEstimate {
            estimate,
            epoch: snapshot.epoch(),
            n: snapshot.len(),
            tau,
            cached: false,
        }
    }

    /// Estimates a whole threshold grid from **one** sampling pass
    /// ([`LshSs::estimate_curve`]) unless every τ is already cached
    /// within tolerance. Results are cached per τ, in a key space
    /// separate from [`estimate`](Self::estimate): the two APIs sample
    /// through different RNG streams ([`batch_rng`](Self::batch_rng) vs
    /// [`estimate_rng`](Self::estimate_rng)), so each is individually
    /// deterministic at a fixed epoch but their answers may differ —
    /// both are unbiased draws of the same estimator.
    pub fn estimate_batch(&self, taus: &[f64]) -> Vec<ServiceEstimate> {
        if taus.is_empty() {
            return Vec::new();
        }
        let snapshot = self.snapshot();
        let est_config = self.estimator_config(snapshot.len());
        let config_fp = self.fingerprint();
        let now = snapshot.ingested();
        // Fast path: only when *every* threshold can be served from
        // cache (peek first — hits are recorded only if actually served,
        // misses only for the batch that bypasses the cache).
        {
            let mut cache = self.cache.lock();
            let hits: Option<Vec<ServiceEstimate>> = taus
                .iter()
                .map(|&tau| {
                    cache
                        .peek(
                            CacheKey {
                                tau_bits: tau.to_bits(),
                                config: config_fp,
                                batch: true,
                            },
                            now,
                            self.config.cache_epsilon,
                        )
                        .map(|hit| ServiceEstimate {
                            estimate: hit.estimate,
                            epoch: hit.epoch,
                            n: hit.n,
                            tau,
                            cached: true,
                        })
                })
                .collect();
            match hits {
                Some(all) => {
                    cache.record(taus.len() as u64, 0);
                    return all;
                }
                None => cache.record(0, taus.len() as u64),
            }
        }
        // Shared pass over the grid.
        let est = LshSs { config: est_config };
        let mut rng = self.batch_rng(snapshot.epoch(), taus);
        let curve = match self.config.family {
            IndexFamily::SimHash => est.estimate_curve(
                snapshot.collection(),
                snapshot.as_ref(),
                &Cosine,
                taus,
                &mut rng,
            ),
            IndexFamily::MinHash => est.estimate_curve(
                snapshot.collection(),
                snapshot.as_ref(),
                &Jaccard,
                taus,
                &mut rng,
            ),
        };
        let sampled = if snapshot.table().nh() > 0 {
            est_config.m_h
        } else {
            0
        } + if snapshot.table().nl() > 0 {
            est_config.m_l
        } else {
            0
        };
        self.sampling_passes.fetch_add(1, Ordering::Relaxed);
        self.sampled_pairs.fetch_add(sampled, Ordering::Relaxed);
        let mut cache = self.cache.lock();
        taus.iter()
            .zip(curve)
            .map(|(&tau, estimate)| {
                cache.store(
                    CacheKey {
                        tau_bits: tau.to_bits(),
                        config: config_fp,
                        batch: true,
                    },
                    CacheEntry {
                        estimate,
                        epoch: snapshot.epoch(),
                        ingested: now,
                        n: snapshot.len(),
                    },
                );
                ServiceEstimate {
                    estimate,
                    epoch: snapshot.epoch(),
                    n: snapshot.len(),
                    tau,
                    cached: false,
                }
            })
            .collect()
    }

    fn compute(&self, snapshot: &Snapshot, est_config: LshSsConfig, tau: f64) -> (Estimate, u64) {
        let est = LshSs { config: est_config };
        let mut rng = self.estimate_rng(snapshot.epoch(), tau);
        let detailed = match self.config.family {
            IndexFamily::SimHash => {
                est.estimate_detailed(snapshot.collection(), snapshot, &Cosine, tau, &mut rng)
            }
            IndexFamily::MinHash => {
                est.estimate_detailed(snapshot.collection(), snapshot, &Jaccard, tau, &mut rng)
            }
        };
        let sampled = if snapshot.table().nh() > 0 {
            est_config.m_h
        } else {
            0
        } + detailed.l_samples;
        (detailed.estimate(), sampled)
    }

    /// Drops every cached estimate (forces recomputation).
    pub fn clear_cache(&self) {
        self.cache.lock().clear();
    }

    // --- observability ---------------------------------------------------

    /// Point-in-time statistics (briefly locks each shard in turn).
    pub fn stats(&self) -> EngineStats {
        let shards: Vec<ShardStats> = self.shards.iter().map(|s| s.lock().stats()).collect();
        let (cache_hits, cache_misses, cache_entries) = self.cache.lock().stats();
        EngineStats {
            epoch: self.current_epoch(),
            live: shards.iter().map(|s| s.live).sum(),
            ingests: self.ingests.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            shards,
            cache_hits,
            cache_misses,
            cache_entries,
            sampling_passes: self.sampling_passes.load(Ordering::Relaxed),
            sampled_pairs: self.sampled_pairs.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for EstimationEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("EstimationEngine")
            .field("shards", &self.shards.len())
            .field("epoch", &stats.epoch)
            .field("live", &stats.live)
            .field("ingests", &stats.ingests)
            .finish()
    }
}
