//! Durable epoch checkpoints and the background checkpointer.
//!
//! A *checkpoint* is one file (`checkpoint.vsjc`, a
//! [`datasets::io`](vsj_datasets::io) v2 container) holding everything
//! needed to resurrect an [`EstimationEngine`]
//! at a published epoch:
//!
//! | section | payload |
//! |---|---|
//! | `META` | epoch, ingest counter, id allocator, WAL cut, publishes, full [`ServiceConfig`] |
//! | `GIDS` | global ids of the snapshot rows, ascending |
//! | `KEYS` | precomputed LSH bucket keys, parallel to `GIDS` |
//! | `VECS` | the vector payloads, written once straight from the snapshot's `Arc`-shared handles |
//!
//! Storing the bucket keys means recovery re-hashes *nothing*: shards
//! are rebuilt through [`LshTable::insert_key`](vsj_lsh::LshTable) from
//! parts, exactly like snapshot publication. Every section is
//! checksummed by the container, so any flipped byte fails the load
//! loudly instead of resurrecting a silently wrong index.
//!
//! Checkpoint files are written to a temp name and atomically renamed,
//! so a crash mid-checkpoint leaves the previous checkpoint intact. The
//! WAL is truncated only after the rename (see
//! [`EstimationEngine::checkpoint`](crate::EstimationEngine::checkpoint)
//! for the full protocol).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use vsj_datasets::io::{self, ContainerReader, ContainerWriter, IoError};
use vsj_vector::SparseVector;

use crate::config::{IndexFamily, ServiceConfig};
use crate::engine::EstimationEngine;
use crate::snapshot::Snapshot;
use crate::GlobalId;

/// File name of the checkpoint container inside a storage directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.vsjc";
/// File name of the write-ahead log inside a storage directory.
pub const WAL_FILE: &str = "wal.vsjw";

const SECTION_META: [u8; 4] = *b"META";
const SECTION_GIDS: [u8; 4] = *b"GIDS";
const SECTION_KEYS: [u8; 4] = *b"KEYS";
const SECTION_VECS: [u8; 4] = *b"VECS";

/// Errors from the durability layer.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Container-level decode failure (framing, checksum, vectors).
    Container(IoError),
    /// Structurally valid container with semantically inconsistent
    /// contents (mismatched section lengths, non-ascending ids, …).
    Corrupt(String),
    /// Snapshot and WAL (or caller expectations) disagree about the
    /// engine configuration.
    ConfigMismatch(String),
    /// A durability operation was invoked on a non-durable engine.
    NotDurable,
    /// `durable()` refused to overwrite an existing storage directory.
    AlreadyInitialized(PathBuf),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "persistence I/O error: {e}"),
            Self::Container(e) => write!(f, "checkpoint container error: {e}"),
            Self::Corrupt(msg) => write!(f, "corrupt persistent state: {msg}"),
            Self::ConfigMismatch(msg) => write!(f, "config mismatch: {msg}"),
            Self::NotDurable => write!(f, "engine has no storage attached (not durable)"),
            Self::AlreadyInitialized(dir) => write!(
                f,
                "storage directory {} already holds a checkpoint; use recover()",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<IoError> for PersistError {
    fn from(e: IoError) -> Self {
        Self::Container(e)
    }
}

/// Engine counters and configuration frozen at a checkpoint cut.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointMeta {
    /// Epoch of the checkpointed snapshot.
    pub epoch: u64,
    /// Ingest-operation counter at the cut.
    pub ingested: u64,
    /// Id-allocator watermark at the cut.
    pub next_id: u64,
    /// WAL sequence number the cut covers: records with `seq` beyond
    /// this are replayed on recovery.
    pub applied_seq: u64,
    /// Publish counter at the cut.
    pub publishes: u64,
    /// The engine configuration (fully round-tripped; `recover` needs
    /// no config argument).
    pub config: ServiceConfig,
}

/// Identity hash of the configuration fields that determine what the
/// persisted bytes *mean* (hash functions, sharding, RNG streams). Used
/// to pair a WAL with its checkpoint.
pub fn config_fingerprint(config: &ServiceConfig) -> u64 {
    use vsj_sampling::SplitMix64;
    let family = match config.family {
        IndexFamily::SimHash => 1u64,
        IndexFamily::MinHash => 2u64,
    };
    let mut acc = SplitMix64::mix(0x5EED_CAFE ^ config.seed);
    acc = SplitMix64::mix(acc ^ config.k as u64);
    acc = SplitMix64::mix(acc ^ config.shards as u64);
    SplitMix64::mix(acc ^ family)
}

fn encode_meta(meta: &CheckpointMeta, n: u64) -> Bytes {
    let c = &meta.config;
    let mut buf = BytesMut::with_capacity(128);
    buf.put_u64_le(meta.epoch);
    buf.put_u64_le(meta.ingested);
    buf.put_u64_le(meta.next_id);
    buf.put_u64_le(meta.applied_seq);
    buf.put_u64_le(meta.publishes);
    buf.put_u64_le(n);
    buf.put_u64_le(c.seed);
    buf.put_u64_le(c.k as u64);
    buf.put_u64_le(c.shards as u64);
    buf.put_slice(&[match c.family {
        IndexFamily::SimHash => 0u8,
        IndexFamily::MinHash => 1u8,
    }]);
    buf.put_u64_le(c.cache_epsilon);
    match c.auto_publish_every {
        None => buf.put_slice(&[0]),
        Some(b) => {
            buf.put_slice(&[1]);
            buf.put_u64_le(b);
        }
    }
    match c.estimator {
        None => buf.put_slice(&[0]),
        Some(e) => {
            buf.put_slice(&[1]);
            buf.put_u64_le(e.m_h);
            buf.put_u64_le(e.m_l);
            buf.put_u64_le(e.delta);
            match e.dampening {
                vsj_core::Dampening::SafeLowerBound => buf.put_slice(&[0]),
                vsj_core::Dampening::Constant(v) => {
                    buf.put_slice(&[1]);
                    buf.put_f64_le(v);
                }
                vsj_core::Dampening::NlOverDelta => buf.put_slice(&[2]),
            }
        }
    }
    buf.freeze()
}

fn corrupt(msg: impl Into<String>) -> PersistError {
    PersistError::Corrupt(msg.into())
}

fn decode_meta(mut data: Bytes) -> Result<(CheckpointMeta, u64), PersistError> {
    let need = |data: &mut Bytes, bytes: usize, what: &str| -> Result<(), PersistError> {
        if data.remaining() < bytes {
            Err(corrupt(format!("META truncated at {what}")))
        } else {
            Ok(())
        }
    };
    need(&mut data, 6 * 8, "counters")?;
    let epoch = data.get_u64_le();
    let ingested = data.get_u64_le();
    let next_id = data.get_u64_le();
    let applied_seq = data.get_u64_le();
    let publishes = data.get_u64_le();
    let n = data.get_u64_le();
    need(&mut data, 3 * 8 + 1, "config")?;
    let seed = data.get_u64_le();
    let k = data.get_u64_le() as usize;
    let shards = data.get_u64_le() as usize;
    let mut byte = [0u8; 1];
    data.copy_to_slice(&mut byte);
    let family = match byte[0] {
        0 => IndexFamily::SimHash,
        1 => IndexFamily::MinHash,
        b => return Err(corrupt(format!("unknown family tag {b}"))),
    };
    need(&mut data, 8 + 1, "cache/publish policy")?;
    let cache_epsilon = data.get_u64_le();
    data.copy_to_slice(&mut byte);
    let auto_publish_every = match byte[0] {
        0 => None,
        1 => {
            need(&mut data, 8, "auto-publish batch")?;
            Some(data.get_u64_le())
        }
        b => return Err(corrupt(format!("bad auto-publish flag {b}"))),
    };
    need(&mut data, 1, "estimator flag")?;
    data.copy_to_slice(&mut byte);
    let estimator = match byte[0] {
        0 => None,
        1 => {
            need(&mut data, 3 * 8 + 1, "estimator config")?;
            let m_h = data.get_u64_le();
            let m_l = data.get_u64_le();
            let delta = data.get_u64_le();
            data.copy_to_slice(&mut byte);
            let dampening = match byte[0] {
                0 => vsj_core::Dampening::SafeLowerBound,
                1 => {
                    need(&mut data, 8, "dampening constant")?;
                    vsj_core::Dampening::Constant(data.get_f64_le())
                }
                2 => vsj_core::Dampening::NlOverDelta,
                b => return Err(corrupt(format!("unknown dampening tag {b}"))),
            };
            Some(vsj_core::LshSsConfig {
                m_h,
                m_l,
                delta,
                dampening,
            })
        }
        b => return Err(corrupt(format!("bad estimator flag {b}"))),
    };
    if data.has_remaining() {
        return Err(corrupt(format!("{} trailing META bytes", data.remaining())));
    }
    // Re-validate what the builder validates: a corrupt-but-checksummed
    // file must fail loudly here, never panic inside engine assembly.
    if shards == 0 || k == 0 || auto_publish_every == Some(0) {
        return Err(corrupt("META carries an invalid engine configuration"));
    }
    let config = ServiceConfig {
        shards,
        k,
        family,
        seed,
        cache_epsilon,
        auto_publish_every,
        estimator,
    };
    Ok((
        CheckpointMeta {
            epoch,
            ingested,
            next_id,
            applied_seq,
            publishes,
            config,
        },
        n,
    ))
}

fn encode_u64s(values: impl ExactSizeIterator<Item = u64>) -> Bytes {
    let mut buf = BytesMut::with_capacity(values.len() * 8);
    for v in values {
        buf.put_u64_le(v);
    }
    buf.freeze()
}

fn decode_u64s(mut data: Bytes, what: &str) -> Result<Vec<u64>, PersistError> {
    if !data.remaining().is_multiple_of(8) {
        return Err(corrupt(format!(
            "{what} section length not a multiple of 8"
        )));
    }
    let mut out = Vec::with_capacity(data.remaining() / 8);
    while data.has_remaining() {
        out.push(data.get_u64_le());
    }
    Ok(out)
}

/// The snapshot rows a checkpoint stores: `(global id, bucket key,
/// vector)`, ascending by id.
pub type SnapshotRows = Vec<(GlobalId, u64, Arc<SparseVector>)>;

/// Serializes a checkpoint into container bytes (exposed for tests and
/// tooling; the private `write_checkpoint` is the durable path).
pub fn encode_checkpoint(meta: &CheckpointMeta, snapshot: &Snapshot) -> Bytes {
    let mut w = ContainerWriter::new();
    w.section(SECTION_META, encode_meta(meta, snapshot.len() as u64));
    w.section(
        SECTION_GIDS,
        encode_u64s(snapshot.global_ids().iter().copied()),
    );
    let keys = snapshot.table().to_parts();
    w.section(SECTION_KEYS, encode_u64s(keys.into_iter()));
    // Payloads are serialized once, straight from the snapshot's shared
    // `Arc` handles — the on-disk bytes are identical to the owned
    // encoding, with no intermediate owned collection materialized.
    let payloads: Vec<&SparseVector> = snapshot.collection().iter_arcs().map(Arc::as_ref).collect();
    w.section(
        SECTION_VECS,
        io::encode_vector_list(payloads.iter().copied()),
    );
    w.finish()
}

/// Atomically replaces the checkpoint file in `dir`.
pub(crate) fn write_checkpoint(
    dir: &Path,
    meta: &CheckpointMeta,
    snapshot: &Snapshot,
) -> Result<(), PersistError> {
    use std::io::Write;
    let bytes = encode_checkpoint(meta, snapshot);
    let tmp = dir.join("checkpoint.vsjc.tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes.as_slice())?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, dir.join(CHECKPOINT_FILE))?;
    Ok(())
}

/// Decodes checkpoint bytes into metadata plus snapshot rows
/// `(global id, bucket key, vector)`, verifying every section checksum
/// and cross-section consistency.
pub fn decode_checkpoint(bytes: Bytes) -> Result<(CheckpointMeta, SnapshotRows), PersistError> {
    let container = ContainerReader::parse(bytes)?;
    let (meta, n) = decode_meta(container.require(SECTION_META)?)?;
    let gids = decode_u64s(container.require(SECTION_GIDS)?, "GIDS")?;
    let keys = decode_u64s(container.require(SECTION_KEYS)?, "KEYS")?;
    let collection = io::decode_vectors(container.require(SECTION_VECS)?)?;
    if gids.len() as u64 != n || keys.len() as u64 != n || collection.len() as u64 != n {
        return Err(corrupt(format!(
            "row count mismatch: META says {n}, sections carry {}/{}/{}",
            gids.len(),
            keys.len(),
            collection.len()
        )));
    }
    if gids.windows(2).any(|w| w[0] >= w[1]) {
        return Err(corrupt("GIDS are not strictly ascending"));
    }
    if gids.last().is_some_and(|&last| last >= meta.next_id) {
        return Err(corrupt("a snapshot row carries an unallocated global id"));
    }
    let rows = gids
        .into_iter()
        .zip(keys)
        .zip(collection.into_vectors())
        .map(|((gid, key), v)| (gid, key, Arc::new(v)))
        .collect();
    Ok((meta, rows))
}

/// Reads and verifies the checkpoint file in `dir`.
pub fn read_checkpoint(dir: &Path) -> Result<(CheckpointMeta, SnapshotRows), PersistError> {
    decode_checkpoint(Bytes::from(std::fs::read(dir.join(CHECKPOINT_FILE))?))
}

// --- checkpoint generations ---------------------------------------------

/// Path of checkpoint generation `generation` inside `dir`: `0` is the
/// current `checkpoint.vsjc`, `g ≥ 1` is `checkpoint.vsjc.g` (the g-th
/// most recent previous checkpoint).
pub fn generation_path(dir: &Path, generation: u64) -> PathBuf {
    if generation == 0 {
        dir.join(CHECKPOINT_FILE)
    } else {
        dir.join(format!("{CHECKPOINT_FILE}.{generation}"))
    }
}

/// Reads and verifies checkpoint generation `generation` in `dir` (see
/// [`generation_path`]).
pub fn read_checkpoint_generation(
    dir: &Path,
    generation: u64,
) -> Result<(CheckpointMeta, SnapshotRows), PersistError> {
    decode_checkpoint(Bytes::from(std::fs::read(generation_path(
        dir, generation,
    ))?))
}

/// Reads **only the `META` section** of a checkpoint container —
/// header and section frames are walked with seeks, the sections other
/// than `META` are never read into memory, and only `META`'s checksum
/// is verified. This is what keeps WAL-horizon bookkeeping O(metadata):
/// a checkpoint needs the cut sequence of every *retained* generation
/// to know which WAL segments may be dropped, and decoding whole
/// multi-megabyte containers for a single `u64` would put an O(corpus)
/// read on the checkpoint path.
pub fn peek_checkpoint_meta(path: &Path) -> Result<CheckpointMeta, PersistError> {
    use std::io::{Read, Seek, SeekFrom};
    let mut file = std::fs::File::open(path)?;
    let mut header = [0u8; 12];
    file.read_exact(&mut header)?;
    if &header[0..4] != b"VSJC" {
        return Err(corrupt("not a VSJC container"));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if version != 2 {
        return Err(corrupt(format!("unsupported container version {version}")));
    }
    let count = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    let file_len = file.metadata()?.len();
    let mut pos = 12u64;
    for _ in 0..count {
        let mut section = [0u8; 20];
        file.read_exact(&mut section)?;
        pos += 20;
        let tag: [u8; 4] = section[0..4].try_into().expect("4 bytes");
        let len = u64::from_le_bytes(section[4..12].try_into().expect("8 bytes"));
        let checksum = u64::from_le_bytes(section[12..20].try_into().expect("8 bytes"));
        // A corrupt length field must fail loudly, not drive a huge
        // allocation or a wrapping seek: bound it by what the file can
        // actually hold past this frame.
        if len > file_len.saturating_sub(pos) {
            return Err(corrupt(format!(
                "section length {len} overruns the container ({file_len} bytes)"
            )));
        }
        pos += len;
        if tag == SECTION_META {
            let mut payload = vec![0u8; len as usize];
            file.read_exact(&mut payload)?;
            if io::checksum64(&payload) != checksum {
                return Err(PersistError::Container(IoError::BadChecksum {
                    section: tag,
                }));
            }
            return decode_meta(Bytes::from(payload)).map(|(meta, _)| meta);
        }
        file.seek(SeekFrom::Current(len as i64))?;
    }
    Err(corrupt("container has no META section"))
}

/// The prior checkpoint generations present in `dir`, ascending (`1` =
/// most recent previous). The current checkpoint (generation 0) is not
/// listed; a fresh directory returns an empty vector.
pub fn list_generations(dir: &Path) -> Vec<u64> {
    // Rotation keeps `.1..` contiguous, so scanning until the first
    // gap finds them all — already in ascending order.
    (1..)
        .take_while(|&g| generation_path(dir, g).exists())
        .collect()
}

/// Rotates checkpoint generations ahead of a new checkpoint write:
/// prunes generations at or past `retain`, shifts `.g → .(g+1)` for the
/// survivors, and *hard-links* the current checkpoint to `.1` so the
/// file `write_checkpoint`'s atomic rename replaces lives on as the
/// newest prior generation. Crash-safe: the current checkpoint is never
/// unlinked by rotation, so every window leaves a loadable generation 0.
pub(crate) fn rotate_generations(dir: &Path, retain: usize) -> Result<(), PersistError> {
    // Prune every generation the shift would push past the window
    // (`.g` becomes `.g+1`, so `.retain-1` and beyond must go). Also
    // cleans up after a `retain` lowered between lives; the scan runs a
    // little past the window so stale stragglers are reclaimed too.
    let horizon = (retain as u64).saturating_sub(1).max(1);
    let mut g = horizon;
    while generation_path(dir, g).exists() || g < horizon + 8 {
        if generation_path(dir, g).exists() {
            std::fs::remove_file(generation_path(dir, g))?;
        }
        g += 1;
    }
    if retain <= 1 {
        return Ok(());
    }
    for g in (1..retain as u64 - 1).rev() {
        let from = generation_path(dir, g);
        if from.exists() {
            std::fs::rename(&from, generation_path(dir, g + 1))?;
        }
    }
    let current = dir.join(CHECKPOINT_FILE);
    if current.exists() {
        // Hard link, not rename: generation 0 must stay present through
        // every crash window. Fall back to a copy on filesystems
        // without hard links.
        let one = generation_path(dir, 1);
        if std::fs::hard_link(&current, &one).is_err() {
            std::fs::copy(&current, &one)?;
        }
    }
    Ok(())
}

/// A background thread that checkpoints a durable engine whenever the
/// WAL backlog reaches a threshold — the component that keeps the WAL
/// bounded ("truncate after each durable epoch") without putting
/// checkpoint latency on the write path.
///
/// Stopping (explicitly via [`Checkpointer::stop`] or by dropping)
/// joins the thread; it does **not** take a final checkpoint — callers
/// decide whether the tail should ride the WAL or be made durable.
#[derive(Debug)]
pub struct Checkpointer {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<u64>>,
}

impl Checkpointer {
    /// Spawns the checkpointer: every `poll`, if at least
    /// `min_pending_records` WAL records accumulated since the last
    /// checkpoint, takes one.
    ///
    /// # Panics
    /// The background thread panics if a checkpoint fails (the panic
    /// resurfaces from [`Checkpointer::stop`]). The engine itself stays
    /// up but does **not** keep silently accepting writes: a failed
    /// checkpoint poisons the WAL writer, so every subsequent durable
    /// ingest fails loudly instead of being acknowledged and lost.
    pub fn spawn(engine: Arc<EstimationEngine>, min_pending_records: u64, poll: Duration) -> Self {
        assert!(
            engine.is_durable(),
            "Checkpointer requires a durable engine"
        );
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::spawn(move || {
            let mut taken = 0u64;
            while !stop_flag.load(Ordering::Relaxed) {
                if engine.wal_pending() >= min_pending_records.max(1) {
                    engine
                        .checkpoint()
                        .expect("background checkpoint failed; refusing to continue unlogged");
                    taken += 1;
                }
                std::thread::sleep(poll);
            }
            taken
        });
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread and joins it, returning how many checkpoints
    /// it took.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("checkpointer joined twice")
            .join()
            .expect("checkpointer thread panicked")
    }
}

impl Drop for Checkpointer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}
