//! Durable epoch checkpoints and the background checkpointer.
//!
//! A *checkpoint* is one file (`checkpoint.vsjc`, a
//! [`datasets::io`](vsj_datasets::io) container) holding everything
//! needed to resurrect an [`EstimationEngine`]
//! at a published epoch. The writer emits the **v3 mappable layout**
//! (fixed-width, 8-byte-aligned sections — the out-of-core tier serves
//! estimates straight from a mapping of this file); v2 checkpoints from
//! earlier lives stay readable:
//!
//! | section | payload |
//! |---|---|
//! | `META` | epoch, ingest counter, id allocator, WAL cut, publishes, full [`ServiceConfig`] |
//! | `GIDS` | global ids of the snapshot rows, ascending (`n × u64`) |
//! | `KEYS` | precomputed LSH bucket keys, parallel to `GIDS` (`n × u64`) |
//! | `BKTK` | bucket keys, strictly ascending (`B × u64`) |
//! | `BOFF` | bucket member-run offsets (`(B+1) × u64`, `[0] = 0`, `[B] = n`) |
//! | `BMEM` | bucket member runs: row ids grouped by bucket, ascending within (`n × u32`) |
//! | `VOFF` | payload-slab byte offsets (`(n+1) × u64`) |
//! | `VPAY` | concatenated per-vector wire blocks |
//!
//! (v2 files carry `META`/`GIDS`/`KEYS` plus a single `VECS` payload
//! list instead of the bucket and slab sections.)
//!
//! Storing the bucket keys means recovery re-hashes *nothing*: shards
//! are rebuilt through [`LshTable::insert_key`](vsj_lsh::LshTable) from
//! parts, exactly like snapshot publication — and the mapped tier skips
//! even that, serving buckets from `BKTK`/`BOFF`/`BMEM` directly. Every
//! section is checksummed by the container, so any flipped byte fails
//! the load loudly instead of resurrecting a silently wrong index.
//!
//! Checkpoint files are written to a temp name and atomically renamed,
//! so a crash mid-checkpoint leaves the previous checkpoint intact. The
//! WAL is truncated only after the rename (see
//! [`EstimationEngine::checkpoint`](crate::EstimationEngine::checkpoint)
//! for the full protocol).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use vsj_datasets::io::{self, ContainerReader, ContainerWriter, IoError};
use vsj_obs::{Trace, TraceRing};
use vsj_pool::WorkPool;
use vsj_vector::SparseVector;

use crate::config::{IndexFamily, ServiceConfig};
use crate::engine::EstimationEngine;
use crate::mapped::MappedRow;
use crate::snapshot::Snapshot;
use crate::GlobalId;

/// File name of the checkpoint container inside a storage directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.vsjc";
/// File name of the write-ahead log inside a storage directory.
pub const WAL_FILE: &str = "wal.vsjw";
/// Temp name a checkpoint is written under before its atomic rename.
const CHECKPOINT_TMP: &str = "checkpoint.vsjc.tmp";

pub(crate) const SECTION_META: [u8; 4] = *b"META";
pub(crate) const SECTION_GIDS: [u8; 4] = *b"GIDS";
pub(crate) const SECTION_KEYS: [u8; 4] = *b"KEYS";
const SECTION_VECS: [u8; 4] = *b"VECS";
pub(crate) const SECTION_BKTK: [u8; 4] = *b"BKTK";
pub(crate) const SECTION_BOFF: [u8; 4] = *b"BOFF";
pub(crate) const SECTION_BMEM: [u8; 4] = *b"BMEM";
pub(crate) const SECTION_VOFF: [u8; 4] = *b"VOFF";
pub(crate) const SECTION_VPAY: [u8; 4] = *b"VPAY";

/// Errors from the durability layer.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Container-level decode failure (framing, checksum, vectors).
    Container(IoError),
    /// Structurally valid container with semantically inconsistent
    /// contents (mismatched section lengths, non-ascending ids, …).
    Corrupt(String),
    /// Snapshot and WAL (or caller expectations) disagree about the
    /// engine configuration.
    ConfigMismatch(String),
    /// A durability operation was invoked on a non-durable engine.
    NotDurable,
    /// `durable()` refused to overwrite an existing storage directory.
    AlreadyInitialized(PathBuf),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "persistence I/O error: {e}"),
            Self::Container(e) => write!(f, "checkpoint container error: {e}"),
            Self::Corrupt(msg) => write!(f, "corrupt persistent state: {msg}"),
            Self::ConfigMismatch(msg) => write!(f, "config mismatch: {msg}"),
            Self::NotDurable => write!(f, "engine has no storage attached (not durable)"),
            Self::AlreadyInitialized(dir) => write!(
                f,
                "storage directory {} already holds a checkpoint; use recover()",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<IoError> for PersistError {
    fn from(e: IoError) -> Self {
        Self::Container(e)
    }
}

/// Engine counters and configuration frozen at a checkpoint cut.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointMeta {
    /// Epoch of the checkpointed snapshot.
    pub epoch: u64,
    /// Ingest-operation counter at the cut.
    pub ingested: u64,
    /// Id-allocator watermark at the cut.
    pub next_id: u64,
    /// WAL sequence number the cut covers: records with `seq` beyond
    /// this are replayed on recovery.
    pub applied_seq: u64,
    /// Publish counter at the cut.
    pub publishes: u64,
    /// The engine configuration (fully round-tripped; `recover` needs
    /// no config argument).
    pub config: ServiceConfig,
}

/// Identity hash of the configuration fields that determine what the
/// persisted bytes *mean* (hash functions, sharding, RNG streams). Used
/// to pair a WAL with its checkpoint.
pub fn config_fingerprint(config: &ServiceConfig) -> u64 {
    use vsj_sampling::SplitMix64;
    let family = match config.family {
        IndexFamily::SimHash => 1u64,
        IndexFamily::MinHash => 2u64,
    };
    let mut acc = SplitMix64::mix(0x5EED_CAFE ^ config.seed);
    acc = SplitMix64::mix(acc ^ config.k as u64);
    acc = SplitMix64::mix(acc ^ config.shards as u64);
    SplitMix64::mix(acc ^ family)
}

fn encode_meta(meta: &CheckpointMeta, n: u64) -> Bytes {
    let c = &meta.config;
    let mut buf = BytesMut::with_capacity(128);
    buf.put_u64_le(meta.epoch);
    buf.put_u64_le(meta.ingested);
    buf.put_u64_le(meta.next_id);
    buf.put_u64_le(meta.applied_seq);
    buf.put_u64_le(meta.publishes);
    buf.put_u64_le(n);
    buf.put_u64_le(c.seed);
    buf.put_u64_le(c.k as u64);
    buf.put_u64_le(c.shards as u64);
    buf.put_slice(&[match c.family {
        IndexFamily::SimHash => 0u8,
        IndexFamily::MinHash => 1u8,
    }]);
    buf.put_u64_le(c.cache_epsilon);
    match c.auto_publish_every {
        None => buf.put_slice(&[0]),
        Some(b) => {
            buf.put_slice(&[1]);
            buf.put_u64_le(b);
        }
    }
    match c.estimator {
        None => buf.put_slice(&[0]),
        Some(e) => {
            buf.put_slice(&[1]);
            buf.put_u64_le(e.m_h);
            buf.put_u64_le(e.m_l);
            buf.put_u64_le(e.delta);
            match e.dampening {
                vsj_core::Dampening::SafeLowerBound => buf.put_slice(&[0]),
                vsj_core::Dampening::Constant(v) => {
                    buf.put_slice(&[1]);
                    buf.put_f64_le(v);
                }
                vsj_core::Dampening::NlOverDelta => buf.put_slice(&[2]),
            }
        }
    }
    buf.freeze()
}

fn corrupt(msg: impl Into<String>) -> PersistError {
    PersistError::Corrupt(msg.into())
}

pub(crate) fn decode_meta(mut data: Bytes) -> Result<(CheckpointMeta, u64), PersistError> {
    let need = |data: &mut Bytes, bytes: usize, what: &str| -> Result<(), PersistError> {
        if data.remaining() < bytes {
            Err(corrupt(format!("META truncated at {what}")))
        } else {
            Ok(())
        }
    };
    need(&mut data, 6 * 8, "counters")?;
    let epoch = data.get_u64_le();
    let ingested = data.get_u64_le();
    let next_id = data.get_u64_le();
    let applied_seq = data.get_u64_le();
    let publishes = data.get_u64_le();
    let n = data.get_u64_le();
    need(&mut data, 3 * 8 + 1, "config")?;
    let seed = data.get_u64_le();
    let k = data.get_u64_le() as usize;
    let shards = data.get_u64_le() as usize;
    let mut byte = [0u8; 1];
    data.copy_to_slice(&mut byte);
    let family = match byte[0] {
        0 => IndexFamily::SimHash,
        1 => IndexFamily::MinHash,
        b => return Err(corrupt(format!("unknown family tag {b}"))),
    };
    need(&mut data, 8 + 1, "cache/publish policy")?;
    let cache_epsilon = data.get_u64_le();
    data.copy_to_slice(&mut byte);
    let auto_publish_every = match byte[0] {
        0 => None,
        1 => {
            need(&mut data, 8, "auto-publish batch")?;
            Some(data.get_u64_le())
        }
        b => return Err(corrupt(format!("bad auto-publish flag {b}"))),
    };
    need(&mut data, 1, "estimator flag")?;
    data.copy_to_slice(&mut byte);
    let estimator = match byte[0] {
        0 => None,
        1 => {
            need(&mut data, 3 * 8 + 1, "estimator config")?;
            let m_h = data.get_u64_le();
            let m_l = data.get_u64_le();
            let delta = data.get_u64_le();
            data.copy_to_slice(&mut byte);
            let dampening = match byte[0] {
                0 => vsj_core::Dampening::SafeLowerBound,
                1 => {
                    need(&mut data, 8, "dampening constant")?;
                    vsj_core::Dampening::Constant(data.get_f64_le())
                }
                2 => vsj_core::Dampening::NlOverDelta,
                b => return Err(corrupt(format!("unknown dampening tag {b}"))),
            };
            Some(vsj_core::LshSsConfig {
                m_h,
                m_l,
                delta,
                dampening,
            })
        }
        b => return Err(corrupt(format!("bad estimator flag {b}"))),
    };
    if data.has_remaining() {
        return Err(corrupt(format!("{} trailing META bytes", data.remaining())));
    }
    // Re-validate what the builder validates: a corrupt-but-checksummed
    // file must fail loudly here, never panic inside engine assembly.
    if shards == 0 || k == 0 || auto_publish_every == Some(0) {
        return Err(corrupt("META carries an invalid engine configuration"));
    }
    // `parallel` is operational (like DurabilityOptions): never encoded
    // into META, so a recovered engine picks up this process's default —
    // the pool is proven answer- and byte-neutral, so this cannot change
    // what the engine serves.
    let config = ServiceConfig {
        shards,
        k,
        family,
        seed,
        cache_epsilon,
        auto_publish_every,
        estimator,
        parallel: crate::config::ParallelOptions::default(),
    };
    Ok((
        CheckpointMeta {
            epoch,
            ingested,
            next_id,
            applied_seq,
            publishes,
            config,
        },
        n,
    ))
}

fn encode_u64s(values: impl ExactSizeIterator<Item = u64>) -> Bytes {
    let mut buf = BytesMut::with_capacity(values.len() * 8);
    for v in values {
        buf.put_u64_le(v);
    }
    buf.freeze()
}

fn decode_u64s(mut data: Bytes, what: &str) -> Result<Vec<u64>, PersistError> {
    if !data.remaining().is_multiple_of(8) {
        return Err(corrupt(format!(
            "{what} section length not a multiple of 8"
        )));
    }
    let mut out = Vec::with_capacity(data.remaining() / 8);
    while data.has_remaining() {
        out.push(data.get_u64_le());
    }
    Ok(out)
}

/// The snapshot rows a checkpoint stores: `(global id, bucket key,
/// vector)`, ascending by id.
pub type SnapshotRows = Vec<(GlobalId, u64, Arc<SparseVector>)>;

/// Serializes a checkpoint in the **v3 mappable layout** (exposed for
/// tests and tooling; the private `write_checkpoint` is the durable
/// path). Works for both storage tiers: a heap snapshot encodes its
/// table and `Arc`-shared payloads; a mapped snapshot walks its dense
/// id space — tombstoned base rows are *dropped* and overlay rows are
/// interleaved in global-id order, so the file a compaction writes is
/// exactly the file a from-scratch build over the live rows would
/// write.
pub fn encode_checkpoint(meta: &CheckpointMeta, snapshot: &Snapshot) -> Bytes {
    encode_checkpoint_inner(meta, snapshot, None)
}

/// [`encode_checkpoint`] with the `VPAY` payload slab filled in
/// parallel on `pool`: per-row block lengths are computed first (a pool
/// map), a prefix sum pre-sizes the slab and fixes every row's offset,
/// and contiguous row chunks are serialized into disjoint `&mut` slices
/// concurrently. Offsets are a pure function of the rows, so the bytes
/// are **identical** to the serial encoding at any thread count (pinned
/// by `parallel_encode_is_byte_identical` below and the checkpoint legs
/// of `tests/parallel_determinism.rs`). A one-thread pool takes the
/// exact serial path.
pub fn encode_checkpoint_with(
    meta: &CheckpointMeta,
    snapshot: &Snapshot,
    pool: &WorkPool,
) -> Bytes {
    if pool.threads() <= 1 {
        encode_checkpoint_inner(meta, snapshot, None)
    } else {
        encode_checkpoint_inner(meta, snapshot, Some(pool))
    }
}

/// Serializes contiguous row chunks of a pre-sized payload slab in
/// parallel: chunk `r..e` owns the disjoint byte range
/// `voff[r]..voff[e]`, handed out by `split_at_mut`, and `encode_row`
/// fills each row's exact-length cell.
fn fill_payload_parallel(
    pool: &WorkPool,
    voff: &[u64],
    slab: &mut [u8],
    encode_row: impl Fn(usize, &mut [u8]) + Sync,
) {
    let n = voff.len() - 1;
    if n == 0 {
        return;
    }
    let chunk_rows = n.div_ceil((pool.threads() * 4).min(n));
    let encode_row = &encode_row;
    pool.scope(|scope| {
        let mut rest = slab;
        let mut row = 0usize;
        while row < n {
            let end = (row + chunk_rows).min(n);
            let bytes = (voff[end] - voff[row]) as usize;
            let (chunk, tail) = rest.split_at_mut(bytes);
            rest = tail;
            scope.spawn(move || {
                let mut out = chunk;
                for r in row..end {
                    let len = (voff[r + 1] - voff[r]) as usize;
                    let (cell, after) = out.split_at_mut(len);
                    encode_row(r, cell);
                    out = after;
                }
            });
            row = end;
        }
    });
}

fn encode_checkpoint_inner(
    meta: &CheckpointMeta,
    snapshot: &Snapshot,
    pool: Option<&WorkPool>,
) -> Bytes {
    let n = snapshot.len();
    // Row keys in snapshot-local id order, whichever tier holds them.
    let keys: Vec<u64> = match snapshot.heap_parts() {
        Some((_, table)) => table.to_parts(),
        None => {
            let view = snapshot
                .mapped_view()
                .expect("a snapshot is heap or mapped");
            (0..n as u32).map(|d| view.key_of(d)).collect()
        }
    };
    // Bucket runs: group rows by key (key-ascending, members in id
    // order) — exactly the grouping `LshTable::from_keys` performs, so
    // a mapped reader enumerates the same bucket sequence as a heap
    // rebuild.
    let mut buckets: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
    for (id, &key) in keys.iter().enumerate() {
        buckets.entry(key).or_default().push(id as u32);
    }
    let mut boff = Vec::with_capacity(buckets.len() + 1);
    boff.push(0u64);
    let mut bmem = BytesMut::with_capacity(n * 4);
    let mut covered = 0u64;
    for members in buckets.values() {
        covered += members.len() as u64;
        boff.push(covered);
        for &m in members {
            bmem.put_u32_le(m);
        }
    }
    // Payload slab + per-row offsets. Heap: serialize once, straight
    // from the shared `Arc` handles. Mapped: base rows are byte-copied
    // straight from the mapping's slab (no decode — the wire blocks are
    // position-independent) and overlay rows are re-encoded in place,
    // all in dense-id order.
    let (voff, vpay): (Vec<u64>, Bytes) = match (snapshot.heap_parts(), pool) {
        (Some((collection, _)), None) => {
            let mut buf = BytesMut::new();
            let mut voff = Vec::with_capacity(n + 1);
            voff.push(0);
            for v in collection.iter_arcs() {
                io::encode_vector_into(&mut buf, v.as_ref());
                voff.push(buf.len() as u64);
            }
            (voff, buf.freeze())
        }
        (Some((collection, _)), Some(pool)) => {
            let vectors: Vec<&Arc<SparseVector>> = collection.iter_arcs().collect();
            let lens = pool
                .parallel_map_indexed(&vectors, |_, v| io::encoded_vector_len(v.as_ref()) as u64);
            let mut voff = Vec::with_capacity(n + 1);
            voff.push(0u64);
            let mut total = 0u64;
            for len in lens {
                total += len;
                voff.push(total);
            }
            let mut slab = vec![0u8; total as usize];
            fill_payload_parallel(pool, &voff, &mut slab, |r, out| {
                io::encode_vector_into_slice(out, vectors[r].as_ref());
            });
            (voff, Bytes::from(slab))
        }
        (None, maybe_pool) => {
            let view = snapshot
                .mapped_view()
                .expect("a snapshot is heap or mapped");
            let base = view.base();
            let slab = base.payload_slab();
            match maybe_pool {
                None => {
                    let mut buf = BytesMut::with_capacity(slab.len());
                    let mut voff = Vec::with_capacity(n + 1);
                    voff.push(0);
                    for d in 0..n {
                        match view.row_of_dense(d as u32) {
                            MappedRow::Base(row) => {
                                let lo = base.payload_offset(row) as usize;
                                let hi = base.payload_offset(row + 1) as usize;
                                buf.put_slice(&slab[lo..hi]);
                            }
                            MappedRow::Tail(t) => {
                                io::encode_vector_into(&mut buf, view.tail_vectors()[t].as_ref());
                            }
                        }
                        voff.push(buf.len() as u64);
                    }
                    (voff, buf.freeze())
                }
                Some(pool) => {
                    // Base rows contribute their slab block verbatim
                    // (length from the offset table, no decode); tail
                    // rows their re-encoded length — both pure reads,
                    // so length and fill passes parallelize freely.
                    let rows: Vec<u32> = (0..n as u32).collect();
                    let lens =
                        pool.parallel_map_indexed(&rows, |_, &d| match view.row_of_dense(d) {
                            MappedRow::Base(row) => {
                                base.payload_offset(row + 1) - base.payload_offset(row)
                            }
                            MappedRow::Tail(t) => {
                                io::encoded_vector_len(view.tail_vectors()[t].as_ref()) as u64
                            }
                        });
                    let mut voff = Vec::with_capacity(n + 1);
                    voff.push(0u64);
                    let mut total = 0u64;
                    for len in lens {
                        total += len;
                        voff.push(total);
                    }
                    let mut out_slab = vec![0u8; total as usize];
                    fill_payload_parallel(pool, &voff, &mut out_slab, |r, out| {
                        match view.row_of_dense(r as u32) {
                            MappedRow::Base(row) => {
                                let lo = base.payload_offset(row) as usize;
                                let hi = base.payload_offset(row + 1) as usize;
                                out.copy_from_slice(&slab[lo..hi]);
                            }
                            MappedRow::Tail(t) => {
                                io::encode_vector_into_slice(out, view.tail_vectors()[t].as_ref());
                            }
                        }
                    });
                    (voff, Bytes::from(out_slab))
                }
            }
        }
    };

    let mut w = ContainerWriter::new();
    w.section(SECTION_META, encode_meta(meta, n as u64));
    w.section(
        SECTION_GIDS,
        encode_u64s(snapshot.global_ids().iter().copied()),
    );
    w.section(SECTION_KEYS, encode_u64s(keys.into_iter()));
    w.section(SECTION_BKTK, encode_u64s(buckets.keys().copied()));
    w.section(SECTION_BOFF, encode_u64s(boff.into_iter()));
    w.section(SECTION_BMEM, bmem.freeze());
    w.section(SECTION_VOFF, encode_u64s(voff.into_iter()));
    w.section(SECTION_VPAY, vpay);
    w.finish_v3()
}

/// Serializes a **heap** checkpoint in the legacy v2 inline framing —
/// kept for compatibility tooling and the cross-version equivalence
/// tests ([`decode_checkpoint`] reads both).
///
/// # Panics
/// Panics on a mapped snapshot (the v2 layout predates the mapped
/// tier).
pub fn encode_checkpoint_v2(meta: &CheckpointMeta, snapshot: &Snapshot) -> Bytes {
    let mut w = ContainerWriter::new();
    w.section(SECTION_META, encode_meta(meta, snapshot.len() as u64));
    w.section(
        SECTION_GIDS,
        encode_u64s(snapshot.global_ids().iter().copied()),
    );
    let keys = snapshot.table().to_parts();
    w.section(SECTION_KEYS, encode_u64s(keys.into_iter()));
    // Payloads are serialized once, straight from the snapshot's shared
    // `Arc` handles — the on-disk bytes are identical to the owned
    // encoding, with no intermediate owned collection materialized.
    let payloads: Vec<&SparseVector> = snapshot.collection().iter_arcs().map(Arc::as_ref).collect();
    w.section(
        SECTION_VECS,
        io::encode_vector_list(payloads.iter().copied()),
    );
    w.finish()
}

/// Atomically replaces the checkpoint file in `dir`.
pub(crate) fn write_checkpoint(
    dir: &Path,
    meta: &CheckpointMeta,
    snapshot: &Snapshot,
    pool: &WorkPool,
) -> Result<(), PersistError> {
    use std::io::Write;
    let bytes = encode_checkpoint_with(meta, snapshot, pool);
    let tmp = dir.join(CHECKPOINT_TMP);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes.as_slice())?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, dir.join(CHECKPOINT_FILE))?;
    Ok(())
}

/// Decodes the v3 payload slab into owned vectors: `voff` must
/// partition the slab exactly, and every block must decode to a valid
/// vector with no trailing bytes.
fn decode_payload_slab(voff: &[u64], vpay: Bytes) -> Result<Vec<SparseVector>, PersistError> {
    let slab = vpay.as_slice();
    if voff.first() != Some(&0) || voff.last() != Some(&(slab.len() as u64)) {
        return Err(corrupt("VOFF does not span exactly the payload slab"));
    }
    let mut out = Vec::with_capacity(voff.len().saturating_sub(1));
    for w in voff.windows(2) {
        if w[0] > w[1] || w[1] > slab.len() as u64 {
            return Err(corrupt("VOFF offsets are not monotone"));
        }
        let mut block = Bytes::copy_from_slice(&slab[w[0] as usize..w[1] as usize]);
        let v = io::decode_vector(&mut block)?;
        if block.has_remaining() {
            return Err(corrupt("trailing bytes in a VPAY block"));
        }
        out.push(v);
    }
    Ok(out)
}

/// Decodes checkpoint bytes into metadata plus snapshot rows
/// `(global id, bucket key, vector)`, verifying every section checksum
/// and cross-section consistency. Negotiates the payload layout: v2
/// containers carry a `VECS` list, v3 containers the `VOFF`/`VPAY`
/// slab. The heap rebuild derives its buckets from `KEYS`, but a v3
/// container must still carry the full mappable section set — a
/// missing (or tag-corrupted) bucket section is damage, not an
/// optional extra, even when this path would not read it.
pub fn decode_checkpoint(bytes: Bytes) -> Result<(CheckpointMeta, SnapshotRows), PersistError> {
    let container = ContainerReader::parse(bytes)?;
    let (meta, n) = decode_meta(container.require(SECTION_META)?)?;
    let gids = decode_u64s(container.require(SECTION_GIDS)?, "GIDS")?;
    let keys = decode_u64s(container.require(SECTION_KEYS)?, "KEYS")?;
    let vectors: Vec<SparseVector> = match container.section(SECTION_VECS) {
        Some(vecs) => io::decode_vectors(vecs)?.into_vectors(),
        None => {
            for tag in [SECTION_BKTK, SECTION_BOFF, SECTION_BMEM] {
                container.require(tag)?;
            }
            let voff = decode_u64s(container.require(SECTION_VOFF)?, "VOFF")?;
            decode_payload_slab(&voff, container.require(SECTION_VPAY)?)?
        }
    };
    if gids.len() as u64 != n || keys.len() as u64 != n || vectors.len() as u64 != n {
        return Err(corrupt(format!(
            "row count mismatch: META says {n}, sections carry {}/{}/{}",
            gids.len(),
            keys.len(),
            vectors.len()
        )));
    }
    if gids.windows(2).any(|w| w[0] >= w[1]) {
        return Err(corrupt("GIDS are not strictly ascending"));
    }
    if gids.last().is_some_and(|&last| last >= meta.next_id) {
        return Err(corrupt("a snapshot row carries an unallocated global id"));
    }
    let rows = gids
        .into_iter()
        .zip(keys)
        .zip(vectors)
        .map(|((gid, key), v)| (gid, key, Arc::new(v)))
        .collect();
    Ok((meta, rows))
}

/// Reads and verifies the checkpoint file in `dir`.
pub fn read_checkpoint(dir: &Path) -> Result<(CheckpointMeta, SnapshotRows), PersistError> {
    decode_checkpoint(Bytes::from(std::fs::read(dir.join(CHECKPOINT_FILE))?))
}

// --- checkpoint generations ---------------------------------------------

/// Path of checkpoint generation `generation` inside `dir`: `0` is the
/// current `checkpoint.vsjc`, `g ≥ 1` is `checkpoint.vsjc.g` (the g-th
/// most recent previous checkpoint).
pub fn generation_path(dir: &Path, generation: u64) -> PathBuf {
    if generation == 0 {
        dir.join(CHECKPOINT_FILE)
    } else {
        dir.join(format!("{CHECKPOINT_FILE}.{generation}"))
    }
}

/// Reads and verifies checkpoint generation `generation` in `dir` (see
/// [`generation_path`]).
pub fn read_checkpoint_generation(
    dir: &Path,
    generation: u64,
) -> Result<(CheckpointMeta, SnapshotRows), PersistError> {
    decode_checkpoint(Bytes::from(std::fs::read(generation_path(
        dir, generation,
    ))?))
}

/// Reads **only the `META` section** of a checkpoint container —
/// header and section frames are walked with seeks, the sections other
/// than `META` are never read into memory, and only `META`'s checksum
/// is verified. This is what keeps WAL-horizon bookkeeping O(metadata):
/// a checkpoint needs the cut sequence of every *retained* generation
/// to know which WAL segments may be dropped, and decoding whole
/// multi-megabyte containers for a single `u64` would put an O(corpus)
/// read on the checkpoint path.
pub fn peek_checkpoint_meta(path: &Path) -> Result<CheckpointMeta, PersistError> {
    use std::io::{Read, Seek, SeekFrom};
    let mut file = std::fs::File::open(path)?;
    // Truncation anywhere in the walk — including a zero-length file —
    // must surface as a *structured* corruption error, never a bare
    // EOF panic or a misleading downstream failure.
    fn read_frame(
        file: &mut std::fs::File,
        buf: &mut [u8],
        what: &str,
    ) -> Result<(), PersistError> {
        file.read_exact(buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                corrupt(format!("checkpoint truncated reading {what}"))
            } else {
                PersistError::Io(e)
            }
        })
    }
    let mut header = [0u8; 12];
    read_frame(&mut file, &mut header, "the container header")?;
    if &header[0..4] != b"VSJC" {
        return Err(corrupt("not a VSJC container"));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    let count = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    let file_len = file.metadata()?.len();
    // v2 frames carry the plain byte checksum; v3 directories carry the
    // chunked section digest.
    let read_meta_payload = |file: &mut std::fs::File,
                             len: u64,
                             checksum: u64,
                             v3: bool|
     -> Result<CheckpointMeta, PersistError> {
        let mut payload = vec![0u8; len as usize];
        read_frame(file, &mut payload, "the META payload")?;
        let computed = if v3 {
            io::checksum64_v3(&payload)
        } else {
            io::checksum64(&payload)
        };
        if computed != checksum {
            return Err(PersistError::Container(IoError::BadChecksum {
                section: SECTION_META,
            }));
        }
        decode_meta(Bytes::from(payload)).map(|(meta, _)| meta)
    };
    match version {
        2 => {
            let mut pos = 12u64;
            for _ in 0..count {
                let mut section = [0u8; 20];
                read_frame(&mut file, &mut section, "a section frame")?;
                pos += 20;
                let tag: [u8; 4] = section[0..4].try_into().expect("4 bytes");
                let len = u64::from_le_bytes(section[4..12].try_into().expect("8 bytes"));
                let checksum = u64::from_le_bytes(section[12..20].try_into().expect("8 bytes"));
                // A corrupt length field must fail loudly, not drive a
                // huge allocation or a wrapping seek: bound it by what
                // the file can actually hold past this frame.
                if len > file_len.saturating_sub(pos) {
                    return Err(corrupt(format!(
                        "section length {len} overruns the container ({file_len} bytes)"
                    )));
                }
                pos += len;
                if tag == SECTION_META {
                    return read_meta_payload(&mut file, len, checksum, false);
                }
                file.seek(SeekFrom::Current(len as i64))?;
            }
            Err(corrupt("container has no META section"))
        }
        3 => {
            // v3: 16-byte header, then 32-byte directory entries with
            // absolute payload offsets — META is one seek away.
            let mut pad = [0u8; 4];
            read_frame(&mut file, &mut pad, "the v3 header")?;
            for _ in 0..count {
                let mut entry = [0u8; 32];
                read_frame(&mut file, &mut entry, "a directory entry")?;
                let tag: [u8; 4] = entry[0..4].try_into().expect("4 bytes");
                if tag != SECTION_META {
                    continue;
                }
                let offset = u64::from_le_bytes(entry[8..16].try_into().expect("8 bytes"));
                let len = u64::from_le_bytes(entry[16..24].try_into().expect("8 bytes"));
                let checksum = u64::from_le_bytes(entry[24..32].try_into().expect("8 bytes"));
                if offset.checked_add(len).is_none_or(|end| end > file_len) {
                    return Err(corrupt(format!(
                        "META payload at {offset}+{len} overruns the container ({file_len} bytes)"
                    )));
                }
                file.seek(SeekFrom::Start(offset))?;
                return read_meta_payload(&mut file, len, checksum, true);
            }
            Err(corrupt("container has no META section"))
        }
        v => Err(corrupt(format!("unsupported container version {v}"))),
    }
}

/// How many checkpoint-generation file names were found malformed or
/// orphaned by [`list_generations`] over the process lifetime — the
/// loud counterpart of what used to be a silent skip. Operators
/// watching this counter learn that a storage directory holds files
/// rotation will never reclaim.
static GENERATION_WARNINGS: AtomicU64 = AtomicU64::new(0);

/// Process-lifetime count of malformed or orphaned
/// `checkpoint.vsjc.g*` names seen by [`list_generations`].
pub fn generation_name_warnings() -> u64 {
    GENERATION_WARNINGS.load(Ordering::Relaxed)
}

/// The prior checkpoint generations present in `dir`, ascending (`1` =
/// most recent previous). The current checkpoint (generation 0) is not
/// listed; a fresh directory returns an empty vector.
///
/// Rotation keeps `.1..` contiguous, so only the contiguous prefix is
/// usable — but unlike the historical probe-until-gap scan, this walk
/// reads the whole directory and makes every skipped file **loud**:
/// unparsable `checkpoint.vsjc.*` names and orphaned generations past
/// a gap are warned about and counted in
/// [`generation_name_warnings`] instead of silently ignored.
pub fn list_generations(dir: &Path) -> Vec<u64> {
    let prefix = format!("{CHECKPOINT_FILE}.");
    let mut found: Vec<u64> = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(suffix) = name.strip_prefix(prefix.as_str()) else {
            continue;
        };
        // The writer's transient temp file is expected, not malformed
        // (stale ones are reclaimed by `clean_stale_tmp` at startup).
        if suffix == "tmp" {
            continue;
        }
        // Canonical generation names only: `.g` with g ≥ 1 and no
        // leading zeros or signs (`parse` would accept "+3"/"007").
        match suffix.parse::<u64>() {
            Ok(g) if g >= 1 && g.to_string() == suffix => found.push(g),
            _ => {
                GENERATION_WARNINGS.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "vsj-service: malformed checkpoint generation name {name:?} in {} \
                     (rotation will never reclaim it)",
                    dir.display()
                );
            }
        }
    }
    found.sort_unstable();
    found.dedup();
    let mut contiguous = Vec::with_capacity(found.len());
    for g in found {
        if g == contiguous.len() as u64 + 1 {
            contiguous.push(g);
        } else {
            GENERATION_WARNINGS.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "vsj-service: orphaned checkpoint generation {g} in {} \
                 (gap in the rotation chain; not recoverable from)",
                dir.display()
            );
        }
    }
    contiguous
}

/// Removes a stale checkpoint temp file left behind by a crash between
/// the temp write and the atomic rename. Returns whether one was
/// found. Called on every engine startup (`durable_with` / `recover`),
/// so a crashed rotation can never leak the temp file forever.
pub(crate) fn clean_stale_tmp(dir: &Path) -> Result<bool, PersistError> {
    let tmp = dir.join(CHECKPOINT_TMP);
    match std::fs::remove_file(&tmp) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
        Err(e) => Err(PersistError::Io(e)),
    }
}

/// Rotates checkpoint generations ahead of a new checkpoint write:
/// prunes generations at or past `retain`, shifts `.g → .(g+1)` for the
/// survivors, and *hard-links* the current checkpoint to `.1` so the
/// file `write_checkpoint`'s atomic rename replaces lives on as the
/// newest prior generation. Crash-safe: the current checkpoint is never
/// unlinked by rotation, so every window leaves a loadable generation 0.
pub(crate) fn rotate_generations(dir: &Path, retain: usize) -> Result<(), PersistError> {
    // Prune every generation the shift would push past the window
    // (`.g` becomes `.g+1`, so `.retain-1` and beyond must go). Also
    // cleans up after a `retain` lowered between lives; the scan runs a
    // little past the window so stale stragglers are reclaimed too.
    let horizon = (retain as u64).saturating_sub(1).max(1);
    let mut g = horizon;
    while generation_path(dir, g).exists() || g < horizon + 8 {
        if generation_path(dir, g).exists() {
            std::fs::remove_file(generation_path(dir, g))?;
        }
        g += 1;
    }
    if retain <= 1 {
        return Ok(());
    }
    for g in (1..retain as u64 - 1).rev() {
        let from = generation_path(dir, g);
        if from.exists() {
            std::fs::rename(&from, generation_path(dir, g + 1))?;
        }
    }
    let current = dir.join(CHECKPOINT_FILE);
    if current.exists() {
        // Hard link, not rename: generation 0 must stay present through
        // every crash window. Fall back to a copy on filesystems
        // without hard links.
        let one = generation_path(dir, 1);
        if std::fs::hard_link(&current, &one).is_err() {
            std::fs::copy(&current, &one)?;
        }
    }
    Ok(())
}

/// A background thread that checkpoints a durable engine whenever the
/// WAL backlog reaches a threshold — the component that keeps the WAL
/// bounded ("truncate after each durable epoch") without putting
/// checkpoint latency on the write path.
///
/// Stopping (explicitly via [`Checkpointer::stop`] or by dropping)
/// joins the thread; it does **not** take a final checkpoint — callers
/// decide whether the tail should ride the WAL or be made durable.
#[derive(Debug)]
pub struct Checkpointer {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<u64>>,
}

impl Checkpointer {
    /// Spawns the checkpointer: every `poll`, if at least
    /// `min_pending_records` WAL records accumulated since the last
    /// checkpoint, takes one.
    ///
    /// # Panics
    /// The background thread panics if a checkpoint fails (the panic
    /// resurfaces from [`Checkpointer::stop`]). The engine itself stays
    /// up but does **not** keep silently accepting writes: a failed
    /// checkpoint poisons the WAL writer, so every subsequent durable
    /// ingest fails loudly instead of being acknowledged and lost.
    pub fn spawn(engine: Arc<EstimationEngine>, min_pending_records: u64, poll: Duration) -> Self {
        Self::spawn_inner(engine, min_pending_records, poll, None)
    }

    /// [`spawn`](Self::spawn), additionally offering a `Trace` labeled
    /// `"checkpoint"` (stage `cut`) to `traces` after every checkpoint
    /// taken — the same ring a serving layer exposes under
    /// `/trace/slow`, so background cuts show up next to slow requests.
    pub fn spawn_traced(
        engine: Arc<EstimationEngine>,
        min_pending_records: u64,
        poll: Duration,
        traces: Arc<TraceRing>,
    ) -> Self {
        Self::spawn_inner(engine, min_pending_records, poll, Some(traces))
    }

    fn spawn_inner(
        engine: Arc<EstimationEngine>,
        min_pending_records: u64,
        poll: Duration,
        traces: Option<Arc<TraceRing>>,
    ) -> Self {
        assert!(
            engine.is_durable(),
            "Checkpointer requires a durable engine"
        );
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::spawn(move || {
            let mut taken = 0u64;
            while !stop_flag.load(Ordering::Relaxed) {
                if engine.wal_pending() >= min_pending_records.max(1) {
                    let started = Instant::now();
                    engine
                        .checkpoint()
                        .expect("background checkpoint failed; refusing to continue unlogged");
                    taken += 1;
                    if let Some(ring) = &traces {
                        offer_op_trace(ring, "checkpoint", "cut", started.elapsed());
                    }
                }
                std::thread::sleep(poll);
            }
            taken
        });
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread and joins it, returning how many checkpoints
    /// it took.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("checkpointer joined twice")
            .join()
            .expect("checkpointer thread panicked")
    }
}

impl Drop for Checkpointer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A background thread that *compacts* a durable mapped engine whenever
/// its trigger policy says the overlay is worth folding — the component
/// that keeps a long-lived mapped engine's heap overlay and tombstone
/// set bounded without putting compaction latency on the write path.
///
/// Each poll asks [`EstimationEngine::compaction_due`] (overlay-bytes /
/// tombstone-ratio knobs on
/// [`DurabilityOptions`](crate::DurabilityOptions)) and, when due, runs
/// [`EstimationEngine::compact`]: publish barrier, fold into a fresh v3
/// checkpoint, atomic re-map. Estimates are bit-identical across the
/// swap, so the thread is safe to run under live reads and writes.
///
/// Stopping (explicitly via [`Compactor::stop`] or by dropping) joins
/// the thread; it does **not** take a final compaction.
#[derive(Debug)]
pub struct Compactor {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<u64>>,
}

impl Compactor {
    /// Spawns the compactor, polling the engine's trigger policy every
    /// `poll`.
    ///
    /// # Panics
    /// Panics if the engine is not durable. The background thread
    /// panics if a compaction fails (the panic resurfaces from
    /// [`Compactor::stop`]); as with a failed checkpoint, the engine
    /// does not keep silently accepting writes — a failed fold poisons
    /// the WAL writer, so subsequent durable ingests fail loudly.
    pub fn spawn(engine: Arc<EstimationEngine>, poll: Duration) -> Self {
        Self::spawn_inner(engine, poll, None)
    }

    /// [`spawn`](Self::spawn), additionally offering a `Trace` labeled
    /// `"compaction"` (stage `fold`) to `traces` after every compaction
    /// taken — the same ring a serving layer exposes under
    /// `/trace/slow`.
    pub fn spawn_traced(
        engine: Arc<EstimationEngine>,
        poll: Duration,
        traces: Arc<TraceRing>,
    ) -> Self {
        Self::spawn_inner(engine, poll, Some(traces))
    }

    fn spawn_inner(
        engine: Arc<EstimationEngine>,
        poll: Duration,
        traces: Option<Arc<TraceRing>>,
    ) -> Self {
        assert!(engine.is_durable(), "Compactor requires a durable engine");
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::spawn(move || {
            let mut taken = 0u64;
            while !stop_flag.load(Ordering::Relaxed) {
                if engine.compaction_due() {
                    let started = Instant::now();
                    engine
                        .compact()
                        .expect("background compaction failed; refusing to continue unlogged");
                    taken += 1;
                    if let Some(ring) = &traces {
                        offer_op_trace(ring, "compaction", "fold", started.elapsed());
                    }
                }
                std::thread::sleep(poll);
            }
            taken
        });
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread and joins it, returning how many compactions
    /// it took.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("compactor joined twice")
            .join()
            .expect("compactor thread panicked")
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Offers a one-stage background-operation trace to a slow-trace ring
/// (shared by the traced checkpointer/compactor spawns; the
/// [`Auditor`](crate::Auditor) builds its two-stage trace inline).
pub(crate) fn offer_op_trace(
    ring: &TraceRing,
    label: &'static str,
    stage: &'static str,
    took: Duration,
) {
    let micros = u64::try_from(took.as_micros()).unwrap_or(u64::MAX);
    let mut trace = Trace::new(label);
    trace.stage(stage, micros);
    trace.total_us = micros;
    ring.offer(trace);
}
