//! `vsj-service` — a concurrent **online** estimation engine for the
//! VSJ problem.
//!
//! The paper's motivation (§1) is a query optimizer that needs a join
//! size estimate *in milliseconds, during planning* — but the offline
//! crates operate on a frozen [`LshTable`](vsj_lsh::LshTable) built in
//! one shot. This crate closes the gap with a long-lived service over
//! **live** data:
//!
//! ```text
//!          writers (insert / remove / upsert)
//!                │ shard by hash(id)
//!     ┌──────────┼──────────┐
//!  ┌──▼───┐  ┌───▼──┐   ┌───▼──┐       mutable write side:
//!  │shard0│  │shard1│ … │shardS│       per-shard LshTable, bucket
//!  └──┬───┘  └───┬──┘   └───┬──┘       counts maintained incrementally
//!     └──────────┼──────────┘
//!                │ publish(): O(changed) — previous snapshot + per-shard
//!                │ deltas (payloads & bucket runs Arc-shared; full
//!                │ pointer-merge fallback for removal epochs)
//!          ┌─────▼──────┐
//!          │ Snapshot e │  immutable, Arc-shared, epoch-tagged
//!          └─────┬──────┘
//!     ┌──────────┼──────────┐
//!  readers: estimate(τ) → LSH-SS over the snapshot (IndexView),
//!  answers cached per (τ, config) until drift > ε ingests
//! ```
//!
//! Key properties:
//!
//! * **Epoch consistency** — every estimate is computed against (and
//!   labeled with) a single published snapshot; readers never observe a
//!   half-applied write.
//! * **Offline equivalence** — a snapshot is bit-identical (buckets,
//!   `N_H`, sampling behavior) to an offline [`LshTable::build`] over
//!   the same live vectors in global-id order, so service answers equal
//!   offline [`LshSs`](vsj_core::LshSs) runs with the same RNG
//!   ([`EstimationEngine::estimate_rng`]).
//! * **Determinism** — everything derives from the master seed; the
//!   same ingest history gives the same answers, across thread counts.
//! * **Durability** (opt-in) — [`EstimationEngine::durable`] attaches a
//!   storage directory: epoch checkpoints (checksummed
//!   [`datasets::io`](vsj_datasets::io) v2 containers, see [`persist`])
//!   plus a **per-shard segmented write-ahead log** of every ingest
//!   between checkpoints ([`wal`]): durable writers on different
//!   shards append (and group-commit fsync, per [`FsyncPolicy`]) in
//!   parallel, stitched by a global sequence number.
//!   [`EstimationEngine::recover`] rebuilds the engine — shards from
//!   stored bucket keys, no re-hashing — and merge-replays the chains
//!   in sequence order, yielding answers bit-identical to the engine
//!   that died. A background [`Checkpointer`] keeps the WAL bounded;
//!   checkpoint truncation drops whole sealed segments (O(1) — no
//!   surviving byte rewritten).
//!
//! [`LshTable::build`]: vsj_lsh::LshTable::build
//!
//! # Example
//!
//! ```
//! use vsj_service::{EstimationEngine, ServiceConfig};
//! use vsj_vector::SparseVector;
//!
//! let engine = EstimationEngine::new(
//!     ServiceConfig::builder().shards(4).k(16).seed(7).build(),
//! );
//! for i in 0..200u32 {
//!     engine.insert(SparseVector::binary_from_members(vec![i % 10, 100 + i % 7]));
//! }
//! engine.publish();
//! let answer = engine.estimate(0.8);
//! assert_eq!(answer.epoch, 1);
//! assert!(answer.estimate.value >= 0.0);
//! // Same epoch, same τ: served from cache, no new sampling.
//! assert!(engine.estimate(0.8).cached);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
mod cache;
mod config;
mod engine;
mod mapped;
pub mod persist;
mod shard;
mod snapshot;
pub mod wal;

pub use audit::{AuditOptions, AuditRecord, Auditor, QualityReport, WORST_CAPACITY};
pub use config::{
    DurabilityOptions, FsyncPolicy, IndexFamily, ParallelOptions, ServiceConfig,
    ServiceConfigBuilder, StorageTier,
};
pub use engine::{EngineStats, EstimationEngine, ServiceEstimate};
pub use persist::{Checkpointer, Compactor, PersistError};
pub use shard::ShardStats;
pub use snapshot::Snapshot;
pub use vsj_obs::{ObsOptions, Registry};

/// Stable identifier of a vector across the engine's lifetime (survives
/// snapshot compaction; never reused after removal).
pub type GlobalId = u64;

#[cfg(test)]
mod tests {
    use super::*;
    use vsj_core::{IndexView, LshSs, LshSsConfig};
    use vsj_datasets::DblpLike;
    use vsj_lsh::{LshIndex, LshParams, LshTable};
    use vsj_vector::{Cosine, Jaccard, SparseVector, VectorCollection};

    fn members(start: u32, len: u32) -> SparseVector {
        SparseVector::binary_from_members((start..start + len).collect())
    }

    fn minhash_engine(shards: usize) -> EstimationEngine {
        EstimationEngine::new(
            ServiceConfig::builder()
                .shards(shards)
                .k(8)
                .seed(42)
                .family(IndexFamily::MinHash)
                .build(),
        )
    }

    #[test]
    fn empty_engine_answers_zero() {
        let engine = minhash_engine(4);
        let a = engine.estimate(0.5);
        assert_eq!(a.epoch, 0);
        assert_eq!(a.n, 0);
        assert_eq!(a.estimate.value, 0.0);
    }

    #[test]
    fn writes_invisible_until_publish() {
        let engine = minhash_engine(4);
        engine.insert(members(0, 5));
        engine.insert(members(0, 5));
        assert_eq!(engine.snapshot().len(), 0);
        let epoch = engine.publish();
        assert_eq!(epoch, 1);
        assert_eq!(engine.snapshot().len(), 2);
        assert_eq!(engine.snapshot().table().nh(), 1);
    }

    #[test]
    fn snapshot_matches_offline_build_and_estimate_exactly() {
        // The acceptance property: the service answer equals an offline
        // LshSs run over the same data with the same seed/epoch RNG.
        let engine = minhash_engine(8);
        let mut vectors = Vec::new();
        for i in 0..300u32 {
            let v = members(i % 40, 4 + i % 6);
            vectors.push(v.clone());
            engine.insert(v);
        }
        let epoch = engine.publish();
        let snapshot = engine.snapshot();

        // Global ids are assigned 0..n in insert order, so the offline
        // collection in the same order matches the snapshot layout.
        assert_eq!(snapshot.global_ids(), &(0..300).collect::<Vec<u64>>()[..]);
        let coll = VectorCollection::from_vectors(vectors);
        let offline = LshIndex::build_with_family(
            &coll,
            vsj_lsh::MinHashFamily::new(),
            LshParams::new(8, 1).with_seed(42).with_threads(1),
        );
        let table: &LshTable = offline.table(0);
        assert_eq!(snapshot.table().nh(), table.nh());
        assert_eq!(snapshot.table().num_buckets(), table.num_buckets());

        for tau in [0.3, 0.7, 0.9] {
            let served = engine.estimate(tau);
            assert_eq!(served.epoch, epoch);
            let est = LshSs {
                config: engine.estimator_config(coll.len()),
            };
            let mut rng = engine.estimate_rng(epoch, tau);
            let offline_estimate = est.estimate(&coll, table, &Jaccard, tau, &mut rng);
            assert_eq!(
                served.estimate, offline_estimate,
                "service and offline disagree at τ={tau}"
            );
        }
    }

    #[test]
    fn cache_serves_repeats_without_sampling() {
        let engine = minhash_engine(2);
        for i in 0..100u32 {
            engine.insert(members(i % 20, 5));
        }
        engine.publish();
        let first = engine.estimate(0.7);
        assert!(!first.cached);
        let passes_after_first = engine.stats().sampling_passes;
        for _ in 0..10 {
            let again = engine.estimate(0.7);
            assert!(again.cached);
            assert_eq!(again.estimate, first.estimate);
            assert_eq!(again.epoch, first.epoch);
        }
        assert_eq!(
            engine.stats().sampling_passes,
            passes_after_first,
            "cache hits must not sample"
        );
        assert_eq!(engine.stats().cache_hits, 10);
    }

    #[test]
    fn cache_invalidates_after_drift_exceeds_epsilon() {
        let engine = EstimationEngine::new(
            ServiceConfig::builder()
                .shards(2)
                .k(8)
                .seed(3)
                .family(IndexFamily::MinHash)
                .cache_epsilon(5)
                .build(),
        );
        for i in 0..50u32 {
            engine.insert(members(i % 10, 4));
        }
        engine.publish();
        let first = engine.estimate(0.6);
        assert!(!first.cached);

        // Drift of 3 ≤ ε = 5: still served from cache after republish.
        for i in 0..3u32 {
            engine.insert(members(i, 4));
        }
        engine.publish();
        assert!(engine.estimate(0.6).cached, "drift 3 within ε=5");

        // Total drift 8 > ε: recomputed against the new epoch.
        for i in 0..5u32 {
            engine.insert(members(i, 4));
        }
        engine.publish();
        let fresh = engine.estimate(0.6);
        assert!(!fresh.cached, "drift 8 exceeds ε=5");
        assert_eq!(fresh.epoch, engine.current_epoch());
    }

    #[test]
    fn removals_take_effect_at_publish() {
        let engine = minhash_engine(4);
        let ids = engine.insert_batch((0..10u32).map(|_| members(0, 5)));
        engine.publish();
        assert_eq!(engine.snapshot().table().nh(), 45); // C(10,2)
        for id in &ids[..4] {
            assert!(engine.remove(*id));
        }
        assert!(!engine.remove(ids[0]), "double remove is a no-op");
        assert_eq!(engine.snapshot().table().nh(), 45, "not yet published");
        engine.publish();
        assert_eq!(engine.snapshot().len(), 6);
        assert_eq!(engine.snapshot().table().nh(), 15); // C(6,2)
    }

    #[test]
    fn upsert_replaces_in_place() {
        let engine = minhash_engine(4);
        let id = engine.insert(members(0, 5));
        engine.publish();
        assert!(engine.contains(id));
        assert!(engine.upsert(id, members(100, 5)), "existing id replaced");
        assert!(!engine.upsert(999, members(50, 5)), "fresh id inserted");
        engine.publish();
        let snapshot = engine.snapshot();
        assert_eq!(snapshot.len(), 2);
        assert_eq!(snapshot.global_ids(), &[id, 999]);
        // A subsequent insert must not collide with the reserved id.
        let next = engine.insert(members(1, 3));
        assert!(next > 999);
    }

    #[test]
    fn auto_publish_fires_on_batch_boundaries() {
        let engine = EstimationEngine::new(
            ServiceConfig::builder()
                .shards(2)
                .k(4)
                .family(IndexFamily::MinHash)
                .auto_publish_every(10)
                .build(),
        );
        for i in 0..25u32 {
            engine.insert(members(i, 3));
        }
        let stats = engine.stats();
        assert_eq!(stats.publishes, 2, "25 ingests at batch 10 → 2 publishes");
        assert_eq!(engine.snapshot().len(), 20);
        assert_eq!(engine.current_epoch(), 2);
    }

    #[test]
    fn batch_estimates_share_one_pass_and_cache() {
        let engine = minhash_engine(4);
        for i in 0..200u32 {
            engine.insert(members(i % 30, 5));
        }
        engine.publish();
        let taus = [0.3, 0.5, 0.7, 0.9];
        let first = engine.estimate_batch(&taus);
        assert_eq!(first.len(), 4);
        assert!(first.iter().all(|e| !e.cached));
        assert_eq!(engine.stats().sampling_passes, 1, "one pass for the grid");
        // Estimates are monotone non-increasing in τ for a shared pass.
        for w in first.windows(2) {
            assert!(
                w[1].estimate.value <= w[0].estimate.value + 1e-9,
                "curve must not rise: {:?}",
                first.iter().map(|e| e.estimate.value).collect::<Vec<_>>()
            );
        }
        let again = engine.estimate_batch(&taus);
        assert!(again.iter().all(|e| e.cached));
        assert_eq!(engine.stats().sampling_passes, 1);
        for (a, b) in first.iter().zip(&again) {
            assert_eq!(a.estimate, b.estimate);
        }
    }

    #[test]
    fn sharding_is_invisible_to_results() {
        // The same ingest history must produce identical snapshots and
        // answers regardless of shard count.
        let build = |shards| {
            let engine = minhash_engine(shards);
            for i in 0..150u32 {
                engine.insert(members(i % 25, 4 + i % 3));
            }
            engine.remove(7);
            engine.remove(93);
            engine.publish();
            engine
        };
        let a = build(1);
        let b = build(16);
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_eq!(sa.global_ids(), sb.global_ids());
        assert_eq!(sa.table().nh(), sb.table().nh());
        for tau in [0.4, 0.8] {
            assert_eq!(a.estimate(tau).estimate, b.estimate(tau).estimate);
        }
    }

    #[test]
    fn simhash_cosine_end_to_end() {
        // The paper's configuration over the DBLP-like preset.
        let engine =
            EstimationEngine::new(ServiceConfig::builder().shards(4).k(16).seed(11).build());
        let data = DblpLike::with_size(500).generate(9);
        for (_, v) in data.iter() {
            engine.insert(v.clone());
        }
        let epoch = engine.publish();
        let answer = engine.estimate(0.7);
        assert_eq!(answer.epoch, epoch);
        assert_eq!(answer.n, 500);
        assert!(answer.estimate.value.is_finite() && answer.estimate.value >= 0.0);

        // Offline replication through the public RNG hook.
        let snapshot = engine.snapshot();
        let est = LshSs {
            config: engine.estimator_config(snapshot.len()),
        };
        let mut rng = engine.estimate_rng(epoch, 0.7);
        let offline = est.estimate(
            snapshot.collection(),
            snapshot.as_ref(),
            &Cosine,
            0.7,
            &mut rng,
        );
        assert_eq!(answer.estimate, offline);
    }

    #[test]
    fn fixed_estimator_config_is_honored() {
        let fixed = LshSsConfig {
            m_h: 64,
            m_l: 64,
            delta: 4,
            dampening: vsj_core::Dampening::NlOverDelta,
        };
        let engine = EstimationEngine::new(
            ServiceConfig::builder()
                .shards(2)
                .k(8)
                .family(IndexFamily::MinHash)
                .estimator(fixed)
                .build(),
        );
        assert_eq!(engine.estimator_config(10_000), fixed);
        for i in 0..80u32 {
            engine.insert(members(i % 12, 4));
        }
        engine.publish();
        let a = engine.estimate(0.5);
        assert!(!a.cached);
        // Sampled pairs bounded by the fixed budgets.
        assert!(engine.stats().sampled_pairs <= 128);
    }

    #[test]
    #[should_panic(expected = "auto_publish_every")]
    fn direct_construction_rejects_zero_publish_batch() {
        // ServiceConfig fields are pub; new() must re-validate what the
        // builder validates, or the first ingest divides by zero.
        EstimationEngine::new(ServiceConfig {
            auto_publish_every: Some(0),
            ..ServiceConfig::default()
        });
    }

    #[test]
    fn concurrent_insert_and_upsert_never_lose_vectors() {
        // insert() allocates ids with fetch_add while upsert() reserves
        // caller ids with fetch_max; under contention an upsert can win
        // an id insert just allocated — insert must retry, not drop.
        let engine = minhash_engine(4);
        let upsert_ids: Vec<GlobalId> = (0..300).collect();
        let mut inserted: Vec<GlobalId> = Vec::new();
        std::thread::scope(|scope| {
            let engine = &engine;
            let inserter = scope.spawn(move || {
                (0..300)
                    .map(|i| engine.insert(members(i % 30, 4)))
                    .collect::<Vec<_>>()
            });
            for &id in &upsert_ids {
                engine.upsert(id, members((id % 30) as u32, 5));
            }
            inserted = inserter.join().expect("inserter panicked");
        });
        engine.publish();
        let snapshot = engine.snapshot();
        // Returned ids are unique.
        let mut sorted = inserted.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), inserted.len(), "insert ids must be unique");
        // Every inserted id outside the upsert range must be live (an
        // upsert may legitimately have replaced a colliding id's vector,
        // but never silently swallowed an insert).
        let live: std::collections::HashSet<GlobalId> =
            snapshot.global_ids().iter().copied().collect();
        for &id in &inserted {
            assert!(live.contains(&id), "inserted id {id} lost");
        }
        for &id in &upsert_ids {
            assert!(live.contains(&id), "upserted id {id} lost");
        }
    }

    #[test]
    fn stats_reflect_shards_and_counters() {
        let engine = minhash_engine(3);
        for i in 0..30u32 {
            engine.insert(members(i, 3));
        }
        engine.publish();
        engine.estimate(0.5);
        engine.estimate(0.5);
        let stats = engine.stats();
        assert_eq!(stats.live, 30);
        assert_eq!(stats.ingests, 30);
        assert_eq!(stats.publishes, 1);
        assert_eq!(stats.shards.len(), 3);
        assert_eq!(stats.shards.iter().map(|s| s.live).sum::<usize>(), 30);
        assert!(stats.shards.iter().all(|s| s.live > 0), "hash spreads ids");
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.sampling_passes, 1);
        assert!(stats.sampled_pairs > 0);
        assert_eq!(stats.epoch, 1);
    }

    #[test]
    fn snapshot_view_trait_round_trip() {
        let engine = minhash_engine(2);
        for i in 0..40u32 {
            engine.insert(members(i % 8, 4));
        }
        engine.publish();
        let snapshot = engine.snapshot();
        assert_eq!(IndexView::len(snapshot.as_ref()), 40);
        assert_eq!(IndexView::nh(snapshot.as_ref()), snapshot.table().nh());
        assert_eq!(
            IndexView::total_pairs(snapshot.as_ref()),
            snapshot.table().total_pairs()
        );
    }
}
