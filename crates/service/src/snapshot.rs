//! Epoch-consistent, immutable read views.
//!
//! A snapshot is a *frozen* index view assembled from a consistent cut
//! across every shard, tagged with a monotonically increasing epoch.
//! Readers clone an `Arc<Snapshot>` (a pointer copy) and then sample
//! against it with zero coordination — writers can keep ingesting and
//! publishing newer epochs; existing snapshots are never mutated and
//! are freed when the last reader drops them.
//!
//! **Two storage tiers** back a snapshot:
//!
//! * **Heap** — the classic `(collection, table)` pair. Payloads live
//!   behind `Arc`s ([`SharedVectorCollection`]), so a snapshot never
//!   copies vector data.
//! * **Mapped** — a [`MappedView`](crate::mapped::MappedView): a
//!   memory-mapped checkpoint base, minus a tombstone set of removed
//!   base rows, plus a heap overlay. The base corpus stays on disk;
//!   estimates sample straight from the mapping. A background
//!   compaction periodically folds overlay + tombstones into a fresh
//!   checkpoint and the view resets to a bare base.
//!
//! **Incremental publication.** Two assembly paths exist:
//!
//! * [`Snapshot::assemble_delta`] — the **O(changed)** path: when an
//!   epoch's delta is append-only (only inserts, all with global ids
//!   past the previous cut — the common ingest pattern), the new
//!   snapshot extends the previous one: payload handles are shared,
//!   and the heap table is built by [`LshTable::from_parts_delta`]
//!   (the mapped tier extends its overlay the same way).
//! * [`Snapshot::assemble`] — the general merge for epochs whose delta
//!   contains removals, upserts, or out-of-order ids: an O(n log n)
//!   re-sort of the live rows, but still pure pointer work (no payload
//!   copies, no re-hashing).
//!
//! **Offline equivalence.** Every path produces a view observationally
//! identical to [`LshTable::build`] over the same live vectors in
//! global-id order, so any estimator run against a snapshot returns
//! *the same value* as an offline run over an equivalently-ordered
//! collection with the same RNG — the property the service's tests pin
//! down, and the reason results from the live engine are directly
//! comparable to the paper's offline numbers. The mapped tier upholds
//! the same contract: at every published `(seed, epoch, τ)` it is
//! bit-identical to the heap tier.

use std::sync::Arc;

use vsj_core::IndexView;
use vsj_lsh::{BucketHasher, LshTable};
use vsj_sampling::Rng;
use vsj_vector::{SharedVectorCollection, SparseVector, VectorId, VectorStore};

use crate::mapped::{MappedCheckpoint, MappedView, TombstoneSet};
use crate::GlobalId;

/// The storage backing a snapshot's index and payloads.
// Snapshots are only ever held behind an `Arc`, so the size gap
// between the variants never multiplies across copies.
#[allow(clippy::large_enum_variant)]
enum View {
    /// Decoded, heap-resident collection and table.
    Heap {
        collection: SharedVectorCollection,
        table: LshTable,
    },
    /// Memory-mapped checkpoint base plus heap overlay.
    Mapped(MappedView),
}

/// An immutable epoch-consistent view of the engine's live data.
pub struct Snapshot {
    epoch: u64,
    /// Ingest-counter value at the cut (drift reference for the cache).
    ingested: u64,
    /// Snapshot index → global id (ascending).
    ids: Vec<GlobalId>,
    view: View,
}

impl Snapshot {
    /// Builds the empty epoch-0 snapshot.
    pub(crate) fn empty(hasher: Arc<dyn BucketHasher>) -> Self {
        Self {
            epoch: 0,
            ingested: 0,
            ids: Vec::new(),
            view: View::Heap {
                collection: SharedVectorCollection::new(),
                table: LshTable::from_parts(hasher, Vec::new()),
            },
        }
    }

    /// Assembles a heap snapshot from shard rows (`global id`,
    /// precomputed bucket key, vector). Rows may arrive in any order;
    /// they are sorted by global id so the layout is independent of
    /// shard count and removal history.
    ///
    /// Cost: O(n log n) for the sort plus O(n) *pointer* work — the
    /// payloads are `Arc`-shared with the shards, never copied, and the
    /// bucket keys were computed at ingest so no hashing happens here.
    /// This is the general path; epochs whose delta is append-only go
    /// through [`Snapshot::assemble_delta`] instead and skip even the
    /// O(n) regrouping.
    pub(crate) fn assemble(
        epoch: u64,
        ingested: u64,
        hasher: Arc<dyn BucketHasher>,
        mut rows: Vec<(GlobalId, u64, Arc<SparseVector>)>,
    ) -> Self {
        rows.sort_unstable_by_key(|r| r.0);
        let mut ids = Vec::with_capacity(rows.len());
        let mut keys = Vec::with_capacity(rows.len());
        let mut vectors = Vec::with_capacity(rows.len());
        for (global, key, v) in rows {
            ids.push(global);
            keys.push(key);
            vectors.push(v);
        }
        Self {
            epoch,
            ingested,
            ids,
            view: View::Heap {
                collection: SharedVectorCollection::from_arcs(vectors),
                table: LshTable::from_parts(hasher, keys),
            },
        }
    }

    /// Assembles a **mapped** snapshot: the memory-mapped checkpoint
    /// base, minus `tombstones` (removed base rows), plus `tail` rows
    /// ingested after the checkpoint cut (the replayed WAL tail, or a
    /// full republish of the live shard rows).
    ///
    /// The tail may interleave *below* the base gid watermark — an
    /// upsert replacing a tombstoned base row lands there — but it must
    /// be duplicate-free and never collide with a **live** base row.
    /// Returns `None` when that (or the tombstone bound) is violated;
    /// the engine's write paths make violations impossible, so `None`
    /// means a logic bug upstream, surfaced loudly by the caller.
    pub(crate) fn from_mapped(
        epoch: u64,
        ingested: u64,
        k: usize,
        base: Arc<MappedCheckpoint>,
        mut tail: Vec<(GlobalId, u64, Arc<SparseVector>)>,
        tombstones: Arc<TombstoneSet>,
    ) -> Option<Self> {
        tail.sort_unstable_by_key(|r| r.0);
        let base_n = base.len();
        if tombstones
            .rows()
            .last()
            .is_some_and(|&r| r as usize >= base_n)
        {
            return None;
        }
        if !tail.windows(2).all(|w| w[0].0 < w[1].0) {
            return None;
        }
        for (gid, _, _) in &tail {
            if base
                .find_gid(*gid)
                .is_some_and(|row| !tombstones.contains(row as u32))
            {
                return None;
            }
        }
        // Merge live base gids with tail gids, ascending — the view's
        // dense id order.
        let mut ids = Vec::with_capacity(base_n - tombstones.len() + tail.len());
        let mut next_tail = tail.iter().map(|r| r.0).peekable();
        for i in 0..base_n {
            if tombstones.contains(i as u32) {
                continue;
            }
            let gid = base.gid(i);
            while next_tail.peek().is_some_and(|&t| t < gid) {
                ids.push(next_tail.next().expect("peeked"));
            }
            ids.push(gid);
        }
        ids.extend(next_tail);
        Some(Self {
            epoch,
            ingested,
            ids,
            view: View::Mapped(MappedView::new(base, k, tombstones, tail)),
        })
    }

    /// Assembles the next epoch **incrementally** from the previous
    /// snapshot plus this epoch's delta rows — O(changed) instead of
    /// O(n): payload handles and untouched table buckets are shared
    /// with `prev` by `Arc`; only the delta is newly indexed. On the
    /// mapped tier the base mapping is shared and the overlay extended.
    ///
    /// Returns `None` (caller falls back to [`Snapshot::assemble`])
    /// unless the delta is *append-only*: inserts only, every global id
    /// strictly greater than `prev`'s largest. That restriction is what
    /// keeps the snapshot bit-identical to a full merge — appended rows
    /// extend the global-id order without renumbering any existing
    /// snapshot-local id.
    pub(crate) fn assemble_delta(
        prev: &Snapshot,
        epoch: u64,
        ingested: u64,
        mut delta: Vec<(GlobalId, u64, Arc<SparseVector>)>,
    ) -> Option<Self> {
        delta.sort_unstable_by_key(|r| r.0);
        if !Self::is_append_only(prev, &delta) {
            return None;
        }
        let mut ids = Vec::with_capacity(prev.ids.len() + delta.len());
        ids.extend_from_slice(&prev.ids);
        ids.extend(delta.iter().map(|r| r.0));
        let view = match &prev.view {
            View::Heap { collection, table } => {
                let mut keys = Vec::with_capacity(delta.len());
                let mut arcs = Vec::with_capacity(delta.len());
                for (_, key, v) in delta {
                    keys.push(key);
                    arcs.push(v);
                }
                View::Heap {
                    collection: collection.extended(arcs),
                    table: LshTable::from_parts_delta(table, &keys),
                }
            }
            View::Mapped(mapped) => View::Mapped(mapped.extended(&delta)),
        };
        Some(Self {
            epoch,
            ingested,
            ids,
            view,
        })
    }

    /// The single source of truth for delta-path eligibility: `delta`
    /// (sorted by global id) is *append-only* on top of this snapshot —
    /// strictly ascending ids, all past this snapshot's largest. The
    /// engine uses this to pick the publish path under the cut, and
    /// [`Snapshot::assemble_delta`] re-checks the same predicate, so
    /// the two can never disagree.
    pub(crate) fn is_append_only(
        prev: &Snapshot,
        delta: &[(GlobalId, u64, Arc<SparseVector>)],
    ) -> bool {
        let floor = prev.ids.last().copied();
        delta.windows(2).all(|w| w[0].0 < w[1].0)
            && delta
                .first()
                .is_none_or(|first| floor.is_none_or(|max| first.0 > max))
    }

    /// The snapshot's epoch (monotonically increasing per engine).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Ingest operations applied engine-wide when this cut was taken.
    #[inline]
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Number of vectors in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// True when this snapshot serves its base from a memory-mapped
    /// checkpoint rather than heap structures.
    #[inline]
    pub fn is_mapped(&self) -> bool {
        matches!(self.view, View::Mapped(_))
    }

    /// The frozen heap collection (aligned with [`Snapshot::table`]).
    /// The payloads are `Arc`-shared with the shards and, typically,
    /// with the neighboring epochs' snapshots.
    ///
    /// # Panics
    /// Panics on a mapped snapshot — the base payloads live in the
    /// mapping, not in a heap collection. Tier-agnostic readers go
    /// through the [`VectorStore`] impl instead.
    #[inline]
    pub fn collection(&self) -> &SharedVectorCollection {
        match &self.view {
            View::Heap { collection, .. } => collection,
            View::Mapped(_) => panic!("mapped snapshots have no heap collection"),
        }
    }

    /// The frozen bucket-counted heap table.
    ///
    /// # Panics
    /// Panics on a mapped snapshot — the index lives in the mapping.
    /// Tier-agnostic readers go through the [`IndexView`] impl instead.
    #[inline]
    pub fn table(&self) -> &LshTable {
        match &self.view {
            View::Heap { table, .. } => table,
            View::Mapped(_) => panic!("mapped snapshots have no heap table"),
        }
    }

    /// The heap parts, when this snapshot is heap-backed.
    pub(crate) fn heap_parts(&self) -> Option<(&SharedVectorCollection, &LshTable)> {
        match &self.view {
            View::Heap { collection, table } => Some((collection, table)),
            View::Mapped(_) => None,
        }
    }

    /// The mapped view, when this snapshot is map-backed.
    pub(crate) fn mapped_view(&self) -> Option<&MappedView> {
        match &self.view {
            View::Heap { .. } => None,
            View::Mapped(mapped) => Some(mapped),
        }
    }

    /// Global id of a snapshot-local vector id.
    #[inline]
    pub fn global_of(&self, id: VectorId) -> GlobalId {
        self.ids[id as usize]
    }

    /// All global ids, ascending (parallel to the view's rows).
    #[inline]
    pub fn global_ids(&self) -> &[GlobalId] {
        &self.ids
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("epoch", &self.epoch)
            .field("n", &self.len())
            .field("nh", &IndexView::nh(self))
            .field("mapped", &self.is_mapped())
            .field("ingested", &self.ingested)
            .finish()
    }
}

/// Snapshots are index views: estimators run against them directly,
/// whichever tier backs them.
impl IndexView for Snapshot {
    #[inline]
    fn len(&self) -> usize {
        Snapshot::len(self)
    }

    #[inline]
    fn total_pairs(&self) -> u64 {
        match &self.view {
            View::Heap { table, .. } => table.total_pairs(),
            View::Mapped(mapped) => IndexView::total_pairs(mapped),
        }
    }

    #[inline]
    fn nh(&self) -> u64 {
        match &self.view {
            View::Heap { table, .. } => table.nh(),
            View::Mapped(mapped) => IndexView::nh(mapped),
        }
    }

    #[inline]
    fn nl(&self) -> u64 {
        match &self.view {
            View::Heap { table, .. } => table.nl(),
            View::Mapped(mapped) => IndexView::nl(mapped),
        }
    }

    #[inline]
    fn k(&self) -> usize {
        match &self.view {
            View::Heap { table, .. } => table.hasher().k(),
            View::Mapped(mapped) => IndexView::k(mapped),
        }
    }

    #[inline]
    fn same_bucket(&self, a: VectorId, b: VectorId) -> bool {
        match &self.view {
            View::Heap { table, .. } => table.same_bucket(a, b),
            View::Mapped(mapped) => IndexView::same_bucket(mapped, a, b),
        }
    }

    #[inline]
    fn sample_same_bucket_pair<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Option<(VectorId, VectorId)> {
        match &self.view {
            View::Heap { table, .. } => table.sample_same_bucket_pair(rng),
            View::Mapped(mapped) => mapped.sample_same_bucket_pair(rng),
        }
    }

    #[inline]
    fn sample_cross_bucket_pair<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Option<(VectorId, VectorId)> {
        match &self.view {
            View::Heap { table, .. } => table.sample_cross_bucket_pair(rng),
            View::Mapped(mapped) => mapped.sample_cross_bucket_pair(rng),
        }
    }

    #[inline]
    fn sample_any_pair<R: Rng + ?Sized>(&self, rng: &mut R) -> (VectorId, VectorId, bool) {
        match &self.view {
            View::Heap { table, .. } => table.sample_any_pair(rng),
            View::Mapped(mapped) => mapped.sample_any_pair(rng),
        }
    }
}

/// Snapshots are vector stores: similarity evaluation reads payloads
/// from whichever tier holds them (heap `Arc`s, or lazily-materialized
/// mapped blocks).
impl VectorStore for Snapshot {
    #[inline]
    fn len(&self) -> usize {
        Snapshot::len(self)
    }

    #[inline]
    fn vector(&self, id: VectorId) -> &SparseVector {
        match &self.view {
            View::Heap { collection, .. } => collection.vector(id),
            View::Mapped(mapped) => mapped.vector(id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsj_lsh::{Composite, MinHashFamily};
    use vsj_sampling::Xoshiro256;
    use vsj_vector::VectorCollection;

    fn hasher() -> Arc<dyn BucketHasher> {
        Arc::new(Composite::derive(MinHashFamily::new(), 2, 0, 8))
    }

    fn v(members: &[u32]) -> Arc<SparseVector> {
        Arc::new(SparseVector::binary_from_members(members.to_vec()))
    }

    #[test]
    fn assemble_sorts_by_global_id_and_matches_build() {
        let rows = vec![
            (30, hasher().key(&v(&[1, 2])), v(&[1, 2])),
            (10, hasher().key(&v(&[1, 2])), v(&[1, 2])),
            (20, hasher().key(&v(&[5, 6])), v(&[5, 6])),
        ];
        let snap = Snapshot::assemble(3, 7, hasher(), rows);
        assert_eq!(snap.epoch(), 3);
        assert_eq!(snap.ingested(), 7);
        assert_eq!(snap.global_ids(), &[10, 20, 30]);
        assert_eq!(snap.global_of(2), 30);
        // Equivalent offline build: same vectors in global-id order.
        let coll = VectorCollection::from_vectors(vec![
            (*v(&[1, 2])).clone(),
            (*v(&[5, 6])).clone(),
            (*v(&[1, 2])).clone(),
        ]);
        let built = LshTable::build(&coll, hasher(), Some(1));
        assert_eq!(snap.table().nh(), built.nh());
        assert_eq!(snap.table().num_buckets(), built.num_buckets());
        for id in 0..3u32 {
            assert_eq!(snap.table().key_of(id), built.key_of(id));
        }
        // The two duplicates (globals 10 and 30 → locals 0 and 2) share
        // a bucket in the snapshot view.
        assert!(IndexView::same_bucket(&snap, 0, 2));
        assert_eq!(IndexView::nh(&snap), 1);
    }

    #[test]
    fn assemble_shares_payloads_instead_of_copying() {
        let payload = v(&[1, 2, 3]);
        let rows = vec![(5, hasher().key(&payload), payload.clone())];
        let snap = Snapshot::assemble(1, 1, hasher(), rows);
        assert!(
            Arc::ptr_eq(snap.collection().arc(0), &payload),
            "snapshot must hold the shard's Arc, not a copy"
        );
    }

    #[test]
    fn delta_assembly_matches_full_merge() {
        let base_rows: Vec<_> = [(1u64, &[1, 2][..]), (4, &[5, 6]), (9, &[1, 2])]
            .iter()
            .map(|&(g, m)| (g, hasher().key(&v(m)), v(m)))
            .collect();
        let delta_rows: Vec<_> = [(12u64, &[1, 2][..]), (15, &[9, 9])]
            .iter()
            .map(|&(g, m)| (g, hasher().key(&v(m)), v(m)))
            .collect();
        let prev = Snapshot::assemble(1, 3, hasher(), base_rows.clone());
        let next = Snapshot::assemble_delta(&prev, 2, 5, delta_rows.clone())
            .expect("append-only delta must take the incremental path");
        let mut all = base_rows;
        all.extend(delta_rows);
        let merged = Snapshot::assemble(2, 5, hasher(), all);
        assert_eq!(next.global_ids(), merged.global_ids());
        assert_eq!(next.table().nh(), merged.table().nh());
        assert_eq!(next.len(), merged.len());
        // Identical sampling streams ⇒ identical estimates downstream.
        let mut r1 = Xoshiro256::seeded(8);
        let mut r2 = Xoshiro256::seeded(8);
        for _ in 0..200 {
            assert_eq!(
                next.table().sample_same_bucket_pair(&mut r1),
                merged.table().sample_same_bucket_pair(&mut r2)
            );
            assert_eq!(
                next.table().sample_cross_bucket_pair(&mut r1),
                merged.table().sample_cross_bucket_pair(&mut r2)
            );
        }
        // And the epoch chain shares payloads with its base.
        for local in 0..prev.len() as u32 {
            assert!(
                Arc::ptr_eq(prev.collection().arc(local), next.collection().arc(local)),
                "payload {local} was copied across epochs"
            );
        }
    }

    #[test]
    fn delta_assembly_rejects_non_appends() {
        let prev = Snapshot::assemble(1, 2, hasher(), vec![(10, hasher().key(&v(&[1])), v(&[1]))]);
        // Id below the floor → fallback.
        let low = vec![(3, hasher().key(&v(&[2])), v(&[2]))];
        assert!(Snapshot::assemble_delta(&prev, 2, 3, low).is_none());
        // Duplicate ids inside the delta → fallback.
        let dup = vec![
            (11, hasher().key(&v(&[2])), v(&[2])),
            (11, hasher().key(&v(&[3])), v(&[3])),
        ];
        assert!(Snapshot::assemble_delta(&prev, 2, 3, dup).is_none());
        // Empty delta is a valid (trivial) append.
        let same = Snapshot::assemble_delta(&prev, 2, 3, Vec::new()).unwrap();
        assert_eq!(same.len(), 1);
        assert_eq!(same.epoch(), 2);
    }

    #[test]
    fn empty_snapshot_is_epoch_zero() {
        let snap = Snapshot::empty(hasher());
        assert_eq!(snap.epoch(), 0);
        assert!(snap.is_empty());
        assert!(!snap.is_mapped());
        assert_eq!(IndexView::total_pairs(&snap), 0);
    }
}
