//! Epoch-consistent, immutable read views.
//!
//! A snapshot is a *frozen* `(collection, table)` pair assembled from a
//! consistent cut across every shard, tagged with a monotonically
//! increasing epoch. Readers clone an `Arc<Snapshot>` (a pointer copy)
//! and then sample against it with zero coordination — writers can keep
//! ingesting and publishing newer epochs; existing snapshots are never
//! mutated and are freed when the last reader drops them.
//!
//! **Offline equivalence.** The snapshot table is built with
//! [`LshTable::from_parts`] from the bucket keys the shards computed at
//! ingest time, with vectors ordered by global id. This is exactly the
//! table [`LshTable::build`] would produce over the same vectors with
//! the same hasher, so any estimator run against a snapshot returns *the
//! same value* as an offline run over an equivalently-ordered
//! collection with the same RNG — the property the service's tests pin
//! down, and the reason results from the live engine are directly
//! comparable to the paper's offline numbers.

use std::sync::Arc;

use vsj_core::IndexView;
use vsj_lsh::{BucketHasher, LshTable};
use vsj_sampling::Rng;
use vsj_vector::{SparseVector, VectorCollection, VectorId};

use crate::GlobalId;

/// An immutable epoch-consistent view of the engine's live data.
pub struct Snapshot {
    epoch: u64,
    /// Ingest-counter value at the cut (drift reference for the cache).
    ingested: u64,
    collection: VectorCollection,
    table: LshTable,
    /// Snapshot index → global id (ascending).
    ids: Vec<GlobalId>,
}

impl Snapshot {
    /// Builds the empty epoch-0 snapshot.
    pub(crate) fn empty(hasher: Arc<dyn BucketHasher>) -> Self {
        Self {
            epoch: 0,
            ingested: 0,
            collection: VectorCollection::new(),
            table: LshTable::from_parts(hasher, Vec::new()),
            ids: Vec::new(),
        }
    }

    /// Assembles a snapshot from shard rows (`global id`, precomputed
    /// bucket key, vector). Rows may arrive in any order; they are
    /// sorted by global id so the layout is independent of shard count
    /// and removal history.
    ///
    /// Cost: O(n log n) for the sort plus an O(corpus bytes) copy of the
    /// vector payloads into the owned [`VectorCollection`] (hashing is
    /// *not* redone — keys were computed at ingest). Sharing the
    /// `Arc<SparseVector>` payloads instead would make publication pure
    /// pointer work, but requires a collection type over `Arc`s; tracked
    /// as a ROADMAP open item.
    pub(crate) fn assemble(
        epoch: u64,
        ingested: u64,
        hasher: Arc<dyn BucketHasher>,
        mut rows: Vec<(GlobalId, u64, Arc<SparseVector>)>,
    ) -> Self {
        rows.sort_unstable_by_key(|r| r.0);
        let mut ids = Vec::with_capacity(rows.len());
        let mut keys = Vec::with_capacity(rows.len());
        let mut vectors = Vec::with_capacity(rows.len());
        for (global, key, v) in rows {
            ids.push(global);
            keys.push(key);
            vectors.push((*v).clone());
        }
        Self {
            epoch,
            ingested,
            collection: VectorCollection::from_vectors(vectors),
            table: LshTable::from_parts(hasher, keys),
            ids,
        }
    }

    /// The snapshot's epoch (monotonically increasing per engine).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Ingest operations applied engine-wide when this cut was taken.
    #[inline]
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Number of vectors in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The frozen collection (aligned with [`Snapshot::table`]).
    #[inline]
    pub fn collection(&self) -> &VectorCollection {
        &self.collection
    }

    /// The frozen bucket-counted table.
    #[inline]
    pub fn table(&self) -> &LshTable {
        &self.table
    }

    /// Global id of a snapshot-local vector id.
    #[inline]
    pub fn global_of(&self, id: VectorId) -> GlobalId {
        self.ids[id as usize]
    }

    /// All global ids, ascending (parallel to the collection).
    #[inline]
    pub fn global_ids(&self) -> &[GlobalId] {
        &self.ids
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("epoch", &self.epoch)
            .field("n", &self.len())
            .field("nh", &self.table.nh())
            .field("ingested", &self.ingested)
            .finish()
    }
}

/// Snapshots are index views: estimators run against them directly.
impl IndexView for Snapshot {
    #[inline]
    fn len(&self) -> usize {
        Snapshot::len(self)
    }

    #[inline]
    fn total_pairs(&self) -> u64 {
        self.table.total_pairs()
    }

    #[inline]
    fn nh(&self) -> u64 {
        self.table.nh()
    }

    #[inline]
    fn nl(&self) -> u64 {
        self.table.nl()
    }

    #[inline]
    fn k(&self) -> usize {
        self.table.hasher().k()
    }

    #[inline]
    fn same_bucket(&self, a: VectorId, b: VectorId) -> bool {
        self.table.same_bucket(a, b)
    }

    #[inline]
    fn sample_same_bucket_pair<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Option<(VectorId, VectorId)> {
        self.table.sample_same_bucket_pair(rng)
    }

    #[inline]
    fn sample_cross_bucket_pair<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Option<(VectorId, VectorId)> {
        self.table.sample_cross_bucket_pair(rng)
    }

    #[inline]
    fn sample_any_pair<R: Rng + ?Sized>(&self, rng: &mut R) -> (VectorId, VectorId, bool) {
        self.table.sample_any_pair(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsj_lsh::{Composite, MinHashFamily};

    fn hasher() -> Arc<dyn BucketHasher> {
        Arc::new(Composite::derive(MinHashFamily::new(), 2, 0, 8))
    }

    fn v(members: &[u32]) -> Arc<SparseVector> {
        Arc::new(SparseVector::binary_from_members(members.to_vec()))
    }

    #[test]
    fn assemble_sorts_by_global_id_and_matches_build() {
        let rows = vec![
            (30, hasher().key(&v(&[1, 2])), v(&[1, 2])),
            (10, hasher().key(&v(&[1, 2])), v(&[1, 2])),
            (20, hasher().key(&v(&[5, 6])), v(&[5, 6])),
        ];
        let snap = Snapshot::assemble(3, 7, hasher(), rows);
        assert_eq!(snap.epoch(), 3);
        assert_eq!(snap.ingested(), 7);
        assert_eq!(snap.global_ids(), &[10, 20, 30]);
        assert_eq!(snap.global_of(2), 30);
        // Equivalent offline build: same vectors in global-id order.
        let coll = VectorCollection::from_vectors(vec![
            (*v(&[1, 2])).clone(),
            (*v(&[5, 6])).clone(),
            (*v(&[1, 2])).clone(),
        ]);
        let built = LshTable::build(&coll, hasher(), Some(1));
        assert_eq!(snap.table().nh(), built.nh());
        assert_eq!(snap.table().num_buckets(), built.num_buckets());
        for id in 0..3u32 {
            assert_eq!(snap.table().key_of(id), built.key_of(id));
        }
        // The two duplicates (globals 10 and 30 → locals 0 and 2) share
        // a bucket in the snapshot view.
        assert!(IndexView::same_bucket(&snap, 0, 2));
        assert_eq!(IndexView::nh(&snap), 1);
    }

    #[test]
    fn empty_snapshot_is_epoch_zero() {
        let snap = Snapshot::empty(hasher());
        assert_eq!(snap.epoch(), 0);
        assert!(snap.is_empty());
        assert_eq!(IndexView::total_pairs(&snap), 0);
    }
}
