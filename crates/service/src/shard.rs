//! One shard of the mutable write side.
//!
//! Vectors are partitioned across shards by a hash of their global id,
//! so concurrent writers touching different shards never contend. Each
//! shard owns a shard-local [`LshTable`] (ids `0..slots` local to the
//! shard) plus the vectors themselves; the expensive part of an ingest —
//! evaluating the `k` hash functions — happens inside the shard lock of
//! *only* that shard.
//!
//! Shards never serve reads. Read traffic goes through the immutable
//! epoch snapshots the engine assembles from all shards (see
//! `snapshot.rs`), which is what keeps the write path this simple.

use std::collections::HashMap;
use std::sync::Arc;

use vsj_lsh::{BucketHasher, LshTable};
use vsj_vector::{SparseVector, VectorCollection, VectorId};

use crate::GlobalId;

/// Cap on the buffered per-shard delta. Past this many inserts between
/// publishes the buffer stops paying for itself (the snapshot-side
/// delta work approaches full-merge cost anyway) — the shard flips to
/// [`ShardDelta::Full`] and drops the buffer to bound memory.
const DELTA_BUFFER_CAP: usize = 1 << 15;

/// What happened in a shard since the last publish cut.
pub(crate) enum ShardDelta {
    /// Only inserts, all buffered here (`(global id, bucket key,
    /// payload)` in application order). The engine can publish the next
    /// epoch incrementally from these rows alone.
    Appends(Vec<(GlobalId, u64, Arc<SparseVector>)>),
    /// A remove/upsert happened (or the buffer overflowed): the shard's
    /// live rows must be re-collected; the next publish takes the full
    /// merge path.
    Full,
}

/// Mutable state of one shard (always accessed under the shard's lock).
pub(crate) struct ShardState {
    /// Shard-local bucket-counted table; maintains the shard's `N_H`
    /// incrementally through `insert`/`remove`.
    table: LshTable,
    /// Local id → vector (`None` once removed; slots are never reused,
    /// matching the table's id discipline).
    vectors: Vec<Option<Arc<SparseVector>>>,
    /// Local id → global id.
    globals: Vec<GlobalId>,
    /// Global id → local id, live entries only.
    by_global: HashMap<GlobalId, VectorId>,
    /// Mutations since the last publish cut (see [`ShardDelta`]).
    delta: ShardDelta,
}

/// Point-in-time statistics of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Live vectors in the shard.
    pub live: usize,
    /// Id slots ever assigned (live + removed).
    pub slots: usize,
    /// Shard-local same-bucket pair count `N_H`.
    pub nh: u64,
    /// Non-empty shard-local buckets.
    pub buckets: usize,
}

impl ShardState {
    pub(crate) fn new(hasher: Arc<dyn BucketHasher>) -> Self {
        Self {
            table: LshTable::build(&VectorCollection::new(), hasher, Some(1)),
            vectors: Vec::new(),
            globals: Vec::new(),
            by_global: HashMap::new(),
            delta: ShardDelta::Appends(Vec::new()),
        }
    }

    /// Records one applied insert in the delta log (no-op once the
    /// shard is already marked for a full re-collect).
    fn log_insert(&mut self, global: GlobalId, key: u64, v: Arc<SparseVector>) {
        if let ShardDelta::Appends(buffer) = &mut self.delta {
            if buffer.len() >= DELTA_BUFFER_CAP {
                self.delta = ShardDelta::Full;
            } else {
                buffer.push((global, key, v));
            }
        }
    }

    /// Hashes and indexes a vector under global id `global`. Returns
    /// `false` (and leaves the shard untouched) when the id is already
    /// live here.
    pub(crate) fn insert(&mut self, global: GlobalId, v: Arc<SparseVector>) -> bool {
        if self.by_global.contains_key(&global) {
            return false;
        }
        let local = self.table.insert(&v);
        self.vectors.push(Some(v.clone()));
        self.globals.push(global);
        self.by_global.insert(global, local);
        self.log_insert(global, self.table.key_of(local), v);
        true
    }

    /// Indexes a vector under `global` with an already-computed bucket
    /// key — the recovery path: checkpoints store the keys the hasher
    /// produced at original ingest time, so rebuilding a shard performs
    /// no hash evaluations. Returns `false` when the id is already live.
    pub(crate) fn insert_precomputed(
        &mut self,
        global: GlobalId,
        key: u64,
        v: Arc<SparseVector>,
    ) -> bool {
        if self.by_global.contains_key(&global) {
            return false;
        }
        let local = self.table.insert_key(key);
        self.vectors.push(Some(v.clone()));
        self.globals.push(global);
        self.by_global.insert(global, local);
        self.log_insert(global, key, v);
        true
    }

    /// Removes the vector with global id `global`; `false` when absent.
    pub(crate) fn remove(&mut self, global: GlobalId) -> bool {
        let Some(local) = self.by_global.remove(&global) else {
            return false;
        };
        let removed = self.table.remove(local);
        debug_assert!(removed, "by_global entry implies a live table id");
        self.vectors[local as usize] = None;
        // A removal shifts snapshot-local ids, which an incremental
        // epoch cannot express — the next publish re-collects this
        // shard (and only then does the buffer start refilling).
        self.delta = ShardDelta::Full;
        self.maybe_compact();
        true
    }

    /// Drains the delta log at a publish cut, resetting it to an empty
    /// append buffer — every mutation lands in exactly one cut.
    pub(crate) fn take_delta(&mut self) -> ShardDelta {
        std::mem::replace(&mut self.delta, ShardDelta::Appends(Vec::new()))
    }

    /// Rebuilds the shard densely once tombstone slots dominate. Ids
    /// are never reused inside an [`LshTable`], so a remove/upsert-heavy
    /// workload would otherwise grow slot storage without bound; when
    /// dead slots outnumber live vectors 3:1 (and the shard is past a
    /// small floor), re-key the live rows into a fresh table — an O(live)
    /// copy using the *stored* bucket keys, no re-hashing. Local ids are
    /// private to the shard, so nothing outside observes the renumbering.
    fn maybe_compact(&mut self) {
        let live = self.table.len();
        let slots = self.table.slots();
        if slots < 64 || slots < live.saturating_mul(4) {
            return;
        }
        let mut locals: Vec<VectorId> = self.table.live_ids().to_vec();
        locals.sort_unstable(); // preserve insertion order for determinism
        let keys: Vec<u64> = locals.iter().map(|&l| self.table.key_of(l)).collect();
        let mut vectors = Vec::with_capacity(locals.len());
        let mut globals = Vec::with_capacity(locals.len());
        let mut by_global = HashMap::with_capacity(locals.len());
        for (new_local, &old_local) in locals.iter().enumerate() {
            vectors.push(self.vectors[old_local as usize].take());
            let global = self.globals[old_local as usize];
            globals.push(global);
            by_global.insert(global, new_local as VectorId);
        }
        self.table = LshTable::from_parts(self.table.hasher().clone(), keys);
        self.vectors = vectors;
        self.globals = globals;
        self.by_global = by_global;
    }

    /// Whether `global` is live in this shard.
    pub(crate) fn contains(&self, global: GlobalId) -> bool {
        self.by_global.contains_key(&global)
    }

    /// Appends this shard's live vectors to the snapshot accumulator as
    /// `(global id, bucket key, vector)` rows. Keys come from the table
    /// (computed once at ingest) — assembling a snapshot re-hashes
    /// nothing.
    pub(crate) fn collect_live(&self, out: &mut Vec<(GlobalId, u64, Arc<SparseVector>)>) {
        out.reserve(self.table.len());
        for &local in self.table.live_ids() {
            let v = self.vectors[local as usize]
                .as_ref()
                .expect("live table id must have a vector")
                .clone();
            out.push((self.globals[local as usize], self.table.key_of(local), v));
        }
    }

    pub(crate) fn stats(&self) -> ShardStats {
        ShardStats {
            live: self.table.len(),
            slots: self.table.slots(),
            nh: self.table.nh(),
            buckets: self.table.num_buckets(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsj_lsh::{Composite, MinHashFamily};

    fn shard() -> ShardState {
        ShardState::new(Arc::new(Composite::derive(MinHashFamily::new(), 1, 0, 8)))
    }

    fn vec_of(members: &[u32]) -> Arc<SparseVector> {
        Arc::new(SparseVector::binary_from_members(members.to_vec()))
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = shard();
        assert!(s.insert(10, vec_of(&[1, 2])));
        assert!(s.insert(20, vec_of(&[1, 2])));
        assert!(!s.insert(10, vec_of(&[9])), "duplicate id rejected");
        assert_eq!(s.stats().live, 2);
        assert_eq!(s.stats().nh, 1, "duplicates share a minhash bucket");
        assert!(s.contains(10));
        assert!(s.remove(10));
        assert!(!s.remove(10));
        assert!(!s.contains(10));
        let st = s.stats();
        assert_eq!((st.live, st.slots, st.nh), (1, 2, 0));
    }

    #[test]
    fn compaction_bounds_slot_growth_under_churn() {
        // Steady-state upsert churn on a fixed key set: without
        // compaction, slots would grow by one per operation forever.
        let mut s = shard();
        for round in 0..2_000u64 {
            for id in 0..10u64 {
                s.remove(id);
                s.insert(id, vec_of(&[(id as u32) % 5, 60 + round as u32 % 3]));
            }
        }
        let st = s.stats();
        assert_eq!(st.live, 10);
        // Compaction triggers (inside remove) at 64 slots for 10 live
        // vectors; inserts between triggers add at most one round more.
        assert!(
            st.slots <= 128,
            "slots {} not bounded by the compaction threshold",
            st.slots
        );
        // State stays fully consistent after many compactions.
        let mut rows = Vec::new();
        s.collect_live(&mut rows);
        rows.sort_by_key(|r| r.0);
        assert_eq!(rows.len(), 10);
        for (i, (global, key, v)) in rows.iter().enumerate() {
            assert_eq!(*global, i as u64);
            let hasher = Composite::derive(MinHashFamily::new(), 1, 0, 8);
            use vsj_lsh::BucketHasher as _;
            assert_eq!(*key, hasher.key(v), "stale key after compaction");
        }
    }

    #[test]
    fn collect_live_carries_keys_and_globals() {
        let mut s = shard();
        s.insert(5, vec_of(&[1, 2]));
        s.insert(3, vec_of(&[3, 4]));
        s.insert(8, vec_of(&[5, 6]));
        s.remove(3);
        let mut rows = Vec::new();
        s.collect_live(&mut rows);
        rows.sort_by_key(|r| r.0);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 5);
        assert_eq!(rows[1].0, 8);
        // Keys must match a fresh hash of the vector.
        let hasher = Composite::derive(MinHashFamily::new(), 1, 0, 8);
        use vsj_lsh::BucketHasher as _;
        assert_eq!(rows[0].1, hasher.key(&rows[0].2));
        assert_eq!(rows[1].1, hasher.key(&rows[1].2));
    }
}
