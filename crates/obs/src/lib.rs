//! `vsj-obs` — zero-dependency observability primitives for the VSJ
//! serving stack.
//!
//! The build environment has no registry access, so this crate plays
//! the role `prometheus` + `tracing` would play elsewhere, in ~std-only
//! code (the same constraint that produced `crates/compat/*`):
//!
//! * [`Counter`] / [`Gauge`] — lock-free atomic scalars, cloneable
//!   handles (an `Arc<AtomicU64>` each).
//! * [`Histogram`] — fixed log₂-scale buckets over `u64` values
//!   (latencies in microseconds, sizes in counts): atomic buckets, a
//!   running sum and max, O(buckets) mergeable, with approximate
//!   p50/p90/p99 readout from bucket upper bounds.
//! * [`Span`] — a start/finish timer that records its elapsed
//!   microseconds into a histogram (and hands the number back so the
//!   caller can attach it to a [`Trace`] stage).
//! * [`Trace`] — a `Copy`, fixed-capacity per-request record of named
//!   stage timings (queue wait → batch wait → sampling → fsync wait).
//!   No allocation: it lives on the caller's stack until (and unless)
//!   it crosses the slow-query threshold.
//! * [`TraceRing`] — a bounded ring buffer that captures full traces
//!   for requests slower than a threshold. The mutex inside is taken
//!   only for outliers and readers, never on the fast path.
//! * [`Registry`] — a named collection of the above that renders the
//!   whole set in Prometheus text exposition format
//!   ([`Registry::render`]); [`validate_exposition`] is a strict
//!   checker for tests and smoke scripts.
//! * [`snapshot_ordered`] — reads a family of causally-related
//!   counters downstream-first so a stats snapshot can never report an
//!   inversion (e.g. more sampling passes than cache misses).
//!
//! Everything on the hot path is an atomic op or two; registration and
//! rendering are the only places a lock is held.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------------

/// A monotonically increasing atomic counter.
///
/// Increments use `SeqCst`: on the dominant platforms this costs the
/// same as a relaxed `lock xadd`, and it is what lets
/// [`snapshot_ordered`] give cross-counter guarantees.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::SeqCst);
    }

    /// Adds `n` and returns the post-increment value in one atomic op
    /// (for callers that key follow-up work off the running total).
    pub fn add_fetch(&self, n: u64) -> u64 {
        self.value.fetch_add(n, Ordering::SeqCst) + n
    }

    /// Overwrites the value. Counters are monotone in steady state;
    /// this exists only for state restoration (checkpoint recovery
    /// rehydrating lifetime totals), not for regular use.
    pub fn store(&self, v: u64) {
        self.value.store(v, Ordering::SeqCst);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::SeqCst)
    }
}

/// An atomic gauge (a value that can go up and down).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::SeqCst);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::SeqCst);
    }

    /// Subtracts `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        let _ = self
            .value
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::SeqCst)
    }
}

/// Reads causally-related counters **in the given order** with
/// sequentially-consistent loads, returning their values.
///
/// List counters *downstream-first*: if every increment of counter `B`
/// is preceded (in program order, across the same or synchronized
/// threads) by an increment of counter `A`, then reading `B` before
/// `A` guarantees the snapshot satisfies `B ≤ A`. Example: every
/// sampling pass is preceded by a cache-miss increment, so
/// `snapshot_ordered([&passes, &misses])` can never report
/// `misses < passes` — the inversion a field-by-field read allows.
pub fn snapshot_ordered<const N: usize>(counters: [&Counter; N]) -> [u64; N] {
    let mut out = [0u64; N];
    for (slot, counter) in out.iter_mut().zip(counters) {
        *slot = counter.value.load(Ordering::SeqCst);
    }
    out
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Shape of a log₂ histogram: bucket `i` has upper bound
/// `first_bound << i`; the last bucket is the `+Inf` overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSpec {
    /// Upper bound of the first bucket (≥ 1).
    pub first_bound: u64,
    /// Number of buckets including the overflow bucket. `0` makes a
    /// **disabled** histogram whose `record` is a no-op — the stub used
    /// to measure instrumentation overhead; real specs need ≥ 2.
    pub buckets: usize,
}

impl HistogramSpec {
    /// Latency spec: 1 µs first bound, 24 buckets → finite bounds up to
    /// `2^22` µs ≈ 4.2 s, overflow above.
    pub fn latency_us() -> Self {
        Self {
            first_bound: 1,
            buckets: 24,
        }
    }

    /// Size spec (batch sizes, pair counts): 1 first bound, 32 buckets
    /// → finite bounds up to `2^30`.
    pub fn size() -> Self {
        Self {
            first_bound: 1,
            buckets: 32,
        }
    }

    /// A disabled spec: `record` becomes a no-op. For overhead
    /// measurement only — production metrics stay always-on.
    pub fn disabled() -> Self {
        Self {
            first_bound: 1,
            buckets: 0,
        }
    }

    fn validate(&self) {
        assert!(self.first_bound >= 1, "first_bound must be at least 1");
        assert!(
            self.buckets == 0 || self.buckets >= 2,
            "a histogram needs at least 2 buckets (or 0 for disabled)"
        );
    }
}

#[derive(Debug)]
struct HistogramInner {
    spec: HistogramSpec,
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket log₂-scale histogram with atomic buckets.
///
/// Recording is lock-free: one bit-scan, one relaxed `fetch_add` on a
/// bucket, one on the sum, one `fetch_max`. The count is derived from
/// the buckets, so a rendered snapshot is always internally consistent
/// (`_count` equals the sum of `_bucket` increments it saw).
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// A fresh, unregistered histogram.
    pub fn new(spec: HistogramSpec) -> Self {
        spec.validate();
        let buckets = (0..spec.buckets).map(|_| AtomicU64::new(0)).collect();
        Self {
            inner: Arc::new(HistogramInner {
                spec,
                buckets,
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// A disabled histogram: `record` is a no-op, all readouts zero.
    pub fn disabled() -> Self {
        Self::new(HistogramSpec::disabled())
    }

    /// The spec this histogram was built with.
    pub fn spec(&self) -> HistogramSpec {
        self.inner.spec
    }

    /// Upper bound of bucket `i` (`u64::MAX` stands in for `+Inf`).
    pub fn bound(&self, i: usize) -> u64 {
        if i + 1 >= self.inner.spec.buckets {
            u64::MAX
        } else {
            self.inner.spec.first_bound.saturating_shl(i)
        }
    }

    fn bucket_index(&self, v: u64) -> usize {
        let first = self.inner.spec.first_bound;
        let idx = if v <= first {
            0
        } else {
            // Smallest i with v ≤ first << i, i.e. ceil(log2(v / first)).
            let ratio = (v - 1) / first;
            (64 - ratio.leading_zeros()) as usize
        };
        idx.min(self.inner.spec.buckets - 1)
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        if self.inner.buckets.is_empty() {
            return;
        }
        let idx = self.bucket_index(v);
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in whole microseconds (saturating).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Largest observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.inner.max.load(Ordering::Relaxed)
    }

    /// Approximate quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// holding the rank-`⌈q·count⌉` observation (the observed max for
    /// the overflow bucket). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, c) in counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return if i + 1 == counts.len() {
                    self.max()
                } else {
                    self.bound(i).min(self.max())
                };
            }
        }
        self.max()
    }

    /// Approximate median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Approximate 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// Approximate 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds `other`'s observations into `self`.
    ///
    /// # Panics
    /// Panics if the specs differ (the buckets would not line up).
    pub fn merge(&self, other: &Histogram) {
        assert_eq!(
            self.inner.spec, other.inner.spec,
            "cannot merge histograms with different specs"
        );
        for (mine, theirs) in self.inner.buckets.iter().zip(other.inner.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.inner
            .sum
            .fetch_add(other.inner.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.inner
            .max
            .fetch_max(other.inner.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: usize) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: usize) -> u64 {
        if shift >= 64 || self.leading_zeros() < shift as u32 {
            u64::MAX
        } else {
            self << shift
        }
    }
}

// ---------------------------------------------------------------------------
// Spans and traces
// ---------------------------------------------------------------------------

/// A timer that records its elapsed microseconds into a histogram when
/// finished (or dropped), and returns the number so the caller can also
/// attach it to a [`Trace`] stage.
#[derive(Debug)]
pub struct Span {
    histogram: Option<Histogram>,
    start: Instant,
}

impl Span {
    /// Starts timing against `histogram`.
    pub fn start(histogram: &Histogram) -> Self {
        Self {
            histogram: Some(histogram.clone()),
            start: Instant::now(),
        }
    }

    /// Microseconds elapsed so far (saturating).
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Stops the timer, records the elapsed microseconds, and returns
    /// them.
    pub fn finish(mut self) -> u64 {
        let us = self.elapsed_us();
        if let Some(h) = self.histogram.take() {
            h.record(us);
        }
        us
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(h) = self.histogram.take() {
            h.record(u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX));
        }
    }
}

/// Maximum named stages a [`Trace`] can hold (extra stages are
/// silently dropped — the pipeline has far fewer).
pub const MAX_TRACE_STAGES: usize = 8;

/// One named stage timing inside a [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStage {
    /// Stage name (e.g. `"queue_wait"`).
    pub name: &'static str,
    /// Stage duration in microseconds.
    pub micros: u64,
}

/// A per-request record of stage timings. `Copy` and fixed-capacity:
/// it costs no allocation to carry through a request, and is copied
/// into the [`TraceRing`] only when the request is slow.
#[derive(Debug, Clone, Copy)]
pub struct Trace {
    /// What the request was (e.g. the route).
    pub label: &'static str,
    /// End-to-end duration in microseconds.
    pub total_us: u64,
    /// Capture sequence number, assigned by the ring (0 until captured).
    pub seq: u64,
    len: usize,
    stages: [TraceStage; MAX_TRACE_STAGES],
}

impl Trace {
    /// A fresh trace for `label` with no stages.
    pub fn new(label: &'static str) -> Self {
        Self {
            label,
            total_us: 0,
            seq: 0,
            len: 0,
            stages: [TraceStage {
                name: "",
                micros: 0,
            }; MAX_TRACE_STAGES],
        }
    }

    /// Appends a stage timing (ignored beyond [`MAX_TRACE_STAGES`]).
    pub fn stage(&mut self, name: &'static str, micros: u64) {
        if self.len < MAX_TRACE_STAGES {
            self.stages[self.len] = TraceStage { name, micros };
            self.len += 1;
        }
    }

    /// The recorded stages, in insertion order.
    pub fn stages(&self) -> &[TraceStage] {
        &self.stages[..self.len]
    }
}

struct RingInner {
    slots: Vec<Trace>,
    next: usize,
    seq: u64,
}

/// A bounded ring buffer of slow-request traces.
///
/// [`offer`](TraceRing::offer) compares against the threshold with one
/// atomic load; only traces at or above it take the lock and enter the
/// ring, overwriting the oldest entry once full.
pub struct TraceRing {
    capacity: usize,
    threshold_us: AtomicU64,
    captured: Counter,
    inner: Mutex<RingInner>,
}

impl TraceRing {
    /// A ring holding up to `capacity` traces (≥ 1), capturing requests
    /// whose total duration is ≥ `threshold`.
    pub fn new(capacity: usize, threshold: Duration) -> Self {
        assert!(capacity >= 1, "trace ring needs capacity of at least 1");
        Self {
            capacity,
            threshold_us: AtomicU64::new(u64::try_from(threshold.as_micros()).unwrap_or(u64::MAX)),
            captured: Counter::new(),
            inner: Mutex::new(RingInner {
                slots: Vec::with_capacity(capacity),
                next: 0,
                seq: 0,
            }),
        }
    }

    /// The current slow-query threshold in microseconds.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of traces captured over the ring's lifetime (including
    /// ones since overwritten).
    pub fn captured(&self) -> u64 {
        self.captured.get()
    }

    /// A counter handle for lifetime captures (registerable).
    pub fn captured_counter(&self) -> Counter {
        self.captured.clone()
    }

    /// Offers a finished trace; captures it (assigning `seq`) if it is
    /// at or above the threshold. Returns whether it was captured.
    pub fn offer(&self, mut trace: Trace) -> bool {
        if trace.total_us < self.threshold_us.load(Ordering::Relaxed) {
            return false;
        }
        let mut inner = self.inner.lock().expect("trace ring poisoned");
        inner.seq += 1;
        trace.seq = inner.seq;
        if inner.slots.len() < self.capacity {
            inner.slots.push(trace);
        } else {
            let at = inner.next;
            inner.slots[at] = trace;
        }
        inner.next = (inner.next + 1) % self.capacity;
        drop(inner);
        self.captured.inc();
        true
    }

    /// The captured traces, newest first.
    pub fn recent(&self) -> Vec<Trace> {
        let inner = self.inner.lock().expect("trace ring poisoned");
        let n = inner.slots.len();
        let mut out = Vec::with_capacity(n);
        for back in 1..=n {
            // `next` points at the oldest slot once the ring is full and
            // at the next free slot before that; either way the newest
            // entry sits just behind it.
            let idx = (inner.next + self.capacity - back) % self.capacity;
            if idx < n {
                out.push(inner.slots[idx]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Registry + Prometheus text exposition
// ---------------------------------------------------------------------------

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Clone)]
struct Entry {
    name: &'static str,
    help: &'static str,
    labels: &'static [(&'static str, &'static str)],
    metric: Metric,
}

/// A named set of metrics, rendered in Prometheus text exposition
/// format. Global-free: owners (engine, server) each hold their own and
/// the `/metrics` handler concatenates the renders.
///
/// Registration takes a lock; the returned handles are lock-free.
/// Registering the same `(name, labels)` twice returns the existing
/// handle (and panics if the kind differs).
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, entry: Entry) -> Metric {
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some(existing) = entries
            .iter()
            .find(|e| e.name == entry.name && e.labels == entry.labels)
        {
            let compatible = matches!(
                (&existing.metric, &entry.metric),
                (Metric::Counter(_), Metric::Counter(_))
                    | (Metric::Gauge(_), Metric::Gauge(_))
                    | (Metric::Histogram(_), Metric::Histogram(_))
            );
            assert!(
                compatible,
                "metric {} re-registered with a different kind",
                entry.name
            );
            return existing.metric.clone();
        }
        let metric = entry.metric.clone();
        entries.push(entry);
        metric
    }

    /// Registers (or fetches) a counter. Name counters `*_total` per
    /// Prometheus convention.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or fetches) a counter with static labels.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &'static [(&'static str, &'static str)],
    ) -> Counter {
        match self.register(Entry {
            name,
            help,
            labels,
            metric: Metric::Counter(Counter::new()),
        }) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or fetches) a gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        match self.register(Entry {
            name,
            help,
            labels: &[],
            metric: Metric::Gauge(Gauge::new()),
        }) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or fetches) a histogram.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        spec: HistogramSpec,
    ) -> Histogram {
        self.histogram_with(name, help, &[], spec)
    }

    /// Registers (or fetches) a histogram with static labels.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &'static [(&'static str, &'static str)],
        spec: HistogramSpec,
    ) -> Histogram {
        match self.register(Entry {
            name,
            help,
            labels,
            metric: Metric::Histogram(Histogram::new(spec)),
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Renders every registered metric in Prometheus text exposition
    /// format, series sorted by name then labels, `# HELP` / `# TYPE`
    /// emitted once per metric name.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Renders into an existing buffer (lets callers concatenate
    /// several registries into one exposition — but see
    /// [`render_registries`], which also guards against the same metric
    /// name living in more than one registry).
    pub fn render_into(&self, out: &mut String) {
        let mut entries: Vec<Entry> = self.entries.lock().expect("registry poisoned").clone();
        entries.sort_by(|a, b| a.name.cmp(b.name).then_with(|| a.labels.cmp(b.labels)));
        render_entries(&entries, out);
    }
}

/// Renders sorted entries in Prometheus text exposition format, `#
/// HELP`/`# TYPE` once per metric name (shared by
/// [`Registry::render_into`] and [`render_registries`]).
fn render_entries(entries: &[Entry], out: &mut String) {
    use std::fmt::Write as _;
    let mut previous: Option<&'static str> = None;
    for entry in entries {
        if previous != Some(entry.name) {
            previous = Some(entry.name);
            let kind = match entry.metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# HELP {} {}", entry.name, entry.help);
            let _ = writeln!(out, "# TYPE {} {}", entry.name, kind);
        }
        match &entry.metric {
            Metric::Counter(c) => {
                out.push_str(entry.name);
                write_labels(out, entry.labels, None);
                let _ = writeln!(out, " {}", c.get());
            }
            Metric::Gauge(g) => {
                out.push_str(entry.name);
                write_labels(out, entry.labels, None);
                let _ = writeln!(out, " {}", g.get());
            }
            Metric::Histogram(h) => {
                let spec = h.spec();
                let mut cumulative = 0u64;
                for i in 0..spec.buckets {
                    cumulative += h.inner.buckets[i].load(Ordering::Relaxed);
                    let _ = write!(out, "{}_bucket", entry.name);
                    let le = if i + 1 == spec.buckets {
                        None
                    } else {
                        Some(h.bound(i))
                    };
                    write_labels(out, entry.labels, Some(le));
                    let _ = writeln!(out, " {cumulative}");
                }
                if spec.buckets == 0 {
                    // Disabled histogram: still a well-formed series.
                    let _ = write!(out, "{}_bucket", entry.name);
                    write_labels(out, entry.labels, Some(None));
                    let _ = writeln!(out, " 0");
                }
                let _ = write!(out, "{}_sum", entry.name);
                write_labels(out, entry.labels, None);
                let _ = writeln!(out, " {}", h.sum());
                let _ = write!(out, "{}_count", entry.name);
                write_labels(out, entry.labels, None);
                let _ = writeln!(out, " {cumulative}");
            }
        }
    }
}

/// Renders several registries into **one** exposition, guarding the
/// seam naive concatenation leaves open: a metric name registered in
/// more than one registry would emit two `# TYPE` blocks and fail
/// [`validate_exposition`] (and confuse any Prometheus scraper).
/// Entries whose name already appeared in an earlier registry are
/// dropped (first registry wins) with a loud stderr warning, and the
/// always-emitted `vsj_obs_duplicate_metric_names` gauge carries the
/// drop count so dashboards can alert on a non-zero value. Same-name
/// entries *within* one registry (label variants of one series) are
/// untouched. Returns the number of dropped entries.
pub fn render_registries(registries: &[&Registry], out: &mut String) -> usize {
    use std::fmt::Write as _;
    let mut entries: Vec<Entry> = Vec::new();
    let mut seen: std::collections::HashSet<&'static str> = std::collections::HashSet::new();
    let mut duplicates = 0usize;
    for registry in registries {
        let snapshot: Vec<Entry> = registry.entries.lock().expect("registry poisoned").clone();
        let mut names_here: Vec<&'static str> = Vec::new();
        for entry in snapshot {
            if seen.contains(entry.name) {
                duplicates += 1;
                eprintln!(
                    "vsj-obs: metric name {} registered in more than one registry; \
                     keeping the first registration",
                    entry.name
                );
                continue;
            }
            names_here.push(entry.name);
            entries.push(entry);
        }
        seen.extend(names_here);
    }
    entries.sort_by(|a, b| a.name.cmp(b.name).then_with(|| a.labels.cmp(b.labels)));
    render_entries(&entries, out);
    let _ = writeln!(
        out,
        "# HELP vsj_obs_duplicate_metric_names Metric entries dropped because their name was registered in more than one concatenated registry"
    );
    let _ = writeln!(out, "# TYPE vsj_obs_duplicate_metric_names gauge");
    let _ = writeln!(out, "vsj_obs_duplicate_metric_names {duplicates}");
    duplicates
}

/// Writes `{k="v",...}` (plus an optional `le` bound, `None` inside
/// `Some` meaning `+Inf`); writes nothing when there are no labels.
fn write_labels(
    out: &mut String,
    labels: &[(&'static str, &'static str)],
    le: Option<Option<u64>>,
) {
    use std::fmt::Write as _;
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(bound) = le {
        if !first {
            out.push(',');
        }
        match bound {
            Some(b) => {
                let _ = write!(out, "le=\"{b}\"");
            }
            None => out.push_str("le=\"+Inf\""),
        }
    }
    out.push('}');
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Strictly validates a Prometheus text exposition, returning the
/// number of sample lines.
///
/// Checks: every non-empty line is a `# HELP`, `# TYPE`, or sample
/// line; metric and label names are well-formed; label values are
/// properly quoted; sample values parse as numbers (or `+Inf`/`-Inf`/
/// `NaN`); a name is `# TYPE`d at most once and before its samples.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    let mut typed: Vec<&str> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            let detail = parts.next().unwrap_or("");
            match keyword {
                "HELP" => {
                    if !valid_metric_name(name) {
                        return Err(format!("line {n}: bad metric name in HELP: {name:?}"));
                    }
                }
                "TYPE" => {
                    if !valid_metric_name(name) {
                        return Err(format!("line {n}: bad metric name in TYPE: {name:?}"));
                    }
                    if !matches!(
                        detail,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {n}: unknown TYPE {detail:?}"));
                    }
                    if typed.contains(&name) {
                        return Err(format!("line {n}: duplicate TYPE for {name}"));
                    }
                    typed.push(name);
                }
                _ => return Err(format!("line {n}: unknown comment keyword {keyword:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        // Sample line: name[{labels}] value
        let (series, value) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => return Err(format!("line {n}: no value in sample line {line:?}")),
        };
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return Err(format!("line {n}: bad sample value {value:?}"));
        }
        let name = match series.split_once('{') {
            Some((name, labels)) => {
                let Some(labels) = labels.strip_suffix('}') else {
                    return Err(format!("line {n}: unterminated label set in {series:?}"));
                };
                validate_labels(labels).map_err(|e| format!("line {n}: {e}"))?;
                name
            }
            None => series,
        };
        if !valid_metric_name(name) {
            return Err(format!("line {n}: bad metric name {name:?}"));
        }
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        if !typed.contains(&name) && !typed.contains(&base) {
            return Err(format!("line {n}: sample for {name} precedes its TYPE"));
        }
        samples += 1;
    }
    Ok(samples)
}

/// Major page faults incurred by this process so far (`majflt` from
/// `/proc/self/stat`), or `None` where procfs is unavailable. A major
/// fault is a read that had to go to the backing store — for a service
/// mapping its checkpoint ("map + go"), the counter measures how much
/// of the mapped base has actually been paged in from cold disk, which
/// is the out-of-core tier's core residency signal.
pub fn major_page_faults() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // `comm` (field 2) is an arbitrary parenthesized string that may
    // itself contain spaces or ')'; everything after the *last* ')' is
    // reliably space-delimited, starting at field 3 (`state`). majflt
    // is field 12 overall, so index 9 of that tail.
    let tail = &stat[stat.rfind(')')? + 1..];
    tail.split_ascii_whitespace().nth(9)?.parse().ok()
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn validate_labels(labels: &str) -> Result<(), String> {
    // k="v",k="v" — values may contain escaped quotes.
    let mut rest = labels;
    while !rest.is_empty() {
        let Some((key, after_eq)) = rest.split_once('=') else {
            return Err(format!("label without '=': {rest:?}"));
        };
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("bad label name {key:?}"));
        }
        let Some(after_quote) = after_eq.strip_prefix('"') else {
            return Err(format!("label value not quoted after {key}"));
        };
        // Find the closing unescaped quote.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in after_quote.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let Some(end) = end else {
            return Err(format!("unterminated label value for {key}"));
        };
        rest = &after_quote[end + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {rest:?}"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// ObsOptions
// ---------------------------------------------------------------------------

/// Operational observability knobs. Like `DurabilityOptions` in
/// `vsj-service`, these are not part of any persisted configuration and
/// may differ across an engine's lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsOptions {
    /// First bucket bound (µs) of latency histograms.
    pub latency_first_bound_us: u64,
    /// Bucket count of latency histograms (0 disables recording — the
    /// measurement stub; see [`ObsOptions::stub`]).
    pub latency_buckets: usize,
    /// Bucket count of size histograms (batch sizes, pairs drawn).
    pub size_buckets: usize,
    /// Requests at or above this duration are captured into the
    /// slow-trace ring.
    pub slow_query_threshold: Duration,
    /// Capacity of the slow-trace ring buffer.
    pub trace_ring: usize,
}

impl Default for ObsOptions {
    fn default() -> Self {
        Self {
            latency_first_bound_us: 1,
            latency_buckets: 24,
            size_buckets: 32,
            slow_query_threshold: Duration::from_millis(100),
            trace_ring: 64,
        }
    }
}

impl ObsOptions {
    /// A stub used only to measure instrumentation overhead (histogram
    /// recording disabled). Production deployments keep the default —
    /// instrumentation is designed to be always-on.
    pub fn stub() -> Self {
        Self {
            latency_buckets: 0,
            size_buckets: 0,
            ..Self::default()
        }
    }

    /// The latency histogram spec these options describe.
    pub fn latency_spec(&self) -> HistogramSpec {
        HistogramSpec {
            first_bound: self.latency_first_bound_us,
            buckets: self.latency_buckets,
        }
    }

    /// The size histogram spec these options describe.
    pub fn size_spec(&self) -> HistogramSpec {
        HistogramSpec {
            first_bound: 1,
            buckets: self.size_buckets,
        }
    }

    /// Panics unless the options are internally valid.
    pub fn validate(&self) {
        self.latency_spec().validate();
        self.size_spec().validate();
        assert!(self.trace_ring >= 1, "trace_ring must be at least 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn major_page_faults_reads_procfs() {
        // Only asserts the parse path on platforms that have procfs;
        // elsewhere the helper degrades to None.
        if std::path::Path::new("/proc/self/stat").exists() {
            let faults = major_page_faults().expect("procfs stat line must parse");
            // Sanity: a fresh process has had *some* bounded fault
            // count; the parse must not have grabbed a pointer-sized
            // field like startcode.
            assert!(faults < 1 << 40, "implausible majflt {faults}");
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(10);
        g.add(3);
        g.sub(20); // saturates
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn ordered_snapshot_preserves_causal_inequalities() {
        // Writer increments upstream then downstream; the snapshot reads
        // downstream-first, so downstream ≤ upstream always holds.
        let upstream = Counter::new();
        let downstream = Counter::new();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let (u, d, stop) = (&upstream, &downstream, &stop);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    u.inc();
                    d.inc();
                }
            });
            for _ in 0..10_000 {
                let [down, up] = snapshot_ordered([d, u]);
                assert!(down <= up, "inversion: downstream {down} > upstream {up}");
            }
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let h = Histogram::new(HistogramSpec {
            first_bound: 4,
            buckets: 5, // bounds 4, 8, 16, 32, +Inf
        });
        assert_eq!(h.bucket_index(0), 0);
        assert_eq!(h.bucket_index(4), 0, "first bound is inclusive");
        assert_eq!(h.bucket_index(5), 1);
        assert_eq!(h.bucket_index(8), 1, "each bound is inclusive");
        assert_eq!(h.bucket_index(9), 2);
        assert_eq!(h.bucket_index(16), 2);
        assert_eq!(h.bucket_index(32), 3);
        assert_eq!(h.bucket_index(33), 4, "overflow bucket");
        assert_eq!(h.bucket_index(u64::MAX), 4);
        assert_eq!(h.bound(0), 4);
        assert_eq!(h.bound(3), 32);
        assert_eq!(h.bound(4), u64::MAX, "+Inf stand-in");
    }

    #[test]
    fn histogram_count_sum_max_and_percentiles() {
        let h = Histogram::new(HistogramSpec {
            first_bound: 1,
            buckets: 12,
        });
        // 100 observations: 1..=100.
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        // p50: rank 50 lands in bucket with bound 64 (33..=64 covers
        // ranks 33..=64).
        assert_eq!(h.p50(), 64);
        assert_eq!(h.p90(), 128.min(h.max()).max(h.p50()));
        assert!(h.p99() >= h.p90());
        assert!(h.quantile(1.0) >= h.p99());
        // Empty histogram answers zero everywhere.
        let empty = Histogram::new(HistogramSpec::latency_us());
        assert_eq!(empty.p99(), 0);
        assert_eq!(empty.count(), 0);
    }

    #[test]
    fn histogram_top_bucket_saturation() {
        let h = Histogram::new(HistogramSpec {
            first_bound: 1,
            buckets: 4, // bounds 1, 2, 4, +Inf
        });
        h.record(1_000_000);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        // Sum saturates semantics: wrapping is fine for the spec sizes we
        // use in practice, but max is exact.
        assert_eq!(h.max(), u64::MAX);
        // All mass in the overflow bucket: every quantile reports the max.
        assert_eq!(h.p50(), u64::MAX);
        assert_eq!(h.p99(), u64::MAX);
    }

    #[test]
    fn histogram_merge_adds_buckets() {
        let spec = HistogramSpec {
            first_bound: 1,
            buckets: 8,
        };
        let a = Histogram::new(spec);
        let b = Histogram::new(spec);
        for v in [1u64, 2, 3, 50] {
            a.record(v);
        }
        for v in [4u64, 100, 1000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 7);
        assert_eq!(a.sum(), 1 + 2 + 3 + 50 + 4 + 100 + 1000);
        assert_eq!(a.max(), 1000);
        assert_eq!(b.count(), 3, "merge source unchanged");
    }

    #[test]
    #[should_panic(expected = "different specs")]
    fn histogram_merge_rejects_mismatched_specs() {
        let a = Histogram::new(HistogramSpec {
            first_bound: 1,
            buckets: 8,
        });
        let b = Histogram::new(HistogramSpec {
            first_bound: 2,
            buckets: 8,
        });
        a.merge(&b);
    }

    #[test]
    fn disabled_histogram_is_a_no_op() {
        let h = Histogram::disabled();
        h.record(42);
        h.record_duration(Duration::from_secs(1));
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn span_records_into_histogram() {
        let h = Histogram::new(HistogramSpec::latency_us());
        let span = Span::start(&h);
        std::thread::sleep(Duration::from_millis(2));
        let us = span.finish();
        assert!(us >= 2_000, "slept 2ms but span says {us}µs");
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), us);
        // Dropping an unfinished span records too.
        drop(Span::start(&h));
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn trace_holds_stages_in_order_and_caps() {
        let mut t = Trace::new("/estimate");
        t.stage("queue_wait", 10);
        t.stage("batch_wait", 20);
        t.stage("sampling", 30);
        assert_eq!(
            t.stages()
                .iter()
                .map(|s| (s.name, s.micros))
                .collect::<Vec<_>>(),
            vec![("queue_wait", 10), ("batch_wait", 20), ("sampling", 30)]
        );
        for i in 0..20 {
            t.stage("extra", i);
        }
        assert_eq!(t.stages().len(), MAX_TRACE_STAGES, "capacity capped");
    }

    #[test]
    fn trace_ring_threshold_and_wraparound() {
        let ring = TraceRing::new(4, Duration::from_micros(100));
        let mut fast = Trace::new("fast");
        fast.total_us = 99;
        assert!(!ring.offer(fast), "below threshold is not captured");
        assert_eq!(ring.captured(), 0);

        // Offer 10 slow traces into a 4-slot ring.
        for i in 1..=10u64 {
            let mut t = Trace::new("slow");
            t.total_us = 100 + i;
            t.stage("sampling", i);
            assert!(ring.offer(t));
        }
        assert_eq!(ring.captured(), 10);
        let recent = ring.recent();
        assert_eq!(recent.len(), 4, "ring holds only the last 4");
        // Newest first: seqs 10, 9, 8, 7 with matching payloads.
        assert_eq!(
            recent.iter().map(|t| t.seq).collect::<Vec<_>>(),
            vec![10, 9, 8, 7]
        );
        assert_eq!(recent[0].total_us, 110);
        assert_eq!(recent[3].total_us, 107);
        assert_eq!(recent[0].stages()[0].micros, 10);
    }

    #[test]
    fn trace_ring_partial_fill_reads_newest_first() {
        let ring = TraceRing::new(8, Duration::ZERO);
        for i in 1..=3u64 {
            let mut t = Trace::new("t");
            t.total_us = i;
            ring.offer(t);
        }
        let recent = ring.recent();
        assert_eq!(
            recent.iter().map(|t| t.total_us).collect::<Vec<_>>(),
            vec![3, 2, 1]
        );
    }

    #[test]
    fn registry_renders_valid_exposition() {
        let registry = Registry::new();
        let requests = registry.counter_with(
            "vsj_test_requests_total",
            "Requests handled",
            &[("route", "/estimate")],
        );
        let other = registry.counter_with(
            "vsj_test_requests_total",
            "Requests handled",
            &[("route", "/insert")],
        );
        let depth = registry.gauge("vsj_test_queue_depth", "Queue depth");
        let latency = registry.histogram(
            "vsj_test_latency_us",
            "Request latency (µs)",
            HistogramSpec {
                first_bound: 1,
                buckets: 4,
            },
        );
        requests.add(3);
        other.inc();
        depth.set(7);
        latency.record(1);
        latency.record(3);
        latency.record(999);

        let text = registry.render();
        let samples = validate_exposition(&text).expect("exposition must validate");
        // 2 counter series + 1 gauge + (4 buckets + sum + count) = 9.
        assert_eq!(samples, 9);
        assert!(text.contains("# TYPE vsj_test_requests_total counter"));
        assert_eq!(
            text.matches("# TYPE vsj_test_requests_total").count(),
            1,
            "TYPE once per name"
        );
        assert!(text.contains("vsj_test_requests_total{route=\"/estimate\"} 3"));
        assert!(text.contains("vsj_test_requests_total{route=\"/insert\"} 1"));
        assert!(text.contains("vsj_test_queue_depth 7"));
        assert!(text.contains("vsj_test_latency_us_bucket{le=\"1\"} 1"));
        assert!(text.contains("vsj_test_latency_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("vsj_test_latency_us_sum 1003"));
        assert!(text.contains("vsj_test_latency_us_count 3"));
    }

    #[test]
    fn registry_returns_existing_handle_on_reregistration() {
        let registry = Registry::new();
        let a = registry.counter("vsj_dup_total", "dup");
        let b = registry.counter("vsj_dup_total", "dup");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "both handles hit the same counter");
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        for bad in [
            "vsj_untyped 1\n",                           // sample before TYPE
            "# TYPE x banana\nx 1\n",                    // unknown type
            "# TYPE 9bad counter\n",                     // bad name
            "# TYPE x counter\nx{le=1} 1\n",             // unquoted label
            "# TYPE x counter\nx{le=\"1\"} pear\n",      // bad value
            "# TYPE x counter\n# TYPE x counter\nx 1\n", // duplicate TYPE
            "# TYPE x counter\nx\n",                     // no value
        ] {
            assert!(
                validate_exposition(bad).is_err(),
                "{bad:?} must not validate"
            );
        }
        let good = "# HELP x help text here\n# TYPE x counter\nx{a=\"b\",c=\"d\"} 12\nx 5\n";
        assert_eq!(validate_exposition(good).unwrap(), 2);
    }

    #[test]
    fn obs_options_specs() {
        let options = ObsOptions::default();
        options.validate();
        assert_eq!(options.latency_spec().buckets, 24);
        let stub = ObsOptions::stub();
        stub.validate();
        assert_eq!(stub.latency_spec().buckets, 0);
        assert_eq!(Histogram::new(stub.latency_spec()).count(), 0);
    }
    #[test]
    #[should_panic(expected = "cannot merge histograms with different specs")]
    fn merge_rejects_mismatched_specs() {
        let a = Histogram::new(HistogramSpec {
            first_bound: 1,
            buckets: 8,
        });
        let b = Histogram::new(HistogramSpec {
            first_bound: 1,
            buckets: 16,
        });
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "cannot merge histograms with different specs")]
    fn merge_rejects_mismatched_first_bound() {
        let a = Histogram::new(HistogramSpec {
            first_bound: 1,
            buckets: 8,
        });
        let b = Histogram::new(HistogramSpec {
            first_bound: 2,
            buckets: 8,
        });
        a.merge(&b);
    }

    #[test]
    fn quantile_boundaries() {
        let h = Histogram::new(HistogramSpec {
            first_bound: 1,
            buckets: 8,
        });
        // Empty: every quantile (including the boundaries) is 0.
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
        for v in [1, 2, 4, 100] {
            h.record(v);
        }
        // q = 0.0: rank clamps to 1 — the smallest observation's bucket.
        assert_eq!(h.quantile(0.0), 1);
        // q = 1.0: rank = count — here the overflow-adjacent max wins.
        assert_eq!(h.quantile(1.0), 100);
        assert!(h.quantile(0.0) <= h.quantile(1.0));
    }

    #[test]
    fn render_registries_dedupes_across_registries() {
        let engine = Registry::new();
        let server = Registry::new();
        let a = engine.counter("dup_total", "claimed by the engine");
        a.add(3);
        // Same name in the second registry: naive concatenation would
        // emit two TYPE blocks and fail validation.
        let b = server.counter("dup_total", "claimed by the server");
        b.add(9);
        server.counter("only_server_total", "unique").inc();

        let mut naive = String::new();
        engine.render_into(&mut naive);
        server.render_into(&mut naive);
        assert!(
            validate_exposition(&naive).is_err(),
            "naive concatenation of a shared name must fail validation"
        );

        let mut merged = String::new();
        let dropped = render_registries(&[&engine, &server], &mut merged);
        assert_eq!(dropped, 1);
        validate_exposition(&merged).expect("merged exposition must validate");
        assert!(merged.contains("dup_total 3"), "first registry wins");
        assert!(!merged.contains("dup_total 9"));
        assert!(merged.contains("only_server_total 1"));
        assert!(
            merged.contains("vsj_obs_duplicate_metric_names 1"),
            "the warning series must carry the drop count"
        );
    }

    #[test]
    fn render_registries_keeps_label_variants_within_one_registry() {
        let r = Registry::new();
        r.counter_with("family_total", "labelled", &[("kind", "a")])
            .inc();
        r.counter_with("family_total", "labelled", &[("kind", "b")])
            .add(2);
        let mut out = String::new();
        let dropped = render_registries(&[&r], &mut out);
        assert_eq!(dropped, 0, "label variants of one series are not dupes");
        validate_exposition(&out).expect("must validate");
        assert!(out.contains("family_total{kind=\"a\"} 1"));
        assert!(out.contains("family_total{kind=\"b\"} 2"));
        assert!(out.contains("vsj_obs_duplicate_metric_names 0"));
    }
}
