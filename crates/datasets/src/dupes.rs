//! Near-duplicate cluster planting.
//!
//! The load-bearing property of the paper's corpora is the *shape* of the
//! pair-similarity distribution: the overwhelming majority of pairs sit
//! near zero similarity (random topical overlap), while a thin tail of
//! near-duplicate records (re-listed publications, re-posted wire
//! stories) carries the joins at τ ≥ 0.5 — e.g. DBLP has J(0.9) = 42K out
//! of 3.2·10¹¹ pairs (§6.2). A pure Zipf corpus has essentially no such
//! tail, so the generators plant it explicitly:
//!
//! * a fraction of documents are designated cluster seeds;
//! * each seed spawns 1–3 mutated copies;
//! * each cluster draws its own mutation intensity, spreading cluster
//!   similarities across `[~0.4, ~1.0]` so every threshold in the
//!   experiment grid has nonzero (and strongly varying) join mass.

use vsj_sampling::Rng;

/// Configuration for duplicate planting over token documents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DuplicatePlanter {
    /// Fraction of base documents that seed a duplicate cluster.
    pub seed_fraction: f64,
    /// Maximum mutated copies per seed (uniform in `1..=max_copies`).
    pub max_copies: usize,
    /// Lower bound of the per-cluster token drop probability.
    pub min_mutation: f64,
    /// Upper bound of the per-cluster token drop probability.
    pub max_mutation: f64,
    /// Vocabulary bound for replacement tokens.
    pub vocab: usize,
}

impl DuplicatePlanter {
    /// Plants duplicates into `docs` (token multisets), returning the
    /// expanded corpus. The output order interleaves originals and copies
    /// deterministically, then is shuffled so duplicate pairs are not
    /// id-adjacent (id locality would make cross sampling unrealistically
    /// lucky).
    pub fn plant<R: Rng + ?Sized>(
        &self,
        mut docs: Vec<Vec<(u32, u32)>>,
        rng: &mut R,
    ) -> Vec<Vec<(u32, u32)>> {
        assert!(
            (0.0..=1.0).contains(&self.seed_fraction),
            "seed_fraction must be a probability"
        );
        assert!(
            self.min_mutation <= self.max_mutation && self.min_mutation >= 0.0,
            "mutation range invalid"
        );
        let base = docs.len();
        let mut copies = Vec::new();
        for doc in docs.iter().take(base) {
            if !rng.bernoulli(self.seed_fraction) {
                continue;
            }
            let n_copies = 1 + rng.below_usize(self.max_copies.max(1));
            // Per-cluster intensity: tight clusters (≈min) produce τ≈1
            // joins, loose ones (≈max) produce mid-τ joins. Half the
            // clusters sit at the minimum exactly and the rest follow a
            // square-biased spread — real near-duplicate populations
            // (re-listed publications, reposted wire stories) are
            // dominated by exact or one-word-off copies, which is what
            // gives the paper's corpora their high P(H|T) at τ = 0.9
            // (0.86 in Table 1).
            let mutation = if rng.bernoulli(0.5) {
                self.min_mutation
            } else {
                let u = rng.next_f64();
                self.min_mutation + u * u * (self.max_mutation - self.min_mutation)
            };
            for _ in 0..n_copies {
                copies.push(self.mutate(doc, mutation, rng));
            }
        }
        docs.extend(copies);
        rng.shuffle(&mut docs);
        docs
    }

    /// One mutated copy: each token entry is dropped with probability
    /// `mutation` and, independently, a replacement token is appended with
    /// the same probability (so expected length is preserved and the copy
    /// drifts in *content*, not size).
    fn mutate<R: Rng + ?Sized>(
        &self,
        doc: &[(u32, u32)],
        mutation: f64,
        rng: &mut R,
    ) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = Vec::with_capacity(doc.len() + 2);
        for &(d, tf) in doc {
            if !rng.bernoulli(mutation) {
                out.push((d, tf));
            }
            if rng.bernoulli(mutation) {
                let replacement = rng.below(self.vocab as u64) as u32;
                out.push((replacement, 1));
            }
        }
        if out.is_empty() {
            // Never emit an empty record: keep one original token.
            out.push(doc[rng.below_usize(doc.len().max(1)).min(doc.len() - 1)]);
        }
        out.sort_unstable_by_key(|&(d, _)| d);
        // Merge duplicate dimensions from replacement collisions.
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(out.len());
        for (d, tf) in out {
            match merged.last_mut() {
                Some((ld, ltf)) if *ld == d => *ltf += tf,
                _ => merged.push((d, tf)),
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsj_sampling::Xoshiro256;
    use vsj_vector::{Cosine, Similarity, SparseVector, VectorCollection};

    fn planter() -> DuplicatePlanter {
        DuplicatePlanter {
            seed_fraction: 0.3,
            max_copies: 2,
            min_mutation: 0.02,
            max_mutation: 0.25,
            vocab: 500,
        }
    }

    fn base_docs(n: usize, seed: u64) -> Vec<Vec<(u32, u32)>> {
        let mut rng = Xoshiro256::seeded(seed);
        (0..n)
            .map(|_| {
                let mut doc: Vec<(u32, u32)> =
                    (0..10).map(|_| (rng.below(500) as u32, 1)).collect();
                doc.sort_unstable_by_key(|&(d, _)| d);
                doc.dedup_by_key(|e| e.0);
                doc
            })
            .collect()
    }

    #[test]
    fn corpus_grows_by_expected_amount() {
        let mut rng = Xoshiro256::seeded(1);
        let docs = planter().plant(base_docs(1000, 7), &mut rng);
        // E[copies] = 1000 * 0.3 * 1.5 = 450.
        assert!(docs.len() > 1300 && docs.len() < 1600, "got {}", docs.len());
    }

    #[test]
    fn planting_creates_high_similarity_tail() {
        let mut rng = Xoshiro256::seeded(2);
        let p = planter();
        let docs = base_docs(400, 9);
        let planted = p.plant(docs.clone(), &mut rng);
        let to_coll = |ds: &[Vec<(u32, u32)>]| -> VectorCollection {
            ds.iter()
                .map(|d| SparseVector::binary_from_members(d.iter().map(|&(x, _)| x).collect()))
                .collect()
        };
        let count_high = |coll: &VectorCollection| -> u64 {
            let mut c = 0u64;
            for a in 0..coll.len() as u32 {
                for b in (a + 1)..coll.len() as u32 {
                    if Cosine.sim(coll.vector(a), coll.vector(b)) >= 0.8 {
                        c += 1;
                    }
                }
            }
            c
        };
        let before = count_high(&to_coll(&docs));
        let after = count_high(&to_coll(&planted));
        assert!(
            after >= before + 20,
            "planting added too few high-sim pairs: {before} -> {after}"
        );
    }

    #[test]
    fn mutation_zero_yields_exact_copies() {
        let p = DuplicatePlanter {
            seed_fraction: 1.0,
            max_copies: 1,
            min_mutation: 0.0,
            max_mutation: 0.0,
            vocab: 100,
        };
        let mut rng = Xoshiro256::seeded(3);
        let docs = base_docs(50, 11);
        let planted = p.plant(docs.clone(), &mut rng);
        assert_eq!(planted.len(), 100);
        // Every original doc must appear at least twice (itself + copy).
        use std::collections::HashMap;
        let mut counts: HashMap<&[(u32, u32)], u32> = HashMap::new();
        for d in &planted {
            *counts.entry(d.as_slice()).or_default() += 1;
        }
        for d in &docs {
            assert!(
                counts.get(d.as_slice()).copied().unwrap_or(0) >= 2,
                "doc lost its exact copy"
            );
        }
    }

    #[test]
    fn mutated_docs_are_never_empty() {
        let p = DuplicatePlanter {
            seed_fraction: 1.0,
            max_copies: 3,
            min_mutation: 0.95,
            max_mutation: 0.99, // nearly everything dropped
            vocab: 100,
        };
        let mut rng = Xoshiro256::seeded(4);
        let planted = p.plant(base_docs(100, 13), &mut rng);
        for d in &planted {
            assert!(!d.is_empty());
            // Sorted, merged dimensions.
            for w in d.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
        }
    }

    #[test]
    fn zero_seed_fraction_only_shuffles() {
        let p = DuplicatePlanter {
            seed_fraction: 0.0,
            ..planter()
        };
        let mut rng = Xoshiro256::seeded(5);
        let docs = base_docs(100, 15);
        let planted = p.plant(docs.clone(), &mut rng);
        assert_eq!(planted.len(), docs.len());
        let mut a = docs;
        let mut b = planted;
        a.sort();
        b.sort();
        assert_eq!(a, b, "content must be preserved");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_fraction_rejected() {
        let p = DuplicatePlanter {
            seed_fraction: 1.5,
            ..planter()
        };
        p.plant(vec![vec![(1, 1)]], &mut Xoshiro256::seeded(0));
    }
}
