//! Synthetic evaluation datasets.
//!
//! The paper evaluates on three real corpora (Appendix C.1): DBLP
//! (794,016 binary author/title vectors, ~56K dims, 3–219 features,
//! avg 14), NYTimes (149,649 TF-IDF vectors, ~100K dims, avg 232
//! features) and PubMed (400,151 TF-IDF vectors, ~140K dims). Those files
//! are not redistributable, so this crate builds statistical analogues:
//!
//! * [`zipf`] — the power-law word-frequency model underlying all three
//!   corpora;
//! * [`textgen`] — a bag-of-words corpus generator: Zipf vocabulary,
//!   log-normal document lengths, binary or TF-IDF weighting (IDF from
//!   the *generated* corpus, not an approximation);
//! * [`dupes`] — near-duplicate cluster planting. This is the load-bearing
//!   part of the substitution: the paper's high-threshold joins are
//!   dominated by near-duplicate records (42K pairs at τ=0.9 in DBLP,
//!   selectivity ~1e-7), and estimators are stressed exactly by that thin
//!   high-similarity tail. Clusters with per-cluster mutation rates spread
//!   the tail across the whole τ ∈ [0.5, 1.0] range;
//! * [`dblp`] / [`nyt`] / [`pubmed`] — presets matching each corpus's
//!   published statistics, scalable by a fraction of the original `n`;
//! * [`io`] — a compact binary container for generated collections so
//!   ground truth can be cached against a content hash.
//!
//! Determinism: generation is a pure function of `(preset, scale, seed)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dblp;
pub mod dupes;
pub mod io;
pub mod nyt;
pub mod preset;
pub mod pubmed;
pub mod textgen;
pub mod zipf;

pub use dblp::DblpLike;
pub use nyt::NytLike;
pub use pubmed::PubmedLike;
pub use textgen::{LengthModel, TextModel, Weighting};
pub use zipf::Zipf;

use vsj_vector::VectorCollection;

/// Registry of the three paper datasets, keyed by name — the interface
/// the experiment harness uses (`repro fig2 --dataset dblp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// DBLP-like: binary bag-of-words, short documents.
    Dblp,
    /// NYTimes-like: TF-IDF, long documents.
    Nyt,
    /// PubMed-like: TF-IDF, largely dissimilar records.
    Pubmed,
}

impl Dataset {
    /// Parses a dataset name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "dblp" => Some(Self::Dblp),
            "nyt" | "nytimes" => Some(Self::Nyt),
            "pubmed" => Some(Self::Pubmed),
            _ => None,
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Dblp => "dblp",
            Self::Nyt => "nyt",
            Self::Pubmed => "pubmed",
        }
    }

    /// The paper's full-size `n` for this corpus.
    pub fn full_size(self) -> usize {
        match self {
            Self::Dblp => 794_016,
            Self::Nyt => 149_649,
            Self::Pubmed => 400_151,
        }
    }

    /// The `k` the paper uses on this dataset (20 for DBLP/NYT; 5 for the
    /// largely-dissimilar PubMed, per Appendix C.4).
    pub fn paper_k(self) -> usize {
        match self {
            Self::Dblp | Self::Nyt => 20,
            Self::Pubmed => 5,
        }
    }

    /// Generates the scaled dataset: `n = full_size · scale` vectors.
    pub fn generate(self, scale: f64, seed: u64) -> VectorCollection {
        match self {
            Self::Dblp => DblpLike::scaled(scale).generate(seed),
            Self::Nyt => NytLike::scaled(scale).generate(seed),
            Self::Pubmed => PubmedLike::scaled(scale).generate(seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_roundtrip() {
        for d in [Dataset::Dblp, Dataset::Nyt, Dataset::Pubmed] {
            assert_eq!(Dataset::from_name(d.name()), Some(d));
        }
        assert_eq!(Dataset::from_name("NYTimes"), Some(Dataset::Nyt));
        assert_eq!(Dataset::from_name("unknown"), None);
    }

    #[test]
    fn paper_constants() {
        assert_eq!(Dataset::Dblp.full_size(), 794_016);
        assert_eq!(Dataset::Pubmed.paper_k(), 5);
        assert_eq!(Dataset::Nyt.paper_k(), 20);
    }
}
