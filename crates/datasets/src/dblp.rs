//! DBLP-like corpus: binary author/title bag-of-words vectors.
//!
//! Target statistics (Appendix C.1 of the paper): 794,016 publications,
//! ~56,000 distinct words, binary weights, average 14 features per vector,
//! minimum 3, maximum 219. The duplicate tail is calibrated so the scaled
//! corpus reproduces the paper's selectivity cliff (§6.2): ~30% of pairs
//! join at τ = 0.1 while only ~10⁻⁵ % join at τ = 0.9.

use crate::preset::CorpusPreset;
use crate::textgen::Weighting;
use vsj_vector::VectorCollection;

/// Generator for DBLP-like collections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DblpLike {
    preset: CorpusPreset,
    n: usize,
    vocab: usize,
}

impl DblpLike {
    /// The preset recipe (exposed for documentation and ablations).
    pub fn preset() -> CorpusPreset {
        CorpusPreset {
            full_size: 794_016,
            full_vocab: 56_000,
            min_vocab: 1_500,
            zipf_exponent: 0.85,
            mean_tokens: 15.0,
            sigma_tokens: 0.45,
            min_tokens: 3,
            max_tokens: 219,
            weighting: Weighting::Binary,
            dup_seed_fraction: 0.12,
            dup_max_copies: 3,
            dup_mutation: (0.0, 0.35),
        }
    }

    /// A generator producing `full_size · scale` vectors (`0 < scale ≤ 1`).
    pub fn scaled(scale: f64) -> Self {
        let preset = Self::preset();
        Self {
            n: preset.size_for_scale(scale),
            vocab: preset.vocab_for_scale(scale),
            preset,
        }
    }

    /// A generator producing exactly `n` vectors with a vocabulary scaled
    /// to match.
    pub fn with_size(n: usize) -> Self {
        let preset = Self::preset();
        let scale = (n as f64 / preset.full_size as f64).clamp(1e-6, 1.0);
        Self {
            n,
            vocab: preset.vocab_for_scale(scale),
            preset,
        }
    }

    /// Number of vectors this generator will produce.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when configured for zero vectors (never via constructors).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Vocabulary size in use.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Generates the collection (pure function of the seed).
    pub fn generate(&self, seed: u64) -> VectorCollection {
        self.preset.generate_n(self.n, self.vocab, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preset::{check_shape, check_similarity_tail};

    #[test]
    fn shape_matches_paper_statistics() {
        let coll = DblpLike::with_size(1500).generate(42);
        // Binary, avg features near 14 (dedup trims the 15-token mean),
        // never below 1.
        check_shape(&coll, 1500, true, (8.0, 16.0));
        let stats = coll.stats();
        assert!(stats.max_nnz <= 219);
    }

    #[test]
    fn has_thin_high_similarity_tail() {
        let coll = DblpLike::with_size(800).generate(7);
        // Some true near-duplicate pairs at τ=0.9, but far below 1% of
        // all pairs.
        check_similarity_tail(&coll, 0.9, 5, 0.01);
    }

    #[test]
    fn low_threshold_mass_is_substantial() {
        use vsj_vector::{Cosine, Similarity};
        let coll = DblpLike::with_size(400).generate(3);
        let mut low = 0u64;
        let mut total = 0u64;
        for a in 0..400u32 {
            for b in (a + 1)..400 {
                total += 1;
                if Cosine.sim(coll.vector(a), coll.vector(b)) >= 0.1 {
                    low += 1;
                }
            }
        }
        let frac = low as f64 / total as f64;
        // The paper reports 33% at τ=0.1 on real DBLP; the analogue must
        // be in the same regime (tens of percent, not permille).
        assert!(frac > 0.05, "τ=0.1 selectivity too small: {frac}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = DblpLike::with_size(300).generate(9);
        let b = DblpLike::with_size(300).generate(9);
        assert_eq!(a.vectors(), b.vectors());
        let c = DblpLike::with_size(300).generate(10);
        assert_ne!(a.vectors(), c.vectors());
    }

    #[test]
    fn scaled_sizes() {
        let g = DblpLike::scaled(0.01);
        assert_eq!(g.len(), 7940);
        assert!(g.vocab() >= 1500);
        let tiny = DblpLike::scaled(1e-9_f64.max(1e-6));
        assert!(tiny.len() >= 64, "floor must apply");
    }
}
