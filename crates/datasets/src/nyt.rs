//! NYTimes-like corpus: TF-IDF weighted news articles.
//!
//! Target statistics (Appendix C.1): 149,649 articles, ~100K-dimensional
//! TF-IDF vectors, average 232 features. News corpora carry a visible
//! near-duplicate population (wire stories republished with light edits),
//! which is what keeps P(T|H) ≈ 0.7 across the threshold range in the
//! paper's Table 2.

use crate::preset::CorpusPreset;
use crate::textgen::Weighting;
use vsj_vector::VectorCollection;

/// Generator for NYT-like collections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NytLike {
    preset: CorpusPreset,
    n: usize,
    vocab: usize,
}

impl NytLike {
    /// The preset recipe.
    pub fn preset() -> CorpusPreset {
        CorpusPreset {
            full_size: 149_649,
            full_vocab: 102_000,
            min_vocab: 4_000,
            zipf_exponent: 1.0,
            mean_tokens: 290.0, // ≈232 distinct features after tf merging
            sigma_tokens: 0.45,
            min_tokens: 40,
            max_tokens: 2_500,
            weighting: Weighting::TfIdf,
            dup_seed_fraction: 0.10,
            dup_max_copies: 2,
            dup_mutation: (0.0, 0.30),
        }
    }

    /// A generator producing `full_size · scale` vectors.
    pub fn scaled(scale: f64) -> Self {
        let preset = Self::preset();
        Self {
            n: preset.size_for_scale(scale),
            vocab: preset.vocab_for_scale(scale),
            preset,
        }
    }

    /// A generator producing exactly `n` vectors.
    pub fn with_size(n: usize) -> Self {
        let preset = Self::preset();
        let scale = (n as f64 / preset.full_size as f64).clamp(1e-6, 1.0);
        Self {
            n,
            vocab: preset.vocab_for_scale(scale),
            preset,
        }
    }

    /// Number of vectors this generator will produce.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when configured for zero vectors (never via constructors).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Vocabulary size in use.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Generates the collection.
    pub fn generate(&self, seed: u64) -> VectorCollection {
        self.preset.generate_n(self.n, self.vocab, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preset::{check_shape, check_similarity_tail};

    #[test]
    fn shape_matches_paper_statistics() {
        let coll = NytLike::with_size(400).generate(42);
        // TF-IDF (not binary), long documents.
        check_shape(&coll, 400, false, (120.0, 300.0));
    }

    #[test]
    fn has_near_duplicate_tail() {
        let coll = NytLike::with_size(300).generate(5);
        check_similarity_tail(&coll, 0.8, 3, 0.02);
    }

    #[test]
    fn weights_are_tfidf_like() {
        let coll = NytLike::with_size(100).generate(1);
        // Weight dispersion: a pure-binary corpus has a single distinct
        // weight; TF-IDF must produce many.
        let mut distinct = std::collections::HashSet::new();
        for (_, v) in coll.iter() {
            for (_, w) in v.iter() {
                distinct.insert(w.to_bits());
            }
        }
        assert!(
            distinct.len() > 50,
            "only {} distinct weights",
            distinct.len()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = NytLike::with_size(120).generate(3);
        let b = NytLike::with_size(120).generate(3);
        assert_eq!(a.vectors(), b.vectors());
    }
}
