//! PubMed-like corpus: TF-IDF abstracts, largely dissimilar.
//!
//! Target statistics (Appendix C.1): 400,151 abstracts, ~140K-dimensional
//! TF-IDF vectors. The paper singles PubMed out as "largely dissimilar"
//! (Appendix C.4): its near-duplicate population is thin and loose, which
//! is why small `k` (5) works best there — the bucket stratum needs help
//! capturing enough mass. The preset keeps the duplicate tail an order of
//! magnitude thinner than NYT's and biases mutation rates upward.

use crate::preset::CorpusPreset;
use crate::textgen::Weighting;
use vsj_vector::VectorCollection;

/// Generator for PubMed-like collections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PubmedLike {
    preset: CorpusPreset,
    n: usize,
    vocab: usize,
}

impl PubmedLike {
    /// The preset recipe.
    pub fn preset() -> CorpusPreset {
        CorpusPreset {
            full_size: 400_151,
            full_vocab: 141_000,
            min_vocab: 5_000,
            zipf_exponent: 1.05,
            mean_tokens: 130.0,
            sigma_tokens: 0.40,
            min_tokens: 20,
            max_tokens: 1_200,
            weighting: Weighting::TfIdf,
            dup_seed_fraction: 0.015,
            dup_max_copies: 2,
            dup_mutation: (0.05, 0.45),
        }
    }

    /// A generator producing `full_size · scale` vectors.
    pub fn scaled(scale: f64) -> Self {
        let preset = Self::preset();
        Self {
            n: preset.size_for_scale(scale),
            vocab: preset.vocab_for_scale(scale),
            preset,
        }
    }

    /// A generator producing exactly `n` vectors.
    pub fn with_size(n: usize) -> Self {
        let preset = Self::preset();
        let scale = (n as f64 / preset.full_size as f64).clamp(1e-6, 1.0);
        Self {
            n,
            vocab: preset.vocab_for_scale(scale),
            preset,
        }
    }

    /// Number of vectors this generator will produce.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when configured for zero vectors (never via constructors).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Vocabulary size in use.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Generates the collection.
    pub fn generate(&self, seed: u64) -> VectorCollection {
        self.preset.generate_n(self.n, self.vocab, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nyt::NytLike;
    use crate::preset::check_shape;
    use vsj_vector::{Cosine, Similarity, VectorCollection};

    fn tail_fraction(coll: &VectorCollection, tau: f64) -> f64 {
        let n = coll.len() as u32;
        let mut high = 0u64;
        let mut total = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                total += 1;
                if Cosine.sim(coll.vector(a), coll.vector(b)) >= tau {
                    high += 1;
                }
            }
        }
        high as f64 / total as f64
    }

    #[test]
    fn shape_matches_paper_statistics() {
        let coll = PubmedLike::with_size(400).generate(42);
        check_shape(&coll, 400, false, (60.0, 140.0));
    }

    #[test]
    fn dissimilarity_thinner_than_nyt() {
        // The defining property: PubMed's high-τ tail is much thinner
        // than NYT's at matched size.
        let pm = PubmedLike::with_size(500).generate(11);
        let nyt = NytLike::with_size(500).generate(11);
        let pm_tail = tail_fraction(&pm, 0.7);
        let nyt_tail = tail_fraction(&nyt, 0.7);
        assert!(
            pm_tail < nyt_tail / 2.0,
            "pubmed tail {pm_tail} not ≪ nyt tail {nyt_tail}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = PubmedLike::with_size(150).generate(8);
        let b = PubmedLike::with_size(150).generate(8);
        assert_eq!(a.vectors(), b.vectors());
    }
}
