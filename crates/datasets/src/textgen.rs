//! Bag-of-words corpus generation.
//!
//! A document is a multiset of tokens drawn from a Zipf vocabulary with a
//! log-normally distributed length; the corpus is then weighted either as
//! binary presence vectors (DBLP) or TF-IDF vectors (NYT, PubMed), with
//! IDF computed from the *generated* corpus — the same pipeline the
//! paper's real datasets went through.

use crate::zipf::Zipf;
use vsj_sampling::{gauss::standard_normal, Rng};
use vsj_vector::{SparseVector, SparseVectorBuilder, VectorCollection};

/// Document-length model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LengthModel {
    /// Fixed length.
    Fixed(usize),
    /// `exp(N(mu, sigma²))`, rounded, clamped to `[min, max]`. Matches the
    /// heavy-tailed length profiles the paper reports (DBLP: avg 14,
    /// min 3, max 219).
    LogNormal {
        /// Mean of the underlying normal (log-tokens).
        mu: f64,
        /// Std of the underlying normal.
        sigma: f64,
        /// Smallest permitted token count.
        min: usize,
        /// Largest permitted token count.
        max: usize,
    },
}

impl LengthModel {
    /// Draws a document length.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match *self {
            Self::Fixed(n) => n,
            Self::LogNormal {
                mu,
                sigma,
                min,
                max,
            } => {
                let z = standard_normal(rng);
                let len = (mu + sigma * z).exp().round() as usize;
                len.clamp(min, max)
            }
        }
    }
}

/// Term-weighting scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weighting {
    /// Presence/absence (set semantics) — the DBLP configuration.
    Binary,
    /// `(1 + ln tf) · ln(1 + N/df)`, IDF from the generated corpus.
    TfIdf,
}

/// Corpus generator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TextModel {
    /// Vocabulary size (dimensionality bound).
    pub vocab: usize,
    /// Zipf exponent of the word-frequency law.
    pub zipf_exponent: f64,
    /// Document length model.
    pub length: LengthModel,
    /// Weighting scheme.
    pub weighting: Weighting,
}

impl TextModel {
    /// Generates `n` documents as raw token multisets
    /// (`(dimension, term frequency)` lists).
    pub fn generate_token_docs<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> Vec<Vec<(u32, u32)>> {
        let zipf = Zipf::new(self.vocab, self.zipf_exponent);
        let mut docs = Vec::with_capacity(n);
        let mut counts: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for _ in 0..n {
            let len = self.length.sample(rng);
            counts.clear();
            for _ in 0..len {
                *counts.entry(zipf.sample(rng)).or_insert(0) += 1;
            }
            let mut doc: Vec<(u32, u32)> = counts.iter().map(|(&d, &c)| (d, c)).collect();
            doc.sort_unstable_by_key(|&(d, _)| d);
            docs.push(doc);
        }
        docs
    }

    /// Weights token documents into vectors according to the configured
    /// scheme. Exposed separately so duplicate planting can operate on the
    /// token level (mutating *words*, like a real near-duplicate record)
    /// before weighting.
    pub fn weight_docs(&self, docs: &[Vec<(u32, u32)>]) -> VectorCollection {
        match self.weighting {
            Weighting::Binary => docs
                .iter()
                .map(|doc| SparseVector::binary_from_members(doc.iter().map(|&(d, _)| d).collect()))
                .collect(),
            Weighting::TfIdf => {
                let n = docs.len();
                let mut df = vec![0u32; self.vocab];
                for doc in docs {
                    for &(d, _) in doc {
                        df[d as usize] += 1;
                    }
                }
                docs.iter()
                    .map(|doc| {
                        let mut b = SparseVectorBuilder::with_capacity(doc.len());
                        for &(d, tf) in doc {
                            let idf = (1.0 + n as f64 / f64::from(df[d as usize].max(1))).ln();
                            let w = (1.0 + f64::from(tf).ln()) * idf;
                            b.add(d, w as f32);
                        }
                        b.build().expect("finite tf-idf weights")
                    })
                    .collect()
            }
        }
    }

    /// Full pipeline: tokens → weighted collection.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> VectorCollection {
        let docs = self.generate_token_docs(n, rng);
        self.weight_docs(&docs)
    }
}

/// Derives the log-normal `(mu, sigma)` hitting a target mean length with
/// a given shape parameter sigma: `E[len] = exp(mu + sigma²/2)` ⇒
/// `mu = ln(mean) − sigma²/2`.
pub fn lognormal_for_mean(mean: f64, sigma: f64) -> (f64, f64) {
    assert!(mean > 0.0 && sigma >= 0.0);
    ((mean.ln()) - sigma * sigma / 2.0, sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsj_sampling::Xoshiro256;

    fn model(weighting: Weighting) -> TextModel {
        let (mu, sigma) = lognormal_for_mean(14.0, 0.5);
        TextModel {
            vocab: 2000,
            zipf_exponent: 1.05,
            length: LengthModel::LogNormal {
                mu,
                sigma,
                min: 3,
                max: 219,
            },
            weighting,
        }
    }

    #[test]
    fn lognormal_mean_is_hit() {
        let (mu, sigma) = lognormal_for_mean(14.0, 0.5);
        let lm = LengthModel::LogNormal {
            mu,
            sigma,
            min: 1,
            max: 10_000,
        };
        let mut rng = Xoshiro256::seeded(1);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| lm.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 14.0).abs() < 0.5, "mean length {mean}");
    }

    #[test]
    fn lengths_respect_clamps() {
        let lm = LengthModel::LogNormal {
            mu: 2.0,
            sigma: 2.0,
            min: 3,
            max: 50,
        };
        let mut rng = Xoshiro256::seeded(2);
        for _ in 0..5000 {
            let l = lm.sample(&mut rng);
            assert!((3..=50).contains(&l));
        }
    }

    #[test]
    fn fixed_length_is_fixed() {
        let mut rng = Xoshiro256::seeded(3);
        assert_eq!(LengthModel::Fixed(7).sample(&mut rng), 7);
    }

    #[test]
    fn binary_corpus_is_binary_with_sane_stats() {
        let mut rng = Xoshiro256::seeded(4);
        let coll = model(Weighting::Binary).generate(500, &mut rng);
        let stats = coll.stats();
        assert_eq!(stats.n, 500);
        assert!(stats.is_binary);
        assert!(stats.min_nnz >= 1); // dedup can shrink below `min` tokens
        assert!(stats.max_nnz <= 219);
        // Mean features slightly below mean tokens (duplicate words merge).
        assert!(
            stats.avg_nnz > 7.0 && stats.avg_nnz < 15.0,
            "avg_nnz {}",
            stats.avg_nnz
        );
    }

    #[test]
    fn tfidf_corpus_has_positive_weights() {
        let mut rng = Xoshiro256::seeded(5);
        let coll = model(Weighting::TfIdf).generate(300, &mut rng);
        assert!(!coll.stats().is_binary);
        for (_, v) in coll.iter() {
            for (_, w) in v.iter() {
                assert!(w > 0.0 && w.is_finite());
            }
        }
    }

    #[test]
    fn tfidf_downweights_frequent_words() {
        // Rank-0 (most frequent) should get smaller idf than a rare rank.
        let mut rng = Xoshiro256::seeded(6);
        let m = model(Weighting::TfIdf);
        let docs = m.generate_token_docs(2000, &mut rng);
        let coll = m.weight_docs(&docs);
        // Collect average weight of dimension 0 vs a high dimension where
        // present with tf == 1 (pure idf comparison).
        let mut w_frequent: Vec<f32> = Vec::new();
        let mut w_rare: Vec<f32> = Vec::new();
        for (id, doc) in docs.iter().enumerate() {
            for &(d, tf) in doc {
                if tf != 1 {
                    continue;
                }
                let w = coll.vector(id as u32).get(d);
                if d == 0 {
                    w_frequent.push(w);
                } else if d > 500 {
                    w_rare.push(w);
                }
            }
        }
        assert!(!w_frequent.is_empty() && !w_rare.is_empty());
        let avg = |v: &[f32]| v.iter().map(|&x| f64::from(x)).sum::<f64>() / v.len() as f64;
        assert!(
            avg(&w_frequent) < avg(&w_rare),
            "frequent word weight {} !< rare {}",
            avg(&w_frequent),
            avg(&w_rare)
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let m = model(Weighting::TfIdf);
        let a = m.generate(50, &mut Xoshiro256::seeded(9));
        let b = m.generate(50, &mut Xoshiro256::seeded(9));
        for (x, y) in a.vectors().iter().zip(b.vectors()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn token_docs_are_sorted_and_deduped() {
        let m = model(Weighting::Binary);
        let docs = m.generate_token_docs(100, &mut Xoshiro256::seeded(10));
        for doc in &docs {
            for w in doc.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
            for &(_, tf) in doc {
                assert!(tf >= 1);
            }
        }
    }
}
