//! Binary container formats for vector collections and other durable
//! state.
//!
//! Generated corpora feed ground-truth computations that cost O(n²); the
//! experiment harness caches both, keyed by the corpus content. The
//! service layer additionally persists epoch snapshots through the same
//! container. This module provides the compact, versioned, endian-stable
//! serialization those consumers use, plus the content hash for cache
//! keys.
//!
//! Two container versions exist; the reader negotiates between them:
//!
//! **v1** (legacy, still readable) — a bare vector payload:
//!
//! ```text
//! magic   4 bytes  "VSJC"
//! version u32      1
//! n       u64      vector count
//! per vector:
//!   nnz   u32
//!   nnz × u32      dimension indices (sorted)
//!   nnz × f32      weights
//! ```
//!
//! **v2** (current, written by [`encode`] and [`ContainerWriter`]) — a
//! sectioned container with per-section checksums, so higher layers can
//! store heterogeneous state (metadata, id maps, bucket keys, vector
//! payloads) in one file and detect any byte of corruption:
//!
//! ```text
//! magic    4 bytes  "VSJC"
//! version  u32      2
//! sections u32      section count
//! per section:
//!   tag      4 bytes   ASCII section identifier
//!   len      u64       payload length in bytes
//!   checksum u64       checksum64 of the payload
//!   payload  len bytes
//! ```
//!
//! A v2 collection file holds a single `COLL` section whose payload is
//! exactly the v1 body (`n` + vectors).
//!
//! **v3** (mappable, written by [`ContainerWriter::finish_v3`]) — the
//! same tag/checksum section model re-laid-out for zero-copy access
//! through a memory mapping: a fixed-width directory up front with
//! absolute offsets, every payload starting on an 8-byte boundary so
//! fixed-width little-endian arrays inside sections stay aligned:
//!
//! ```text
//! magic    4 bytes  "VSJC"
//! version  u32      3
//! sections u32      section count
//! pad      u32      0
//! per section (32-byte directory entry):
//!   tag      4 bytes   ASCII section identifier
//!   pad      u32       0
//!   offset   u64       absolute file offset of the payload (8-aligned)
//!   len      u64       payload length in bytes (padding excluded)
//!   checksum u64       checksum64_v3 of the payload (chunked digest)
//! payloads, each zero-padded to the next 8-byte boundary
//! ```
//!
//! v3 section checksums use [`checksum64_v3`], the chunked digest —
//! per-1 MiB [`checksum64`] values folded through a final
//! [`checksum64`] — so a multi-megabyte section verifies across all
//! cores at map time (the raw byte chain is serial by construction).
//!
//! [`ContainerIndex::parse`] verifies every checksum once and then hands
//! out `offset..offset+len` ranges into the caller's buffer — no copies,
//! which is what the mmap-backed checkpoint tier serves from.
//! [`ContainerReader::parse`] also accepts v3 (copying payloads), so any
//! sectioned consumer reads both layouts.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::Path;

use vsj_sampling::SplitMix64;
use vsj_vector::{SparseVector, VectorCollection};

const MAGIC: &[u8; 4] = b"VSJC";
/// The legacy bare-collection container version.
pub const VERSION_V1: u32 = 1;
/// The current sectioned container version.
pub const VERSION_V2: u32 = 2;
/// The mappable aligned-directory container version.
pub const VERSION_V3: u32 = 3;
/// Section tag of the vector payload in a v2 collection container.
pub const SECTION_COLLECTION: [u8; 4] = *b"COLL";

/// Errors from decoding a container.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Not a VSJC container.
    BadMagic,
    /// Unsupported container version.
    BadVersion(u32),
    /// A v2 section's payload does not match its stored checksum.
    BadChecksum {
        /// Tag of the offending section.
        section: [u8; 4],
    },
    /// A required v2 section is absent.
    MissingSection {
        /// Tag of the absent section.
        section: [u8; 4],
    },
    /// The payload ended early or a vector violated its invariants.
    Corrupt(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "collection I/O error: {e}"),
            Self::BadMagic => write!(f, "not a VSJC collection file"),
            Self::BadVersion(v) => write!(f, "unsupported VSJC version {v}"),
            Self::BadChecksum { section } => write!(
                f,
                "VSJC section {} failed its checksum",
                String::from_utf8_lossy(section)
            ),
            Self::MissingSection { section } => write!(
                f,
                "VSJC container lacks required section {}",
                String::from_utf8_lossy(section)
            ),
            Self::Corrupt(msg) => write!(f, "corrupt VSJC payload: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// 64-bit checksum of a byte payload (FNV-1a folded through SplitMix64).
///
/// Not cryptographic — it exists to catch torn writes, truncation, and
/// bit rot, the failure modes recovery must detect loudly.
pub fn checksum64(data: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SplitMix64::mix(h ^ data.len() as u64)
}

/// Chunk size of the v3 section checksum: small enough to fan the scan
/// out across cores, large enough that the digest list stays trivial.
const V3_CHECKSUM_CHUNK: usize = 1 << 20;

/// Word-wise FNV-1a digest: the same xor-multiply chain as
/// [`checksum64`] advanced one little-endian `u64` per step instead of
/// one byte (the tail word is zero-padded; the length fold
/// disambiguates real zero bytes from padding). One multiply per 8
/// bytes puts the serial throughput close to memory speed, where the
/// byte chain is latency-bound at roughly a byte per multiply.
fn checksum64_words(data: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut words = data.chunks_exact(8);
    for word in &mut words {
        h ^= u64::from_le_bytes(word.try_into().expect("8 bytes"));
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let tail = words.remainder();
    if !tail.is_empty() {
        let mut last = [0u8; 8];
        last[..tail.len()].copy_from_slice(tail);
        h ^= u64::from_le_bytes(last);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SplitMix64::mix(h ^ data.len() as u64)
}

/// The v3 section checksum: [`checksum64`] over each 1 MiB chunk's
/// word-wise digest, in order. This sits on the mapped tier's
/// cold-start path, where checksum validation is the dominant cost of
/// "map + go", so it is built to scan fast: the word-wise chunk digest
/// runs near memory speed on one core, and the chunks are independent,
/// so a multi-megabyte section additionally verifies across all cores
/// (the plain byte chain is serial by construction). v2 containers and
/// WAL frames keep [`checksum64`]; their payloads are read (and paid
/// for) in full anyway.
pub fn checksum64_v3(data: &[u8]) -> u64 {
    let digests = chunk_digests(data);
    let mut bytes = Vec::with_capacity(digests.len() * 8);
    for digest in digests {
        bytes.extend_from_slice(&digest.to_le_bytes());
    }
    checksum64(&bytes)
}

/// Per-chunk [`checksum64_words`] digests of `data`, fanned out across
/// the process-wide work pool when there is more than one chunk to share
/// out. `parallel_map_indexed` returns digests in chunk order, so the
/// folded checksum is identical at any thread count.
fn chunk_digests(data: &[u8]) -> Vec<u64> {
    let chunks: Vec<&[u8]> = data.chunks(V3_CHECKSUM_CHUNK).collect();
    vsj_pool::global().parallel_map_indexed(&chunks, |_, chunk| checksum64_words(chunk))
}

// --- v2 sectioned container ------------------------------------------------

/// Builder for a v2 sectioned container.
///
/// Sections are written in the order they are added; each gets a length
/// and a [`checksum64`] over its payload in the framing.
#[derive(Debug, Default)]
pub struct ContainerWriter {
    sections: Vec<([u8; 4], Bytes)>,
}

impl ContainerWriter {
    /// Starts an empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section.
    pub fn section(&mut self, tag: [u8; 4], payload: Bytes) -> &mut Self {
        self.sections.push((tag, payload));
        self
    }

    /// Assembles the container bytes.
    pub fn finish(&self) -> Bytes {
        let payload_total: usize = self.sections.iter().map(|(_, p)| p.len()).sum();
        let mut buf = BytesMut::with_capacity(12 + self.sections.len() * 24 + payload_total);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION_V2);
        buf.put_u32_le(self.sections.len() as u32);
        for (tag, payload) in &self.sections {
            buf.put_slice(tag);
            buf.put_u64_le(payload.len() as u64);
            buf.put_u64_le(checksum64(payload.as_slice()));
            buf.put_slice(payload.as_slice());
        }
        buf.freeze()
    }

    /// Assembles the container in the v3 mappable layout: fixed-width
    /// directory up front, every payload 8-byte aligned.
    pub fn finish_v3(&self) -> Bytes {
        let header = 16 + self.sections.len() * 32;
        let payload_total: usize = self.sections.iter().map(|(_, p)| (p.len() + 7) & !7).sum();
        let mut buf = BytesMut::with_capacity(header + payload_total);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION_V3);
        buf.put_u32_le(self.sections.len() as u32);
        buf.put_u32_le(0);
        // Directory: offsets are absolute, pre-computed from the fixed
        // header size plus the padded lengths of preceding payloads.
        let mut offset = header as u64;
        for (tag, payload) in &self.sections {
            buf.put_slice(tag);
            buf.put_u32_le(0);
            buf.put_u64_le(offset);
            buf.put_u64_le(payload.len() as u64);
            buf.put_u64_le(checksum64_v3(payload.as_slice()));
            offset += ((payload.len() + 7) & !7) as u64;
        }
        for (_, payload) in &self.sections {
            buf.put_slice(payload.as_slice());
            buf.put_slice(&[0u8; 8][..(8 - payload.len() % 8) % 8]);
        }
        buf.freeze()
    }
}

/// Zero-copy directory of a v3 container: parsing verifies the framing
/// and every section checksum once, then yields byte ranges into the
/// caller's buffer (typically a memory mapping) — payloads are never
/// copied.
#[derive(Debug, Clone)]
pub struct ContainerIndex {
    entries: Vec<([u8; 4], std::ops::Range<usize>)>,
}

impl ContainerIndex {
    /// Parses the v3 directory of `data` and verifies every section's
    /// checksum (one linear scan over the payload bytes — no decoding,
    /// no allocation beyond the directory itself).
    ///
    /// # Errors
    /// [`IoError::BadMagic`] / [`IoError::BadVersion`] on foreign input,
    /// [`IoError::Corrupt`] on framing violations (truncation,
    /// misalignment, overlapping or out-of-bounds payloads), and
    /// [`IoError::BadChecksum`] when any payload fails its checksum.
    pub fn parse(data: &[u8]) -> Result<Self, IoError> {
        let u32_at = |at: usize| -> u32 {
            u32::from_le_bytes(data[at..at + 4].try_into().expect("4 bytes"))
        };
        let u64_at = |at: usize| -> u64 {
            u64::from_le_bytes(data[at..at + 8].try_into().expect("8 bytes"))
        };
        if data.len() < 16 {
            return Err(IoError::Corrupt("v3 header truncated".into()));
        }
        if &data[..4] != MAGIC {
            return Err(IoError::BadMagic);
        }
        let version = u32_at(4);
        if version != VERSION_V3 {
            return Err(IoError::BadVersion(version));
        }
        let count = u32_at(8) as usize;
        // Reserved/padding bytes are not covered by any section
        // checksum, so they must be pinned to zero here — otherwise a
        // flipped bit in them would load silently.
        if u32_at(12) != 0 {
            return Err(IoError::Corrupt("nonzero v3 header padding".into()));
        }
        let header = 16usize;
        let dir_end = header
            .checked_add(count.checked_mul(32).ok_or_else(overflow)?)
            .ok_or_else(overflow)?;
        if data.len() < dir_end {
            return Err(IoError::Corrupt("v3 directory truncated".into()));
        }
        let mut entries = Vec::with_capacity(count.min(64));
        let mut pending = Vec::with_capacity(count.min(64));
        // Payloads must tile the tail of the file in directory order,
        // 8-aligned — that is what makes the layout mappable.
        let mut expected = dir_end as u64;
        for si in 0..count {
            let at = header + si * 32;
            let tag: [u8; 4] = data[at..at + 4].try_into().expect("4 bytes");
            if u32_at(at + 4) != 0 {
                return Err(IoError::Corrupt(format!(
                    "section {si}: nonzero directory padding"
                )));
            }
            let offset = u64_at(at + 8);
            let len = u64_at(at + 16);
            let checksum = u64_at(at + 24);
            if offset % 8 != 0 || offset != expected {
                return Err(IoError::Corrupt(format!(
                    "section {si}: payload offset {offset} violates the aligned layout"
                )));
            }
            let end = offset.checked_add(len).ok_or_else(overflow)?;
            if end > data.len() as u64 {
                return Err(IoError::Corrupt(format!(
                    "section {si}: payload runs past end of file"
                )));
            }
            let range = offset as usize..end as usize;
            pending.push((tag, range.clone(), checksum));
            entries.push((tag, range));
            let padded_end = end.checked_add((8 - len % 8) % 8).ok_or_else(overflow)?;
            if padded_end <= data.len() as u64
                && data[end as usize..padded_end as usize]
                    .iter()
                    .any(|&b| b != 0)
            {
                return Err(IoError::Corrupt(format!(
                    "section {si}: nonzero payload padding"
                )));
            }
            expected = padded_end;
        }
        if (data.len() as u64) < expected {
            return Err(IoError::Corrupt("v3 payload truncated".into()));
        }
        if data.len() as u64 > expected {
            return Err(IoError::Corrupt(format!(
                "{} trailing bytes after last section",
                data.len() as u64 - expected
            )));
        }
        verify_section_checksums(data, &pending)?;
        Ok(Self { entries })
    }

    /// The tags present, in file order.
    pub fn tags(&self) -> Vec<[u8; 4]> {
        self.entries.iter().map(|(t, _)| *t).collect()
    }

    /// Byte range of the first section with the given tag.
    pub fn range(&self, tag: [u8; 4]) -> Option<std::ops::Range<usize>> {
        self.entries
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, r)| r.clone())
    }

    /// Like [`ContainerIndex::range`] but an error when absent.
    pub fn require(&self, tag: [u8; 4]) -> Result<std::ops::Range<usize>, IoError> {
        self.range(tag)
            .ok_or(IoError::MissingSection { section: tag })
    }
}

fn overflow() -> IoError {
    IoError::Corrupt("v3 directory arithmetic overflow".into())
}

/// Verifies every section's stored [`checksum64_v3`], reporting the
/// first mismatch in directory order. The chunked digest parallelizes
/// internally, so big sections (the vector payload slab, in practice)
/// verify across all cores.
fn verify_section_checksums(
    data: &[u8],
    sections: &[([u8; 4], std::ops::Range<usize>, u64)],
) -> Result<(), IoError> {
    for (tag, range, stored) in sections {
        if checksum64_v3(&data[range.clone()]) != *stored {
            return Err(IoError::BadChecksum { section: *tag });
        }
    }
    Ok(())
}

/// Parsed view of a v2 sectioned container: every section's checksum is
/// verified at parse time, so a successful parse certifies byte-exact
/// payloads.
#[derive(Debug)]
pub struct ContainerReader {
    sections: Vec<([u8; 4], Bytes)>,
}

impl ContainerReader {
    /// Parses and verifies a sectioned container, negotiating between
    /// the v2 inline framing and the v3 aligned-directory layout (v3
    /// payloads are copied out — use [`ContainerIndex`] for zero-copy).
    ///
    /// # Errors
    /// [`IoError::BadMagic`] / [`IoError::BadVersion`] on foreign input,
    /// [`IoError::Corrupt`] on framing violations (truncation, trailing
    /// bytes), [`IoError::BadChecksum`] when any section's payload does
    /// not hash to its header checksum.
    pub fn parse(mut data: Bytes) -> Result<Self, IoError> {
        if data.remaining() < 12 {
            return Err(IoError::Corrupt("header truncated".into()));
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(IoError::BadMagic);
        }
        let version = data.get_u32_le();
        if version == VERSION_V3 {
            // Re-parse the original buffer through the v3 directory and
            // materialize each payload.
            let mut whole = BytesMut::with_capacity(8 + data.remaining());
            whole.put_slice(MAGIC);
            whole.put_u32_le(version);
            whole.put_slice(data.as_slice());
            let whole = whole.freeze();
            let index = ContainerIndex::parse(whole.as_slice())?;
            let sections = index
                .entries
                .iter()
                .map(|(tag, range)| {
                    (
                        *tag,
                        Bytes::copy_from_slice(&whole.as_slice()[range.clone()]),
                    )
                })
                .collect();
            return Ok(Self { sections });
        }
        if version != VERSION_V2 {
            return Err(IoError::BadVersion(version));
        }
        let count = data.get_u32_le() as usize;
        let mut sections = Vec::with_capacity(count.min(64));
        for si in 0..count {
            if data.remaining() < 20 {
                return Err(IoError::Corrupt(format!("section {si}: header truncated")));
            }
            let mut tag = [0u8; 4];
            data.copy_to_slice(&mut tag);
            let len = data.get_u64_le() as usize;
            let checksum = data.get_u64_le();
            if data.remaining() < len {
                return Err(IoError::Corrupt(format!(
                    "section {si}: payload truncated ({} of {len} bytes)",
                    data.remaining()
                )));
            }
            let mut payload = vec![0u8; len];
            data.copy_to_slice(&mut payload);
            let payload = Bytes::from(payload);
            if checksum64(payload.as_slice()) != checksum {
                return Err(IoError::BadChecksum { section: tag });
            }
            sections.push((tag, payload));
        }
        if data.has_remaining() {
            return Err(IoError::Corrupt(format!(
                "{} trailing bytes after last section",
                data.remaining()
            )));
        }
        Ok(Self { sections })
    }

    /// The tags present, in file order.
    pub fn tags(&self) -> Vec<[u8; 4]> {
        self.sections.iter().map(|(t, _)| *t).collect()
    }

    /// The first section with the given tag (fresh read cursor).
    pub fn section(&self, tag: [u8; 4]) -> Option<Bytes> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| p.clone())
    }

    /// Like [`ContainerReader::section`] but an error when absent.
    pub fn require(&self, tag: [u8; 4]) -> Result<Bytes, IoError> {
        self.section(tag)
            .ok_or(IoError::MissingSection { section: tag })
    }
}

// --- vector payload (shared by v1 body and v2 COLL section) ----------------

/// Encodes one vector's wire block (`nnz u32`, `nnz × u32` indices,
/// `nnz × f32` weights) — the single definition of the per-vector
/// layout, shared by collection payloads and the service WAL.
pub fn encode_vector_into(buf: &mut BytesMut, v: &SparseVector) {
    buf.put_u32_le(v.nnz() as u32);
    for &i in v.indices() {
        buf.put_u32_le(i);
    }
    for &w in v.values() {
        buf.put_f32_le(w);
    }
}

/// Exact wire size of one vector's block: `4 + nnz × 8` bytes. Pairing
/// this with [`encode_vector_into_slice`] lets writers prefix-sum the
/// payload layout up front and fill disjoint slices in parallel.
#[inline]
pub fn encoded_vector_len(v: &SparseVector) -> usize {
    4 + v.nnz() * 8
}

/// Encodes one vector's wire block into an exactly-sized slice —
/// byte-identical to [`encode_vector_into`] on a fresh buffer.
///
/// # Panics
/// Panics if `out.len() != encoded_vector_len(v)`.
pub fn encode_vector_into_slice(out: &mut [u8], v: &SparseVector) {
    assert_eq!(
        out.len(),
        encoded_vector_len(v),
        "slice must be exactly sized"
    );
    out[..4].copy_from_slice(&(v.nnz() as u32).to_le_bytes());
    let (idx_bytes, val_bytes) = out[4..].split_at_mut(v.nnz() * 4);
    for (slot, &i) in idx_bytes.chunks_exact_mut(4).zip(v.indices()) {
        slot.copy_from_slice(&i.to_le_bytes());
    }
    for (slot, &w) in val_bytes.chunks_exact_mut(4).zip(v.values()) {
        slot.copy_from_slice(&w.to_le_bytes());
    }
}

/// Decodes one vector's wire block (inverse of [`encode_vector_into`]),
/// re-validating the vector invariants.
pub fn decode_vector(data: &mut Bytes) -> Result<SparseVector, IoError> {
    if data.remaining() < 4 {
        return Err(IoError::Corrupt("nnz truncated".into()));
    }
    let nnz = data.get_u32_le() as usize;
    if data.remaining() < nnz * 8 {
        return Err(IoError::Corrupt("vector payload truncated".into()));
    }
    let mut indices = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        indices.push(data.get_u32_le());
    }
    let mut values = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        values.push(data.get_f32_le());
    }
    SparseVector::from_sorted(indices, values).map_err(|e| IoError::Corrupt(e.to_string()))
}

/// Encodes the bare vector payload (`n` + per-vector data) — the v1 body
/// and the v2 `COLL` section payload.
pub fn encode_vectors(collection: &VectorCollection) -> Bytes {
    encode_vector_list(collection.vectors().iter())
}

/// Encodes a bare vector payload from any exactly-sized iterator of
/// vectors — the wire format of [`encode_vectors`] without demanding an
/// owned [`VectorCollection`]. This is how the service serializes its
/// `Arc`-shared snapshot payloads into a checkpoint: the vectors are
/// written once, straight from the shared handles, never first copied
/// into an owned collection.
pub fn encode_vector_list<'a, I>(vectors: I) -> Bytes
where
    I: ExactSizeIterator<Item = &'a SparseVector> + Clone,
{
    let total_nnz: usize = vectors.clone().map(SparseVector::nnz).sum();
    let mut buf = BytesMut::with_capacity(8 + vectors.len() * 4 + total_nnz * 8);
    buf.put_u64_le(vectors.len() as u64);
    for v in vectors {
        encode_vector_into(&mut buf, v);
    }
    buf.freeze()
}

/// Decodes a bare vector payload, re-validating every vector invariant.
///
/// # Errors
/// [`IoError::Corrupt`] on truncation, trailing bytes, or invariant
/// violations.
pub fn decode_vectors(mut data: Bytes) -> Result<VectorCollection, IoError> {
    if data.remaining() < 8 {
        return Err(IoError::Corrupt("vector count truncated".into()));
    }
    let n = data.get_u64_le() as usize;
    let mut vectors = Vec::with_capacity(n.min(1 << 20));
    for vi in 0..n {
        let v = decode_vector(&mut data).map_err(|e| match e {
            IoError::Corrupt(msg) => IoError::Corrupt(format!("vector {vi}: {msg}")),
            other => other,
        })?;
        vectors.push(v);
    }
    if data.has_remaining() {
        return Err(IoError::Corrupt(format!(
            "{} trailing bytes",
            data.remaining()
        )));
    }
    Ok(VectorCollection::from_vectors(vectors))
}

// --- collection containers -------------------------------------------------

/// Encodes a collection as a v2 container (one checksummed `COLL`
/// section).
pub fn encode(collection: &VectorCollection) -> Bytes {
    let mut w = ContainerWriter::new();
    w.section(SECTION_COLLECTION, encode_vectors(collection));
    w.finish()
}

/// Encodes a collection in the legacy v1 layout (no checksums). Kept so
/// the version-negotiation path stays exercised; new files should use
/// [`encode`].
pub fn encode_v1(collection: &VectorCollection) -> Bytes {
    let body = encode_vectors(collection);
    let mut buf = BytesMut::with_capacity(8 + body.len());
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION_V1);
    buf.put_slice(body.as_slice());
    buf.freeze()
}

/// Decodes a container back into a collection, negotiating the version:
/// v1 files decode through the legacy bare-payload path, v2 files
/// through the checksummed sectioned path.
///
/// # Errors
/// Returns [`IoError`] on malformed input; all vector invariants are
/// re-validated (the file may have been edited or truncated), and v2
/// files additionally verify the `COLL` section checksum.
pub fn decode(mut data: Bytes) -> Result<VectorCollection, IoError> {
    if data.remaining() < 8 {
        return Err(IoError::Corrupt("header truncated".into()));
    }
    let mut magic = [0u8; 4];
    let mut peek = data.clone();
    peek.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IoError::BadMagic);
    }
    match peek.get_u32_le() {
        VERSION_V1 => {
            data.copy_to_slice(&mut magic);
            let _ = data.get_u32_le();
            decode_vectors(data)
        }
        VERSION_V2 => decode_vectors(ContainerReader::parse(data)?.require(SECTION_COLLECTION)?),
        v => Err(IoError::BadVersion(v)),
    }
}

/// Writes a collection container (creating parent directories).
pub fn save(collection: &VectorCollection, path: &Path) -> Result<(), IoError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, encode(collection))?;
    Ok(())
}

/// Reads a collection container (either version).
pub fn load(path: &Path) -> Result<VectorCollection, IoError> {
    decode(Bytes::from(std::fs::read(path)?))
}

/// Order-sensitive 64-bit content hash of a collection — the cache key
/// that ties ground-truth files to the exact corpus they were computed on.
pub fn content_hash(collection: &VectorCollection) -> u64 {
    let mut acc = 0xC0FF_EE00_D15E_A5E5u64 ^ collection.len() as u64;
    for (_, v) in collection.iter() {
        acc = SplitMix64::mix(acc ^ v.nnz() as u64);
        for (i, w) in v.iter() {
            acc = SplitMix64::mix(acc ^ (u64::from(i) << 32 | u64::from(w.to_bits())));
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dblp::DblpLike;

    fn sample() -> VectorCollection {
        DblpLike::with_size(120).generate(5)
    }

    #[test]
    fn roundtrip_preserves_collection() {
        let coll = sample();
        let decoded = decode(encode(&coll)).unwrap();
        assert_eq!(coll.len(), decoded.len());
        for (a, b) in coll.vectors().iter().zip(decoded.vectors()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn slice_encoder_matches_buffer_encoder() {
        let coll = sample();
        for v in coll.vectors() {
            let mut reference = BytesMut::new();
            encode_vector_into(&mut reference, v);
            let mut slab = vec![0u8; encoded_vector_len(v)];
            encode_vector_into_slice(&mut slab, v);
            assert_eq!(reference.freeze().as_slice(), slab.as_slice());
        }
    }

    #[test]
    fn v1_files_still_decode() {
        let coll = sample();
        let decoded = decode(encode_v1(&coll)).unwrap();
        assert_eq!(content_hash(&coll), content_hash(&decoded));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("vsj_io_test");
        let path = dir.join("sub").join("coll.vsjc");
        let coll = sample();
        save(&coll, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(content_hash(&coll), content_hash(&loaded));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut data = encode(&sample()).to_vec();
        data[0] = b'X';
        assert!(matches!(decode(Bytes::from(data)), Err(IoError::BadMagic)));
    }

    #[test]
    fn bad_version_rejected() {
        let mut data = encode(&sample()).to_vec();
        data[4] = 99;
        assert!(matches!(
            decode(Bytes::from(data)),
            Err(IoError::BadVersion(99))
        ));
    }

    #[test]
    fn truncation_detected() {
        let data = encode(&sample()).to_vec();
        for cut in [10, data.len() / 2, data.len() - 1] {
            let r = decode(Bytes::copy_from_slice(&data[..cut]));
            assert!(r.is_err(), "truncation at {cut} not detected");
        }
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut data = encode(&sample()).to_vec();
        data.push(0);
        assert!(matches!(
            decode(Bytes::from(data)),
            Err(IoError::Corrupt(_))
        ));
    }

    #[test]
    fn any_payload_flip_fails_the_checksum() {
        let data = encode(&sample()).to_vec();
        // Flip a byte at a spread of offsets past the container header;
        // every one must surface as *some* decode error (checksum for
        // payload bytes, framing for header bytes) — never a silent
        // different collection.
        for at in (8..data.len()).step_by(97) {
            let mut broken = data.clone();
            broken[at] ^= 0x40;
            assert!(
                decode(Bytes::from(broken)).is_err(),
                "flip at byte {at} was not detected"
            );
        }
    }

    #[test]
    fn sectioned_container_roundtrip_and_lookup() {
        let mut w = ContainerWriter::new();
        w.section(*b"AAAA", Bytes::from(vec![1u8, 2, 3]));
        w.section(*b"BBBB", Bytes::from(Vec::<u8>::new()));
        w.section(*b"CCCC", Bytes::from(vec![9u8; 300]));
        let r = ContainerReader::parse(w.finish()).unwrap();
        assert_eq!(r.tags(), vec![*b"AAAA", *b"BBBB", *b"CCCC"]);
        assert_eq!(r.section(*b"AAAA").unwrap().as_slice(), &[1, 2, 3]);
        assert_eq!(r.section(*b"BBBB").unwrap().len(), 0);
        assert_eq!(r.section(*b"CCCC").unwrap().len(), 300);
        assert!(r.section(*b"ZZZZ").is_none());
        assert!(matches!(
            r.require(*b"ZZZZ"),
            Err(IoError::MissingSection { section }) if &section == b"ZZZZ"
        ));
    }

    #[test]
    fn v3_layout_is_aligned_and_indexable() {
        let mut w = ContainerWriter::new();
        w.section(*b"AAAA", Bytes::from(vec![1u8, 2, 3]));
        w.section(*b"BBBB", Bytes::from(Vec::<u8>::new()));
        w.section(*b"CCCC", Bytes::from(vec![9u8; 300]));
        let data = w.finish_v3();
        let index = ContainerIndex::parse(data.as_slice()).unwrap();
        assert_eq!(index.tags(), vec![*b"AAAA", *b"BBBB", *b"CCCC"]);
        for tag in [*b"AAAA", *b"BBBB", *b"CCCC"] {
            let range = index.range(tag).unwrap();
            assert_eq!(range.start % 8, 0, "payload of {tag:?} is 8-aligned");
        }
        assert_eq!(&data.as_slice()[index.range(*b"AAAA").unwrap()], &[1, 2, 3]);
        assert_eq!(index.range(*b"BBBB").unwrap().len(), 0);
        assert_eq!(index.range(*b"CCCC").unwrap().len(), 300);
        assert!(index.range(*b"ZZZZ").is_none());
        assert!(matches!(
            index.require(*b"ZZZZ"),
            Err(IoError::MissingSection { section }) if &section == b"ZZZZ"
        ));
        // The copying reader negotiates v3 transparently.
        let r = ContainerReader::parse(data).unwrap();
        assert_eq!(r.tags(), vec![*b"AAAA", *b"BBBB", *b"CCCC"]);
        assert_eq!(r.section(*b"AAAA").unwrap().as_slice(), &[1, 2, 3]);
        assert_eq!(r.section(*b"CCCC").unwrap().len(), 300);
    }

    #[test]
    fn v3_flips_and_truncations_are_detected() {
        let mut w = ContainerWriter::new();
        w.section(
            *b"AAAA",
            Bytes::from((0u16..500).flat_map(u16::to_le_bytes).collect::<Vec<_>>()),
        );
        w.section(*b"BBBB", Bytes::from(vec![7u8; 33]));
        let data = w.finish_v3().to_vec();
        assert!(ContainerIndex::parse(&data).is_ok());
        for at in (4..data.len()).step_by(41) {
            let mut broken = data.clone();
            broken[at] ^= 0x20;
            assert!(
                ContainerIndex::parse(&broken).is_err(),
                "flip at byte {at} was not detected"
            );
        }
        for cut in [0, 3, 15, 16, 40, data.len() / 2, data.len() - 1] {
            assert!(
                ContainerIndex::parse(&data[..cut]).is_err(),
                "truncation at {cut} not detected"
            );
        }
        let mut trailing = data.clone();
        trailing.push(0);
        assert!(matches!(
            ContainerIndex::parse(&trailing),
            Err(IoError::Corrupt(_))
        ));
    }

    #[test]
    fn checksum_is_position_sensitive() {
        assert_ne!(checksum64(b"ab"), checksum64(b"ba"));
        assert_ne!(checksum64(b""), checksum64(b"\0"));
        assert_eq!(checksum64(b"vsj"), checksum64(b"vsj"));
    }

    #[test]
    fn content_hash_is_sensitive() {
        let a = sample();
        let b = DblpLike::with_size(120).generate(6); // different seed
        assert_eq!(content_hash(&a), content_hash(&a));
        assert_ne!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn empty_collection_roundtrip() {
        let empty = VectorCollection::new();
        let decoded = decode(encode(&empty)).unwrap();
        assert!(decoded.is_empty());
        let decoded_v1 = decode(encode_v1(&empty)).unwrap();
        assert!(decoded_v1.is_empty());
    }
}
