//! Binary container format for vector collections.
//!
//! Generated corpora feed ground-truth computations that cost O(n²); the
//! experiment harness caches both, keyed by the corpus content. This
//! module provides the compact, versioned, endian-stable serialization
//! those caches use, plus the content hash for the cache key.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   4 bytes  "VSJC"
//! version u32      (currently 1)
//! n       u64      vector count
//! per vector:
//!   nnz   u32
//!   nnz × u32      dimension indices (sorted)
//!   nnz × f32      weights
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::Path;

use vsj_sampling::SplitMix64;
use vsj_vector::{SparseVector, VectorCollection};

const MAGIC: &[u8; 4] = b"VSJC";
const VERSION: u32 = 1;

/// Errors from decoding a collection container.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Not a VSJC container.
    BadMagic,
    /// Unsupported container version.
    BadVersion(u32),
    /// The payload ended early or a vector violated its invariants.
    Corrupt(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "collection I/O error: {e}"),
            Self::BadMagic => write!(f, "not a VSJC collection file"),
            Self::BadVersion(v) => write!(f, "unsupported VSJC version {v}"),
            Self::Corrupt(msg) => write!(f, "corrupt VSJC payload: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Encodes a collection into the container format.
pub fn encode(collection: &VectorCollection) -> Bytes {
    let total_nnz: usize = collection.vectors().iter().map(SparseVector::nnz).sum();
    let mut buf = BytesMut::with_capacity(16 + collection.len() * 4 + total_nnz * 8);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(collection.len() as u64);
    for (_, v) in collection.iter() {
        buf.put_u32_le(v.nnz() as u32);
        for &i in v.indices() {
            buf.put_u32_le(i);
        }
        for &w in v.values() {
            buf.put_f32_le(w);
        }
    }
    buf.freeze()
}

/// Decodes a container back into a collection.
///
/// # Errors
/// Returns [`IoError`] on malformed input; all vector invariants are
/// re-validated (the file may have been edited or truncated).
pub fn decode(mut data: Bytes) -> Result<VectorCollection, IoError> {
    if data.remaining() < 16 {
        return Err(IoError::Corrupt("header truncated".into()));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IoError::BadMagic);
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(IoError::BadVersion(version));
    }
    let n = data.get_u64_le() as usize;
    let mut vectors = Vec::with_capacity(n);
    for vi in 0..n {
        if data.remaining() < 4 {
            return Err(IoError::Corrupt(format!("vector {vi}: nnz truncated")));
        }
        let nnz = data.get_u32_le() as usize;
        if data.remaining() < nnz * 8 {
            return Err(IoError::Corrupt(format!("vector {vi}: payload truncated")));
        }
        let mut indices = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            indices.push(data.get_u32_le());
        }
        let mut values = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            values.push(data.get_f32_le());
        }
        let v = SparseVector::from_sorted(indices, values)
            .map_err(|e| IoError::Corrupt(format!("vector {vi}: {e}")))?;
        vectors.push(v);
    }
    if data.has_remaining() {
        return Err(IoError::Corrupt(format!(
            "{} trailing bytes",
            data.remaining()
        )));
    }
    Ok(VectorCollection::from_vectors(vectors))
}

/// Writes a collection container (creating parent directories).
pub fn save(collection: &VectorCollection, path: &Path) -> Result<(), IoError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, encode(collection))?;
    Ok(())
}

/// Reads a collection container.
pub fn load(path: &Path) -> Result<VectorCollection, IoError> {
    decode(Bytes::from(std::fs::read(path)?))
}

/// Order-sensitive 64-bit content hash of a collection — the cache key
/// that ties ground-truth files to the exact corpus they were computed on.
pub fn content_hash(collection: &VectorCollection) -> u64 {
    let mut acc = 0xC0FF_EE00_D15E_A5E5u64 ^ collection.len() as u64;
    for (_, v) in collection.iter() {
        acc = SplitMix64::mix(acc ^ v.nnz() as u64);
        for (i, w) in v.iter() {
            acc = SplitMix64::mix(acc ^ (u64::from(i) << 32 | u64::from(w.to_bits())));
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dblp::DblpLike;

    fn sample() -> VectorCollection {
        DblpLike::with_size(120).generate(5)
    }

    #[test]
    fn roundtrip_preserves_collection() {
        let coll = sample();
        let decoded = decode(encode(&coll)).unwrap();
        assert_eq!(coll.len(), decoded.len());
        for (a, b) in coll.vectors().iter().zip(decoded.vectors()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("vsj_io_test");
        let path = dir.join("sub").join("coll.vsjc");
        let coll = sample();
        save(&coll, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(content_hash(&coll), content_hash(&loaded));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut data = encode(&sample()).to_vec();
        data[0] = b'X';
        assert!(matches!(decode(Bytes::from(data)), Err(IoError::BadMagic)));
    }

    #[test]
    fn bad_version_rejected() {
        let mut data = encode(&sample()).to_vec();
        data[4] = 99;
        assert!(matches!(
            decode(Bytes::from(data)),
            Err(IoError::BadVersion(99))
        ));
    }

    #[test]
    fn truncation_detected() {
        let data = encode(&sample()).to_vec();
        for cut in [10, data.len() / 2, data.len() - 1] {
            let r = decode(Bytes::copy_from_slice(&data[..cut]));
            assert!(r.is_err(), "truncation at {cut} not detected");
        }
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut data = encode(&sample()).to_vec();
        data.push(0);
        assert!(matches!(
            decode(Bytes::from(data)),
            Err(IoError::Corrupt(_))
        ));
    }

    #[test]
    fn content_hash_is_sensitive() {
        let a = sample();
        let b = DblpLike::with_size(120).generate(6); // different seed
        assert_eq!(content_hash(&a), content_hash(&a));
        assert_ne!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn empty_collection_roundtrip() {
        let empty = VectorCollection::new();
        let decoded = decode(encode(&empty)).unwrap();
        assert!(decoded.is_empty());
    }
}
