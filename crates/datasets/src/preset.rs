//! Shared machinery for the three dataset presets.

use crate::dupes::DuplicatePlanter;
use crate::textgen::{lognormal_for_mean, LengthModel, TextModel, Weighting};
use vsj_sampling::Xoshiro256;
use vsj_vector::VectorCollection;

/// A fully specified corpus recipe: text model statistics plus duplicate
/// structure, parameterized only by the output size `n` and a seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusPreset {
    /// The real corpus size this preset imitates at `scale = 1`.
    pub full_size: usize,
    /// Vocabulary at full size; scaled by Heaps' law (`vocab ∝ √scale`)
    /// so that word-sharing statistics survive downscaling.
    pub full_vocab: usize,
    /// Smallest vocabulary regardless of scale.
    pub min_vocab: usize,
    /// Zipf exponent of word frequencies.
    pub zipf_exponent: f64,
    /// Mean token count per document.
    pub mean_tokens: f64,
    /// Log-normal sigma of token counts.
    pub sigma_tokens: f64,
    /// Length clamp (tokens).
    pub min_tokens: usize,
    /// Length clamp (tokens).
    pub max_tokens: usize,
    /// Weighting scheme.
    pub weighting: Weighting,
    /// Fraction of base documents seeding duplicate clusters.
    pub dup_seed_fraction: f64,
    /// Max copies per cluster.
    pub dup_max_copies: usize,
    /// Mutation intensity range across clusters.
    pub dup_mutation: (f64, f64),
}

impl CorpusPreset {
    /// Output size for a scale factor, with a floor so tiny scales remain
    /// statistically meaningful.
    pub fn size_for_scale(&self, scale: f64) -> usize {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        ((self.full_size as f64 * scale).round() as usize).max(64)
    }

    /// Vocabulary for a scale factor (Heaps'-law shrink).
    pub fn vocab_for_scale(&self, scale: f64) -> usize {
        ((self.full_vocab as f64 * scale.sqrt()).round() as usize).max(self.min_vocab)
    }

    /// Generates exactly `n` vectors deterministically from `seed`.
    pub fn generate_n(&self, n: usize, vocab: usize, seed: u64) -> VectorCollection {
        let mut rng = Xoshiro256::seeded(seed ^ 0x5A5A_0F0F_C3C3_9696);
        let model = TextModel {
            vocab,
            zipf_exponent: self.zipf_exponent,
            length: LengthModel::LogNormal {
                mu: lognormal_for_mean(self.mean_tokens, self.sigma_tokens).0,
                sigma: self.sigma_tokens,
                min: self.min_tokens,
                max: self.max_tokens,
            },
            weighting: self.weighting,
        };
        let planter = DuplicatePlanter {
            seed_fraction: self.dup_seed_fraction,
            max_copies: self.dup_max_copies,
            min_mutation: self.dup_mutation.0,
            max_mutation: self.dup_mutation.1,
            vocab,
        };

        // The planter grows the corpus by an expected factor g; generate
        // enough base documents that the planted corpus reaches n, then
        // truncate (the planter shuffles, so truncation is unbiased).
        let growth = 1.0 + self.dup_seed_fraction * (1.0 + self.dup_max_copies as f64) / 2.0;
        let mut base = ((n as f64 / growth) * 1.02).ceil() as usize;
        loop {
            let docs = model.generate_token_docs(base, &mut rng);
            let mut planted = planter.plant(docs, &mut rng);
            if planted.len() >= n {
                planted.truncate(n);
                return model.weight_docs(&planted);
            }
            // Rare under-shoot: enlarge the base and retry (still
            // deterministic — the RNG sequence continues).
            base = base + base / 10 + 8;
        }
    }
}

/// Shared validation helper for preset tests: basic shape of a generated
/// collection.
#[cfg(test)]
pub(crate) fn check_shape(coll: &VectorCollection, n: usize, binary: bool, avg_range: (f64, f64)) {
    let stats = coll.stats();
    assert_eq!(stats.n, n);
    assert_eq!(stats.is_binary, binary);
    assert!(
        stats.avg_nnz >= avg_range.0 && stats.avg_nnz <= avg_range.1,
        "avg_nnz {} outside {:?}",
        stats.avg_nnz,
        avg_range
    );
    assert!(stats.min_nnz >= 1, "empty vectors generated");
}

/// Shared validation helper: the high-similarity tail exists but is thin.
#[cfg(test)]
pub(crate) fn check_similarity_tail(coll: &VectorCollection, tau: f64, lo: u64, hi_frac: f64) {
    use vsj_vector::{Cosine, Similarity};
    let n = coll.len() as u32;
    let mut high = 0u64;
    let mut total = 0u64;
    for a in 0..n {
        for b in (a + 1)..n {
            total += 1;
            if Cosine.sim(coll.vector(a), coll.vector(b)) >= tau {
                high += 1;
            }
        }
    }
    assert!(high >= lo, "too few pairs at τ={tau}: {high} (need ≥ {lo})");
    let frac = high as f64 / total as f64;
    assert!(
        frac <= hi_frac,
        "high-similarity tail too fat at τ={tau}: {frac} > {hi_frac}"
    );
}
