//! Zipf-distributed sampling over a finite vocabulary.
//!
//! Word frequencies in all three of the paper's corpora follow a power
//! law: `P(rank r) ∝ r^(−s)`. Sampling is O(1) per draw via an alias
//! table over the full vocabulary (built once per generator, O(V)).

use vsj_sampling::{AliasTable, Rng};

/// A Zipf(`s`) distribution over ranks `0..n` (rank 0 most frequent).
#[derive(Debug, Clone)]
pub struct Zipf {
    alias: AliasTable,
    exponent: f64,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics if `n == 0` or the exponent is not finite and positive.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty vocabulary");
        assert!(
            exponent.is_finite() && exponent > 0.0,
            "Zipf exponent must be positive and finite"
        );
        let weights: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-exponent)).collect();
        let alias = AliasTable::new(&weights).expect("positive Zipf weights");
        Self { alias, exponent }
    }

    /// Vocabulary size.
    pub fn vocabulary(&self) -> usize {
        self.alias.len()
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Draws a rank in `0..n` with `P(r) ∝ (r+1)^(−s)`.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        self.alias.sample(rng) as u32
    }

    /// Theoretical probability of rank `r`.
    pub fn probability(&self, r: u32) -> f64 {
        ((r + 1) as f64).powf(-self.exponent) / self.alias.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsj_sampling::Xoshiro256;

    #[test]
    fn head_ranks_dominate() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = Xoshiro256::seeded(1);
        let draws = 100_000;
        let mut head = 0u64;
        for _ in 0..draws {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Top-10 mass of Zipf(1.1, 1000): Σ_{r≤10} r^-1.1 / Σ_{r≤1000} ≈ 0.38.
        let frac = head as f64 / draws as f64;
        assert!(frac > 0.30 && frac < 0.50, "head fraction {frac}");
    }

    #[test]
    fn empirical_matches_theoretical_probabilities() {
        let z = Zipf::new(50, 1.0);
        let mut rng = Xoshiro256::seeded(2);
        let draws = 400_000;
        let mut counts = vec![0u64; 50];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for r in [0u32, 1, 5, 20, 49] {
            let emp = counts[r as usize] as f64 / draws as f64;
            let theory = z.probability(r);
            assert!(
                (emp - theory).abs() < 0.01 + theory * 0.1,
                "rank {r}: empirical {emp:.5} vs theory {theory:.5}"
            );
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let z = Zipf::new(200, 1.3);
        let total: f64 = (0..200).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn samples_within_range() {
        let z = Zipf::new(7, 2.0);
        let mut rng = Xoshiro256::seeded(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn monotone_decreasing_probabilities() {
        let z = Zipf::new(100, 0.9);
        for r in 0..99 {
            assert!(z.probability(r) > z.probability(r + 1));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_vocabulary_rejected() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_exponent_rejected() {
        Zipf::new(10, -1.0);
    }
}
