//! The JU estimator: uniformity assumption + LSH function analysis
//! (§4.2 of the paper).
//!
//! Starting point is the exact identity (Bayes decomposition, Eq. 1):
//!
//! ```text
//!   N_T = (N_H − M·P(H|F)) / (P(H|T) − P(H|F))
//! ```
//!
//! `N_H` and `M` are constants of the table; the conditional
//! probabilities are *estimated* by assuming pair similarity is uniform
//! on `[0, 1]` and integrating the composite collision curve
//! `f(s) = p(s)^k` on both sides of `τ` (Figure 1). Two collision models:
//!
//! * [`CollisionModel::Idealized`] — `p(s) = s` (Definition 3 taken
//!   literally). The integrals close to the paper's Eq. 4:
//!   `ĴU = ((k+1)·N_H − τ^k·M) / Σ_{i=0}^{k−1} τ^i`.
//! * [`CollisionModel::Angular`] — SimHash's true curve
//!   `p(s) = 1 − arccos(s)/π`, integrated numerically (Simpson). This is
//!   the curve the index actually follows, so it is the fair JU variant
//!   to run against SimHash tables; the Idealized variant quantifies how
//!   much the paper's simplification costs (an ablation in the bench
//!   crate).

use crate::estimate::Estimate;
use crate::view::IndexView;
use vsj_vector::AngularKernel;

/// Which single-function collision curve `p(s)` to assume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollisionModel {
    /// `p(s) = s` — Definition 3 / Eq. 4 of the paper (exact for MinHash
    /// over Jaccard similarity).
    Idealized,
    /// `p(s) = 1 − arccos(s)/π` — Charikar's SimHash curve for cosine.
    Angular,
}

impl CollisionModel {
    /// The curve value at similarity `s ∈ [0, 1]`.
    #[inline]
    pub fn p(self, s: f64) -> f64 {
        match self {
            Self::Idealized => s.clamp(0.0, 1.0),
            Self::Angular => AngularKernel.collision_probability(s.clamp(0.0, 1.0)),
        }
    }
}

/// The JU estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformLsh {
    /// Assumed collision model.
    pub model: CollisionModel,
    /// Simpson subdivisions for the numeric model (even, ≥ 2).
    pub integration_steps: usize,
}

impl Default for UniformLsh {
    fn default() -> Self {
        Self {
            model: CollisionModel::Idealized,
            integration_steps: 4096,
        }
    }
}

impl UniformLsh {
    /// Idealized-model estimator (the paper's Eq. 4).
    pub fn idealized() -> Self {
        Self::default()
    }

    /// Angular-model estimator.
    pub fn angular() -> Self {
        Self {
            model: CollisionModel::Angular,
            ..Self::default()
        }
    }

    /// Estimates the join size from a bucket-counted table (or any other
    /// [`IndexView`], e.g. a service snapshot) at `τ`.
    pub fn estimate<V: IndexView + ?Sized>(&self, table: &V, tau: f64) -> Estimate {
        let m = table.total_pairs();
        let nh = table.nh() as f64;
        let k = table.k();
        let tau = tau.clamp(0.0, 1.0);

        let value = match self.model {
            CollisionModel::Idealized => ju_closed_form(nh, m as f64, k, tau),
            CollisionModel::Angular => {
                self.ju_numeric(nh, m as f64, k, tau, |s| CollisionModel::Angular.p(s))
            }
        };
        Estimate::analytic(value, m)
    }

    /// Eq. 1 with conditionals from numeric integration of `p(s)^k`
    /// under the uniformity assumption:
    /// `P(H|F) = (1/τ)·∫₀^τ f`, `P(H|T) = (1/(1−τ))·∫_τ^1 f`.
    fn ju_numeric(&self, nh: f64, m: f64, k: usize, tau: f64, p: impl Fn(f64) -> f64) -> f64 {
        let f = |s: f64| p(s).powi(k as i32);
        let below = simpson(&f, 0.0, tau, self.integration_steps);
        let above = simpson(&f, tau, 1.0, self.integration_steps);
        let p_h_given_f = if tau > 0.0 { below / tau } else { 0.0 };
        let p_h_given_t = if tau < 1.0 { above / (1.0 - tau) } else { 1.0 };
        let denom = p_h_given_t - p_h_given_f;
        if denom <= 0.0 {
            // Degenerate threshold (τ = 1 with p(1) = 1 on both sides);
            // no information in the decomposition.
            return 0.0;
        }
        (nh - m * p_h_given_f) / denom
    }
}

/// The closed form of Appendix A.1:
/// `ĴU = ((k+1)·N_H − τ^k·M) / Σ_{i=0}^{k−1} τ^i`.
pub fn ju_closed_form(nh: f64, m: f64, k: usize, tau: f64) -> f64 {
    let geom: f64 = (0..k).map(|i| tau.powi(i as i32)).sum();
    if geom == 0.0 {
        // k = 0 (no hashing information).
        return 0.0;
    }
    ((k as f64 + 1.0) * nh - tau.powi(k as i32) * m) / geom
}

/// Composite Simpson's rule on `[a, b]` with `steps` subdivisions
/// (rounded up to even).
fn simpson(f: &impl Fn(f64) -> f64, a: f64, b: f64, steps: usize) -> f64 {
    if b <= a {
        return 0.0;
    }
    let n = steps.max(2).next_multiple_of(2);
    let h = (b - a) / n as f64;
    let mut acc = f(a) + f(b);
    for i in 1..n {
        let x = a + h * i as f64;
        acc += f(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    acc * h / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vsj_lsh::{Composite, LshTable, MinHashFamily};
    use vsj_sampling::{Rng, Xoshiro256};
    use vsj_vector::{Jaccard, Similarity, SparseVector, VectorCollection};

    #[test]
    fn closed_form_matches_numeric_for_idealized() {
        // The Appendix A.1 algebra against raw Simpson integration.
        let est = UniformLsh::idealized();
        for k in [1usize, 5, 20] {
            for tau in [0.1, 0.5, 0.9] {
                let nh = 1234.0;
                let m = 1_000_000.0;
                let closed = ju_closed_form(nh, m, k, tau);
                let numeric = est.ju_numeric(nh, m, k, tau, |s| s);
                assert!(
                    (closed - numeric).abs() < 1e-6 * (1.0 + closed.abs()),
                    "k={k} τ={tau}: closed {closed} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn simpson_integrates_polynomials_exactly() {
        // Simpson is exact for cubics.
        let f = |x: f64| 3.0 * x * x;
        assert!((simpson(&f, 0.0, 1.0, 8) - 1.0).abs() < 1e-12);
        let g = |x: f64| x * x * x;
        assert!((simpson(&g, 0.0, 2.0, 8) - 4.0).abs() < 1e-12);
        assert_eq!(simpson(&f, 1.0, 1.0, 8), 0.0);
    }

    /// A synthetic universe where the uniformity assumption *holds*:
    /// pair similarities uniform on [0,1] under Jaccard is hard to build
    /// exactly, so validate on the quantity JU actually consumes — a
    /// table whose N_H is set to the expected value under uniformity.
    #[test]
    fn recovers_truth_when_uniformity_holds() {
        // Under uniform similarity, E[N_H] = M·∫₀¹ s^k ds = M/(k+1) and
        // J(τ) = M·(1−τ). Feed JU the exact N_H and check it returns J.
        let m = 1_000_000.0f64;
        for k in [2usize, 10, 20] {
            let nh = m / (k as f64 + 1.0);
            for tau in [0.2, 0.5, 0.8] {
                let j = ju_closed_form(nh, m, k, tau);
                let truth = m * (1.0 - tau);
                assert!(
                    (j - truth).abs() < 1e-6 * truth,
                    "k={k}, τ={tau}: {j} vs {truth}"
                );
            }
        }
    }

    /// End-to-end on a real MinHash table over data that is approximately
    /// uniform in Jaccard similarity.
    #[test]
    fn minhash_table_estimate_in_right_regime() {
        // Build pairs with graded overlap: vector i shares a sliding
        // window with its neighbours, giving a spread of similarities.
        let mut rng = Xoshiro256::seeded(1);
        let mut vectors = Vec::new();
        for i in 0..400u32 {
            let start = rng.below(200) as u32;
            let len = 6 + rng.below(10) as u32;
            let members: Vec<u32> = (start..start + len).collect();
            vectors.push(SparseVector::binary_from_members(members));
            let _ = i;
        }
        let coll = VectorCollection::from_vectors(vectors);
        let k = 4;
        let hasher = Arc::new(Composite::derive(MinHashFamily::new(), 11, 0, k));
        let table = LshTable::build(&coll, hasher, Some(1));

        let tau = 0.3;
        let n = coll.len() as u32;
        let mut truth = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                if Jaccard.sim(coll.vector(a), coll.vector(b)) >= tau {
                    truth += 1;
                }
            }
        }
        let est = UniformLsh::idealized().estimate(&table, tau);
        // The uniformity assumption is wrong on this data (most pairs are
        // dissimilar), so demand only the documented behaviour: a finite,
        // clamped value in the right order of magnitude.
        assert!(est.value >= 0.0);
        assert!(
            est.value < truth as f64 * 100.0 + 1000.0,
            "JU wildly off: {} vs {truth}",
            est.value
        );
    }

    #[test]
    fn angular_model_differs_from_idealized_on_simhash_scale() {
        // The two curves translate the same table constants into very
        // different join sizes (the angular composite `p(s)^k` is flatter
        // near 1, so the same N_H implies *more* true pairs). This is the
        // ablation's point: using the curve that does not match the
        // index's actual family misreads the evidence by tens of percent.
        let nh = 50_000.0;
        let m = 10_000_000.0;
        let k = 20;
        let tau = 0.7;
        let ideal = ju_closed_form(nh, m, k, tau);
        let angular =
            UniformLsh::angular().ju_numeric(nh, m, k, tau, |s| CollisionModel::Angular.p(s));
        assert!(ideal.is_finite() && angular.is_finite());
        let rel_gap = (angular - ideal).abs() / ideal.max(1.0);
        assert!(
            rel_gap > 0.2,
            "models should disagree materially: idealized {ideal}, angular {angular}"
        );
        assert!(
            angular > ideal,
            "for the same N_H the flatter angular composite implies more true pairs"
        );
    }

    #[test]
    fn estimate_is_clamped() {
        // NH = 0 makes the numerator negative: clamp to 0.
        let j = ju_closed_form(0.0, 1e6, 20, 0.9);
        assert!(j < 0.0, "raw value should be negative here");
        // Via the public API the estimate is clamped.
        let coll = VectorCollection::from_vectors(vec![
            SparseVector::binary_from_members(vec![1]),
            SparseVector::binary_from_members(vec![2]),
            SparseVector::binary_from_members(vec![3]),
        ]);
        let hasher = Arc::new(Composite::derive(MinHashFamily::new(), 1, 0, 20));
        let table = LshTable::build(&coll, hasher, Some(1));
        let est = UniformLsh::idealized().estimate(&table, 0.9);
        assert!(est.value >= 0.0);
        assert_eq!(est.kind, crate::estimate::EstimateKind::Analytic);
    }

    #[test]
    fn collision_models_fixed_points() {
        assert_eq!(CollisionModel::Idealized.p(0.3), 0.3);
        assert!((CollisionModel::Angular.p(0.0) - 0.5).abs() < 1e-12);
        assert!((CollisionModel::Angular.p(1.0) - 1.0).abs() < 1e-12);
        // Clamping.
        assert_eq!(CollisionModel::Idealized.p(1.7), 1.0);
        assert_eq!(CollisionModel::Idealized.p(-0.2), 0.0);
    }
}
