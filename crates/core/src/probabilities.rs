//! Measurement of the stratum probabilities — Tables 1 and 2 of the
//! paper.
//!
//! For a collection, a threshold and a bucket-counted table, the joint
//! distribution of the two binary events `T` (`sim ≥ τ`) and `H` (same
//! bucket) determines everything the analysis of §5.2 needs:
//!
//! * `P(T)` — the join selectivity (why plain RS fails);
//! * `α = P(T|H)` — why SampleH works at high τ;
//! * `P(H|T)` — why discarding `Ĵ_L` at high τ is affordable;
//! * `β = P(T|L)` — why SampleL needs the adaptive guard.
//!
//! [`StratumProbabilities::compute_exact`] enumerates all pairs
//! (threaded); [`StratumProbabilities::estimate_sampled`] samples each
//! stratum for large `n`. The regime classifier of
//! `vsj_sampling::bounds` consumes the `(α, β)` pair.

use std::sync::atomic::{AtomicUsize, Ordering};

use vsj_lsh::LshTable;
use vsj_sampling::bounds::{classify_regime, ThresholdRegime};
use vsj_sampling::Rng;
use vsj_vector::{Similarity, VectorCollection};

/// Row-block size for the threaded pairwise pass.
const ROW_BLOCK: usize = 16;

/// The joint `(T, H)` counts and derived probabilities at one threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StratumProbabilities {
    /// Threshold the probabilities refer to.
    pub tau: f64,
    /// `N_T` — true pairs (the exact join size when computed exactly).
    pub nt: f64,
    /// `N_{H∩T}` — true pairs sharing a bucket.
    pub nht: f64,
    /// `N_H` — same-bucket pairs.
    pub nh: f64,
    /// `M` — all pairs.
    pub m: f64,
}

impl StratumProbabilities {
    /// `P(T) = N_T / M`.
    pub fn p_t(&self) -> f64 {
        safe_div(self.nt, self.m)
    }

    /// `α = P(T|H) = N_{H∩T} / N_H`.
    pub fn alpha(&self) -> f64 {
        safe_div(self.nht, self.nh)
    }

    /// `P(H|T) = N_{H∩T} / N_T`.
    pub fn p_h_given_t(&self) -> f64 {
        safe_div(self.nht, self.nt)
    }

    /// `β = P(T|L) = (N_T − N_{H∩T}) / (M − N_H)`.
    pub fn beta(&self) -> f64 {
        safe_div(self.nt - self.nht, self.m - self.nh)
    }

    /// The §5.2 regime for a database of `n` vectors.
    pub fn regime(&self, n: usize) -> ThresholdRegime {
        classify_regime(self.alpha(), self.beta(), n)
    }

    /// Exact computation by threaded pair enumeration.
    pub fn compute_exact<S: Similarity + Sync>(
        collection: &VectorCollection,
        table: &LshTable,
        measure: &S,
        tau: f64,
        threads: usize,
    ) -> Self {
        assert_eq!(collection.len(), table.len(), "table/collection mismatch");
        let n = collection.len();
        let threads = threads.max(1);
        let cursor = AtomicUsize::new(0);
        // (nt, nht) per worker.
        let scan = |acc: &mut (u64, u64)| {
            let vectors = collection.vectors();
            loop {
                let start = cursor.fetch_add(ROW_BLOCK, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + ROW_BLOCK).min(n);
                for i in start..end {
                    let vi = &vectors[i];
                    for (off, vj) in vectors[i + 1..].iter().enumerate() {
                        if measure.sim(vi, vj) >= tau {
                            acc.0 += 1;
                            let j = i + 1 + off;
                            if table.same_bucket(i as u32, j as u32) {
                                acc.1 += 1;
                            }
                        }
                    }
                }
            }
        };
        let (nt, nht) = if threads == 1 || n < 256 {
            let mut acc = (0u64, 0u64);
            scan(&mut acc);
            acc
        } else {
            let mut parts = vec![(0u64, 0u64); threads];
            crossbeam::thread::scope(|scope| {
                for p in &mut parts {
                    let scan = &scan;
                    scope.spawn(move |_| scan(p));
                }
            })
            .expect("probability workers must not panic");
            parts
                .into_iter()
                .fold((0, 0), |(a, b), (c, d)| (a + c, b + d))
        };
        Self {
            tau,
            nt: nt as f64,
            nht: nht as f64,
            nh: table.nh() as f64,
            m: table.total_pairs() as f64,
        }
    }

    /// Sampled estimation for large collections: `P(T|H)` from
    /// `samples_h` stratum-H draws, `β` from `samples_l` stratum-L draws.
    /// `N_T` is reconstructed from the two stratum estimates
    /// (`N̂_T = α̂·N_H + β̂·N_L`), keeping all five probabilities
    /// consistent.
    pub fn estimate_sampled<S, R>(
        collection: &VectorCollection,
        table: &LshTable,
        measure: &S,
        tau: f64,
        samples_h: u64,
        samples_l: u64,
        rng: &mut R,
    ) -> Self
    where
        S: Similarity,
        R: Rng + ?Sized,
    {
        assert_eq!(collection.len(), table.len(), "table/collection mismatch");
        let nh = table.nh();
        let nl = table.nl();
        let alpha_hat = if nh == 0 || samples_h == 0 {
            0.0
        } else {
            let mut hits = 0u64;
            for _ in 0..samples_h {
                let (u, v) = table
                    .sample_same_bucket_pair(rng)
                    .expect("nh > 0 yields pairs");
                if collection.sim(measure, u, v) >= tau {
                    hits += 1;
                }
            }
            hits as f64 / samples_h as f64
        };
        let beta_hat = if nl == 0 || samples_l == 0 {
            0.0
        } else {
            let mut hits = 0u64;
            for _ in 0..samples_l {
                let (u, v) = table
                    .sample_cross_bucket_pair(rng)
                    .expect("nl > 0 yields pairs");
                if collection.sim(measure, u, v) >= tau {
                    hits += 1;
                }
            }
            hits as f64 / samples_l as f64
        };
        let nht = alpha_hat * nh as f64;
        let nt = nht + beta_hat * nl as f64;
        Self {
            tau,
            nt,
            nht,
            nh: nh as f64,
            m: table.total_pairs() as f64,
        }
    }
}

fn safe_div(a: f64, b: f64) -> f64 {
    if b <= 0.0 {
        0.0
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vsj_lsh::{Composite, MinHashFamily};
    use vsj_sampling::Xoshiro256;
    use vsj_vector::{Jaccard, SparseVector};

    fn corpus() -> VectorCollection {
        let mut rng = Xoshiro256::seeded(3);
        let mut vectors = Vec::new();
        for _ in 0..300 {
            let start = rng.below(150) as u32;
            let len = 5 + rng.below(8) as u32;
            vectors.push(SparseVector::binary_from_members(
                (start..start + len).collect(),
            ));
        }
        for _ in 0..8 {
            vectors.push(SparseVector::binary_from_members((500..512).collect()));
        }
        VectorCollection::from_vectors(vectors)
    }

    fn table(coll: &VectorCollection) -> LshTable {
        let hasher = Arc::new(Composite::derive(MinHashFamily::new(), 9, 0, 6));
        LshTable::build(coll, hasher, Some(1))
    }

    #[test]
    fn identities_hold_exactly() {
        let coll = corpus();
        let t = table(&coll);
        let p = StratumProbabilities::compute_exact(&coll, &t, &Jaccard, 0.5, 1);
        // Bayes consistency: P(H|T)·N_T = α·N_H = N_{H∩T}.
        assert!((p.p_h_given_t() * p.nt - p.nht).abs() < 1e-9);
        assert!((p.alpha() * p.nh - p.nht).abs() < 1e-9);
        // Decomposition: N_T = α·N_H + β·N_L.
        let recon = p.alpha() * p.nh + p.beta() * (p.m - p.nh);
        assert!((recon - p.nt).abs() < 1e-6 * (1.0 + p.nt));
        // All probabilities in [0, 1].
        for v in [p.p_t(), p.alpha(), p.p_h_given_t(), p.beta()] {
            assert!((0.0..=1.0).contains(&v), "{p:?}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let coll = corpus();
        let t = table(&coll);
        let a = StratumProbabilities::compute_exact(&coll, &t, &Jaccard, 0.4, 1);
        let b = StratumProbabilities::compute_exact(&coll, &t, &Jaccard, 0.4, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn table1_shape_alpha_exceeds_beta() {
        // The LSH property in Table 1: P(T|H) ≥ P(T|L) at every τ, and
        // P(H|T) grows with τ.
        let coll = corpus();
        let t = table(&coll);
        let mut prev_h_given_t = 0.0;
        for tau in [0.2, 0.5, 0.8] {
            let p = StratumProbabilities::compute_exact(&coll, &t, &Jaccard, tau, 1);
            assert!(
                p.alpha() >= p.beta(),
                "τ={tau}: α {} < β {}",
                p.alpha(),
                p.beta()
            );
            assert!(
                p.p_h_given_t() >= prev_h_given_t - 0.05,
                "P(H|T) should grow with τ"
            );
            prev_h_given_t = p.p_h_given_t();
        }
    }

    #[test]
    fn sampled_matches_exact() {
        let coll = corpus();
        let t = table(&coll);
        let tau = 0.5;
        let exact = StratumProbabilities::compute_exact(&coll, &t, &Jaccard, tau, 1);
        let mut rng = Xoshiro256::seeded(5);
        let sampled = StratumProbabilities::estimate_sampled(
            &coll, &t, &Jaccard, tau, 40_000, 120_000, &mut rng,
        );
        assert!(
            (sampled.alpha() - exact.alpha()).abs() < 0.02,
            "α: {} vs {}",
            sampled.alpha(),
            exact.alpha()
        );
        assert!(
            (sampled.beta() - exact.beta()).abs() < 0.01 + exact.beta() * 0.3,
            "β: {} vs {}",
            sampled.beta(),
            exact.beta()
        );
    }

    #[test]
    fn regime_classification_wired_through() {
        let coll = corpus();
        let t = table(&coll);
        let p = StratumProbabilities::compute_exact(&coll, &t, &Jaccard, 0.1, 1);
        // Low τ on this corpus: plenty of true pairs everywhere.
        assert_eq!(p.regime(coll.len()), ThresholdRegime::Low);
    }

    #[test]
    fn empty_strata_safe() {
        let coll = VectorCollection::from_vectors(vec![
            SparseVector::binary_from_members(vec![1]),
            SparseVector::binary_from_members(vec![2]),
        ]);
        let t = table(&coll);
        let p = StratumProbabilities::compute_exact(&coll, &t, &Jaccard, 0.5, 1);
        assert_eq!(p.alpha(), 0.0);
        assert_eq!(p.p_t(), 0.0);
    }
}
