//! LSH-SS: stratified sampling using the LSH index — Algorithm 1, the
//! paper's main contribution (§5).
//!
//! The index partitions the `M` pairs into two fixed, disjoint strata:
//!
//! * `S_H` — pairs sharing a bucket (`N_H = Σ_j C(b_j,2)` of them), where
//!   the LSH property concentrates true pairs: `P(T|H)` stays workably
//!   large even when the global selectivity is 1e-7 (Table 1);
//! * `S_L` — everything else, which dominates the join at low thresholds.
//!
//! `Ĵ = Ĵ_H + Ĵ_L` with a *different* procedure per stratum:
//!
//! * `SampleH`: `m_H` uniform draws from `S_H` (bucket by `C(b_j,2)`
//!   weight via alias table, then a uniform pair inside), scaled by
//!   `N_H/m_H`. Plain Chernoff analysis applies (Lemma 1).
//! * `SampleL`: *adaptive* sampling (Lipton et al.) — stop at `δ` true
//!   pairs (scale by `N_L/i`, Theorem 3 regime) or at the budget `m_L`
//!   with fewer, in which case the scaled estimate would be garbage
//!   (Example 1) and the algorithm returns the **safe lower bound**
//!   `Ĵ_L = n_L` — or the dampened `c_s·n_L·N_L/m_L` for LSH-SS(D)
//!   (Theorem 2).
//!
//! Defaults are the paper's: `m_H = m_L = n`, `δ = log₂ n`,
//! LSH-SS(D) uses `c_s = n_L/δ` (§6.1).

use crate::estimate::{clamp_estimate, Estimate, EstimateKind};
use crate::view::IndexView;
use vsj_pool::WorkPool;
use vsj_sampling::Rng;
use vsj_sampling::{AdaptiveOutcome, AdaptiveSampler, Summary};
use vsj_vector::{Similarity, VectorStore};

/// Variance of the scaled stratum estimate `(N/m)·X` from the Welford
/// accumulator over the per-draw indicator contributions.
///
/// With `X ~ Binomial(m, p)`, `Var((N/m)·X) = N²·p(1−p)/m`. The success
/// rate is read back from the accumulated mean with a Jeffreys-style
/// `+½` smoothing, so a degenerate sample (0 or `m` positives) still
/// reports the sampling uncertainty it carries instead of a zero-width
/// interval — the point estimate itself never uses the smoothed rate.
fn stratum_variance(acc: &Summary, stratum: u64) -> f64 {
    let m = acc.count() as f64;
    if acc.count() == 0 || stratum == 0 {
        return 0.0;
    }
    let positives = acc.mean() * m;
    let p = (positives + 0.5) / (m + 1.0);
    let n = stratum as f64;
    n * n * p * (1.0 - p) / m
}

/// Scale-up policy for an exhausted `SampleL` (fewer than `δ` true pairs
/// within the budget).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dampening {
    /// Return the raw count `n_L` — the safe lower bound of Algorithm 1
    /// (plain LSH-SS).
    SafeLowerBound,
    /// Scale by `c_s · N_L/m_L` with a fixed `0 < c_s ≤ 1`.
    Constant(f64),
    /// The paper's LSH-SS(D) experimental setting: `c_s = n_L/δ`
    /// (adaptive confidence — the closer the run got to `δ`, the more of
    /// the full scale-up it keeps).
    NlOverDelta,
}

/// Tunable parameters of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LshSsConfig {
    /// `m_H` — sample size in stratum H.
    pub m_h: u64,
    /// `m_L` — maximum sample size in stratum L.
    pub m_l: u64,
    /// `δ` — answer-size threshold in stratum L.
    pub delta: u64,
    /// Exhaustion policy.
    pub dampening: Dampening,
}

impl LshSsConfig {
    /// The paper's defaults for database size `n`: `m_H = m_L = n`,
    /// `δ = log₂ n`, safe lower bound.
    pub fn paper_defaults(n: usize) -> Self {
        let sampler = AdaptiveSampler::paper_defaults(n);
        Self {
            m_h: n as u64,
            m_l: sampler.max_samples,
            delta: sampler.target_positives,
            dampening: Dampening::SafeLowerBound,
        }
    }
}

/// The LSH-SS estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LshSs {
    /// Algorithm parameters.
    pub config: LshSsConfig,
}

/// Full decomposition of one LSH-SS run — what Figure 2's analysis needs
/// and what a query optimizer can use to judge reliability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LshSsEstimate {
    /// Stratum-H estimate `Ĵ_H`.
    pub jh: f64,
    /// Stratum-L estimate `Ĵ_L`.
    pub jl: f64,
    /// True pairs found by SampleH.
    pub h_positives: u64,
    /// True pairs found by SampleL.
    pub l_positives: u64,
    /// Draws consumed by SampleL.
    pub l_samples: u64,
    /// Whether SampleL terminated by reaching `δ` (reliable scaling).
    pub l_reliable: bool,
    /// Total pairs `M` (for clamping / selectivity).
    pub total_pairs: u64,
    /// Which policy produced `jl` when unreliable.
    pub dampening: Dampening,
    /// Normal-approximation variance of `Ĵ_H` (`N_H²·p̂(1−p̂)/m_H`,
    /// Jeffreys-smoothed rate). Zero when stratum H is empty.
    pub h_variance: f64,
    /// Normal-approximation variance of `Ĵ_L` over the draws SampleL
    /// consumed. When SampleL exhausted its budget the spread is that of
    /// the *fully scaled* estimator at the full budget — deliberately
    /// conservative around the lower-bound / dampened point value.
    pub l_variance: f64,
}

impl LshSsEstimate {
    /// The combined estimate `Ĵ = Ĵ_H + Ĵ_L` as an [`Estimate`].
    pub fn estimate(&self) -> Estimate {
        let kind = if self.l_reliable {
            EstimateKind::Scaled
        } else {
            match self.dampening {
                Dampening::SafeLowerBound => EstimateKind::SafeLowerBound,
                _ => EstimateKind::Dampened,
            }
        };
        Estimate {
            value: clamp_estimate(self.jh + self.jl, self.total_pairs),
            kind,
        }
    }

    /// Combined variance of `Ĵ` — the strata are sampled independently,
    /// so the components add.
    pub fn variance(&self) -> f64 {
        self.h_variance + self.l_variance
    }

    /// Standard error `√Var(Ĵ)` — the half-width unit of a
    /// normal-approximation confidence interval around the estimate.
    pub fn std_err(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// One point of a detailed threshold curve: the per-τ estimate together
/// with its variance decomposition, from
/// [`LshSs::estimate_curve_detailed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurveEstimate {
    /// The join-size estimate at this τ.
    pub estimate: Estimate,
    /// Normal-approximation variance of the stratum-H component.
    pub h_variance: f64,
    /// Normal-approximation variance of the stratum-L component (see
    /// [`LshSsEstimate::l_variance`] for the exhausted-budget
    /// convention).
    pub l_variance: f64,
}

impl CurveEstimate {
    /// Combined variance (the strata are sampled independently).
    pub fn variance(&self) -> f64 {
        self.h_variance + self.l_variance
    }

    /// Standard error `√Var(Ĵ)`.
    pub fn std_err(&self) -> f64 {
        self.variance().sqrt()
    }
}

impl LshSs {
    /// LSH-SS with the paper's defaults for database size `n`.
    pub fn with_defaults(n: usize) -> Self {
        Self {
            config: LshSsConfig::paper_defaults(n),
        }
    }

    /// LSH-SS(D): the dampened variant as configured in §6.1
    /// (`c_s = n_L/δ`).
    pub fn dampened_with_defaults(n: usize) -> Self {
        let mut config = LshSsConfig::paper_defaults(n);
        config.dampening = Dampening::NlOverDelta;
        Self { config }
    }

    /// Runs Algorithm 1 and returns the combined estimate.
    pub fn estimate<C, V, S, R>(
        &self,
        collection: &C,
        table: &V,
        measure: &S,
        tau: f64,
        rng: &mut R,
    ) -> Estimate
    where
        C: VectorStore + ?Sized,
        V: IndexView + ?Sized,
        S: Similarity,
        R: Rng + ?Sized,
    {
        self.estimate_detailed(collection, table, measure, tau, rng)
            .estimate()
    }

    /// Runs Algorithm 1 and returns the full decomposition.
    pub fn estimate_detailed<C, V, S, R>(
        &self,
        collection: &C,
        table: &V,
        measure: &S,
        tau: f64,
        rng: &mut R,
    ) -> LshSsEstimate
    where
        C: VectorStore + ?Sized,
        V: IndexView + ?Sized,
        S: Similarity,
        R: Rng + ?Sized,
    {
        assert_eq!(
            collection.len(),
            table.len(),
            "table must index exactly this collection"
        );
        let total_pairs = table.total_pairs();
        let (jh, h_positives, h_variance) = self.sample_h(collection, table, measure, tau, rng);
        let (jl, l_positives, l_samples, l_reliable, l_variance) =
            self.sample_l(collection, table, measure, tau, rng);
        LshSsEstimate {
            jh,
            jl,
            h_positives,
            l_positives,
            l_samples,
            l_reliable,
            total_pairs,
            dampening: self.config.dampening,
            h_variance,
            l_variance,
        }
    }

    /// Estimates the join size at *several* thresholds from **one**
    /// sampling pass: similarities of the `m_H + m_L` drawn pairs are
    /// recorded once and the per-τ accounting of Algorithm 1 (including
    /// the adaptive stopping rule of SampleL, replayed over the recorded
    /// draw order) is evaluated per threshold.
    ///
    /// This is what a query optimizer probing a selectivity curve or a
    /// dedup workflow sweeping τ wants: ~|τ grid|× fewer similarity
    /// evaluations than calling [`Self::estimate`] per threshold, with
    /// per-τ results distributed identically to a single-τ run whose RNG
    /// happened to draw this sample.
    ///
    /// Returned estimates are in the order of `taus`.
    pub fn estimate_curve<C, V, S, R>(
        &self,
        collection: &C,
        table: &V,
        measure: &S,
        taus: &[f64],
        rng: &mut R,
    ) -> Vec<Estimate>
    where
        C: VectorStore + ?Sized,
        V: IndexView + ?Sized,
        S: Similarity,
        R: Rng + ?Sized,
    {
        self.estimate_curve_detailed(collection, table, measure, taus, rng)
            .into_iter()
            .map(|point| point.estimate)
            .collect()
    }

    /// [`Self::estimate_curve`] with the per-τ variance decomposition
    /// attached to every point. Consumes the RNG identically to
    /// `estimate_curve` (the variance is pure arithmetic over the same
    /// recorded draws), so the point estimates are bit-identical.
    pub fn estimate_curve_detailed<C, V, S, R>(
        &self,
        collection: &C,
        table: &V,
        measure: &S,
        taus: &[f64],
        rng: &mut R,
    ) -> Vec<CurveEstimate>
    where
        C: VectorStore + ?Sized,
        V: IndexView + ?Sized,
        S: Similarity,
        R: Rng + ?Sized,
    {
        assert_eq!(
            collection.len(),
            table.len(),
            "table must index exactly this collection"
        );
        // One shared pass: record similarities in draw order.
        let h_sims: Vec<f64> = if table.nh() == 0 {
            Vec::new()
        } else {
            (0..self.config.m_h)
                .map(|_| {
                    let (u, v) = table
                        .sample_same_bucket_pair(rng)
                        .expect("nh > 0 guarantees a same-bucket pair");
                    collection.sim(measure, u, v)
                })
                .collect()
        };
        let l_sims: Vec<f64> = if table.nl() == 0 {
            Vec::new()
        } else {
            (0..self.config.m_l)
                .map(|_| {
                    let (u, v) = table
                        .sample_cross_bucket_pair(rng)
                        .expect("nl > 0 guarantees a cross-bucket pair");
                    collection.sim(measure, u, v)
                })
                .collect()
        };
        taus.iter()
            .map(|&tau| {
                self.replay_detailed(
                    &h_sims,
                    &l_sims,
                    table.nh(),
                    table.nl(),
                    tau,
                    table.total_pairs(),
                )
            })
            .collect()
    }

    /// [`Self::estimate_curve_detailed`] with the similarity evaluations
    /// and per-τ replays fanned out across `pool`, **bit-identical** to
    /// the serial pass at any thread count.
    ///
    /// Why this is safe to parallelize: only the pair *draws* consume the
    /// RNG; evaluating `sim(u, v)` and replaying the recorded draws at a
    /// threshold are pure. So the draws run serially here in exactly the
    /// serial method's order (same RNG consumption, same pairs), while
    /// the expensive parts — one similarity per drawn pair, one replay
    /// per τ — are mapped on the pool with ordered collection. A
    /// one-thread pool delegates to the serial method outright.
    pub fn estimate_curve_detailed_pooled<C, V, S, R>(
        &self,
        collection: &C,
        table: &V,
        measure: &S,
        taus: &[f64],
        rng: &mut R,
        pool: &WorkPool,
    ) -> Vec<CurveEstimate>
    where
        C: VectorStore + Sync + ?Sized,
        V: IndexView + ?Sized,
        S: Similarity + Sync,
        R: Rng + ?Sized,
    {
        if pool.threads() <= 1 {
            return self.estimate_curve_detailed(collection, table, measure, taus, rng);
        }
        assert_eq!(
            collection.len(),
            table.len(),
            "table must index exactly this collection"
        );
        // Serial draw pass: consumes the RNG exactly like the serial
        // method (similarity evaluation never touches the generator).
        let h_pairs: Vec<_> = if table.nh() == 0 {
            Vec::new()
        } else {
            (0..self.config.m_h)
                .map(|_| {
                    table
                        .sample_same_bucket_pair(rng)
                        .expect("nh > 0 guarantees a same-bucket pair")
                })
                .collect()
        };
        let l_pairs: Vec<_> = if table.nl() == 0 {
            Vec::new()
        } else {
            (0..self.config.m_l)
                .map(|_| {
                    table
                        .sample_cross_bucket_pair(rng)
                        .expect("nl > 0 guarantees a cross-bucket pair")
                })
                .collect()
        };
        let h_sims =
            pool.parallel_map_indexed(&h_pairs, |_, &(u, v)| collection.sim(measure, u, v));
        let l_sims =
            pool.parallel_map_indexed(&l_pairs, |_, &(u, v)| collection.sim(measure, u, v));
        let (nh, nl, total_pairs) = (table.nh(), table.nl(), table.total_pairs());
        pool.parallel_map_indexed(taus, |_, &tau| {
            self.replay_detailed(&h_sims, &l_sims, nh, nl, tau, total_pairs)
        })
    }

    /// Per-τ accounting over recorded similarities, estimate only
    /// (separated for direct testing of the replay semantics).
    #[cfg(test)]
    fn replay(
        &self,
        h_sims: &[f64],
        l_sims: &[f64],
        nh: u64,
        nl: u64,
        tau: f64,
        total_pairs: u64,
    ) -> Estimate {
        self.replay_detailed(h_sims, l_sims, nh, nl, tau, total_pairs)
            .estimate
    }

    /// Per-τ accounting over recorded similarities (shared by
    /// [`Self::estimate_curve_detailed`]): the point estimate plus the
    /// per-stratum variance, accumulated by Welford over the indicator
    /// contributions of the draws this τ consumed.
    fn replay_detailed(
        &self,
        h_sims: &[f64],
        l_sims: &[f64],
        nh: u64,
        nl: u64,
        tau: f64,
        total_pairs: u64,
    ) -> CurveEstimate {
        // SampleH: plain scaled count.
        let (jh, h_variance) = if h_sims.is_empty() {
            (0.0, 0.0)
        } else {
            let mut acc = Summary::new();
            let mut positives = 0u64;
            for &s in h_sims {
                let hit = s >= tau;
                acc.push(if hit { 1.0 } else { 0.0 });
                if hit {
                    positives += 1;
                }
            }
            (
                positives as f64 * (nh as f64 / h_sims.len() as f64),
                stratum_variance(&acc, nh),
            )
        };
        // SampleL: replay the adaptive rule over the draw order. The
        // Welford accumulator sees exactly the draws this τ consumed —
        // up to the adaptive stop, or the whole budget on exhaustion.
        let (jl, reliable, l_variance) = if l_sims.is_empty() {
            (0.0, true, 0.0)
        } else {
            let mut acc = Summary::new();
            let mut positives = 0u64;
            let mut stopped_at = None;
            for (i, &s) in l_sims.iter().enumerate() {
                let hit = s >= tau;
                acc.push(if hit { 1.0 } else { 0.0 });
                if hit {
                    positives += 1;
                    if positives >= self.config.delta && self.config.delta > 0 {
                        stopped_at = Some(i as u64 + 1);
                        break;
                    }
                }
            }
            let l_variance = stratum_variance(&acc, nl);
            match stopped_at {
                Some(i) => (positives as f64 * (nl as f64 / i as f64), true, l_variance),
                None => {
                    let jl = match self.config.dampening {
                        Dampening::SafeLowerBound => positives as f64,
                        Dampening::Constant(cs) => (cs.clamp(0.0, 1.0)
                            * positives as f64
                            * (nl as f64 / l_sims.len() as f64))
                            .max(positives as f64),
                        Dampening::NlOverDelta => {
                            let cs = if self.config.delta == 0 {
                                1.0
                            } else {
                                positives as f64 / self.config.delta as f64
                            };
                            (cs.clamp(0.0, 1.0)
                                * positives as f64
                                * (nl as f64 / l_sims.len() as f64))
                                .max(positives as f64)
                        }
                    };
                    (jl, false, l_variance)
                }
            }
        };
        let kind = if reliable {
            EstimateKind::Scaled
        } else {
            match self.config.dampening {
                Dampening::SafeLowerBound => EstimateKind::SafeLowerBound,
                _ => EstimateKind::Dampened,
            }
        };
        CurveEstimate {
            estimate: Estimate {
                value: clamp_estimate(jh + jl, total_pairs),
                kind,
            },
            h_variance,
            l_variance,
        }
    }

    /// `SampleH` (Algorithm 1): uniform sampling in `S_H`, scaled by
    /// `N_H/m_H`.
    fn sample_h<C, V, S, R>(
        &self,
        collection: &C,
        table: &V,
        measure: &S,
        tau: f64,
        rng: &mut R,
    ) -> (f64, u64, f64)
    where
        C: VectorStore + ?Sized,
        V: IndexView + ?Sized,
        S: Similarity,
        R: Rng + ?Sized,
    {
        if table.nh() == 0 || self.config.m_h == 0 {
            return (0.0, 0, 0.0);
        }
        let mut acc = Summary::new();
        let mut positives = 0u64;
        for _ in 0..self.config.m_h {
            let (u, v) = table
                .sample_same_bucket_pair(rng)
                .expect("nh > 0 guarantees a same-bucket pair");
            let hit = collection.sim(measure, u, v) >= tau;
            acc.push(if hit { 1.0 } else { 0.0 });
            if hit {
                positives += 1;
            }
        }
        (
            positives as f64 * (table.nh() as f64 / self.config.m_h as f64),
            positives,
            stratum_variance(&acc, table.nh()),
        )
    }

    /// `SampleL` (Algorithm 1): adaptive sampling in `S_L` with safe
    /// lower bound / dampening on exhaustion.
    fn sample_l<C, V, S, R>(
        &self,
        collection: &C,
        table: &V,
        measure: &S,
        tau: f64,
        rng: &mut R,
    ) -> (f64, u64, u64, bool, f64)
    where
        C: VectorStore + ?Sized,
        V: IndexView + ?Sized,
        S: Similarity,
        R: Rng + ?Sized,
    {
        let nl = table.nl();
        if nl == 0 || self.config.m_l == 0 {
            return (0.0, 0, 0, true, 0.0);
        }
        let mut acc = Summary::new();
        let sampler = AdaptiveSampler::new(self.config.delta, self.config.m_l);
        let outcome = sampler.run(nl, || {
            let (u, v) = table
                .sample_cross_bucket_pair(rng)
                .expect("nl > 0 guarantees a cross-bucket pair");
            let hit = collection.sim(measure, u, v) >= tau;
            acc.push(if hit { 1.0 } else { 0.0 });
            hit
        });
        let reliable = outcome.is_reliable();
        let jl = match (&outcome, self.config.dampening) {
            (_, Dampening::SafeLowerBound) => outcome.safe_estimate(),
            (AdaptiveOutcome::Scaled { .. }, _) => outcome.safe_estimate(),
            (AdaptiveOutcome::Exhausted { positives, .. }, Dampening::Constant(cs)) => outcome
                .dampened_estimate(nl, cs.clamp(0.0, 1.0))
                .max(*positives as f64),
            (AdaptiveOutcome::Exhausted { positives, .. }, Dampening::NlOverDelta) => {
                let cs = if self.config.delta == 0 {
                    1.0
                } else {
                    *positives as f64 / self.config.delta as f64
                };
                outcome
                    .dampened_estimate(nl, cs.clamp(0.0, 1.0))
                    .max(*positives as f64)
            }
        };
        (
            jl,
            outcome.positives(),
            outcome.samples(),
            reliable,
            stratum_variance(&acc, nl),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vsj_lsh::{Composite, LshTable, MinHashFamily, SimHashFamily};
    use vsj_sampling::Xoshiro256;
    use vsj_vector::{Cosine, Jaccard, SparseVector, VectorCollection};

    /// DBLP-in-miniature: skewed similarity with duplicate clusters.
    fn corpus(n_base: u32, seed: u64) -> VectorCollection {
        let mut rng = Xoshiro256::seeded(seed);
        let mut vectors = Vec::new();
        for _ in 0..n_base {
            let start = rng.below(400) as u32;
            let len = 6 + rng.below(10) as u32;
            let members: Vec<u32> = (0..len).map(|j| start + j * 3).collect();
            vectors.push(SparseVector::binary_from_members(members));
        }
        // Duplicate clusters: ~4% of base, pairs at Jaccard ∈ [0.6, 1].
        for c in 0..(n_base / 25).max(1) {
            let base: Vec<u32> = (0..10).map(|j| 2000 + c * 40 + j).collect();
            vectors.push(SparseVector::binary_from_members(base.clone()));
            let mut copy = base;
            if c % 2 == 0 {
                copy.pop();
                copy.push(9000 + c);
            }
            vectors.push(SparseVector::binary_from_members(copy));
        }
        let mut v = vectors;
        rng.shuffle(&mut v);
        VectorCollection::from_vectors(v)
    }

    fn exact(coll: &VectorCollection, tau: f64) -> u64 {
        let n = coll.len() as u32;
        let mut c = 0;
        for a in 0..n {
            for b in (a + 1)..n {
                if Jaccard.sim(coll.vector(a), coll.vector(b)) >= tau {
                    c += 1;
                }
            }
        }
        c
    }

    fn minhash_table(coll: &VectorCollection, k: usize, seed: u64) -> LshTable {
        let hasher = Arc::new(Composite::derive(MinHashFamily::new(), seed, 0, k));
        LshTable::build(coll, hasher, Some(1))
    }

    #[test]
    fn accurate_at_high_threshold() {
        // The headline claim: reliable estimates at τ where RS collapses.
        let coll = corpus(800, 1);
        let n = coll.len();
        let table = minhash_table(&coll, 8, 5);
        let tau = 0.85;
        let truth = exact(&coll, tau) as f64;
        assert!(truth >= 10.0, "fixture needs a duplicate tail: {truth}");
        let est = LshSs::with_defaults(n);
        let mut rng = Xoshiro256::seeded(2);
        let mut vals = Vec::new();
        for _ in 0..20 {
            vals.push(est.estimate(&coll, &table, &Jaccard, tau, &mut rng).value);
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(
            mean > truth * 0.5 && mean < truth * 2.0,
            "mean {mean} vs truth {truth}"
        );
        // And low variance relative to RS-style all-or-nothing: no single
        // estimate an order of magnitude off.
        for &v in &vals {
            assert!(v < truth * 15.0, "wild overestimate {v} (truth {truth})");
        }
    }

    #[test]
    fn accurate_at_low_threshold() {
        let coll = corpus(600, 3);
        let n = coll.len();
        let table = minhash_table(&coll, 8, 7);
        let tau = 0.15;
        let truth = exact(&coll, tau) as f64;
        assert!(truth > 100.0);
        let est = LshSs::with_defaults(n);
        let mut rng = Xoshiro256::seeded(4);
        let mut vals = Vec::new();
        for _ in 0..20 {
            vals.push(est.estimate(&coll, &table, &Jaccard, tau, &mut rng).value);
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(
            (mean - truth).abs() / truth < 0.35,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn rarely_overestimates() {
        // §6.2: "LSH-SS hardly overestimates". Count big overestimates
        // across thresholds and trials.
        let coll = corpus(500, 5);
        let n = coll.len();
        let table = minhash_table(&coll, 8, 9);
        let est = LshSs::with_defaults(n);
        let mut rng = Xoshiro256::seeded(6);
        let mut big_over = 0;
        let mut trials = 0;
        for tau in [0.3, 0.5, 0.7, 0.9] {
            let truth = exact(&coll, tau) as f64;
            for _ in 0..25 {
                let v = est.estimate(&coll, &table, &Jaccard, tau, &mut rng).value;
                trials += 1;
                if truth > 0.0 && v / truth >= 10.0 {
                    big_over += 1;
                }
            }
        }
        assert!(
            big_over <= trials / 20,
            "{big_over}/{trials} big overestimates"
        );
    }

    #[test]
    fn safe_lower_bound_engages_in_the_grey_zone() {
        // Construct a regime where SampleL must exhaust: high τ, tiny
        // budget.
        let coll = corpus(400, 7);
        let table = minhash_table(&coll, 8, 11);
        let est = LshSs {
            config: LshSsConfig {
                m_h: 200,
                m_l: 200,
                delta: 64, // unreachable at this τ within 200 draws
                dampening: Dampening::SafeLowerBound,
            },
        };
        let mut rng = Xoshiro256::seeded(8);
        let d = est.estimate_detailed(&coll, &table, &Jaccard, 0.9, &mut rng);
        assert!(!d.l_reliable);
        // Safe lower bound: jl is the raw count, tiny.
        assert!(d.jl <= 64.0);
        assert_eq!(d.estimate().kind, EstimateKind::SafeLowerBound);
    }

    #[test]
    fn dampening_interpolates_between_bound_and_full_scale() {
        let coll = corpus(400, 9);
        let table = minhash_table(&coll, 8, 13);
        let base = LshSsConfig {
            m_h: 100,
            m_l: 300,
            delta: 1000, // always exhausts
            dampening: Dampening::SafeLowerBound,
        };
        let tau = 0.4;
        let mut safe_rng = Xoshiro256::seeded(10);
        let mut damp_rng = Xoshiro256::seeded(10); // same stream
        let safe =
            LshSs { config: base }.estimate_detailed(&coll, &table, &Jaccard, tau, &mut safe_rng);
        let damp = LshSs {
            config: LshSsConfig {
                dampening: Dampening::Constant(0.5),
                ..base
            },
        }
        .estimate_detailed(&coll, &table, &Jaccard, tau, &mut damp_rng);
        // Identical RNG stream ⇒ identical samples ⇒ jl ordering is
        // deterministic: safe ≤ dampened ≤ full scale.
        assert_eq!(safe.l_positives, damp.l_positives);
        assert!(!safe.l_reliable && !damp.l_reliable);
        let full = safe.l_positives as f64 * (table.nl() as f64 / safe.l_samples as f64);
        assert!(
            safe.jl <= damp.jl + 1e-9,
            "safe {} damp {}",
            safe.jl,
            damp.jl
        );
        assert!(damp.jl <= full + 1e-9, "damp {} full {full}", damp.jl);
        assert_eq!(damp.estimate().kind, EstimateKind::Dampened);
    }

    #[test]
    fn nl_over_delta_dampening_scales_with_evidence() {
        // cs = n_L/δ: with zero positives the dampened estimate is 0
        // (equals the safe bound); with positives it exceeds it.
        let coll = corpus(400, 11);
        let table = minhash_table(&coll, 8, 15);
        let est = LshSs {
            config: LshSsConfig {
                m_h: 50,
                m_l: 400,
                delta: 1_000,
                dampening: Dampening::NlOverDelta,
            },
        };
        let mut rng = Xoshiro256::seeded(12);
        let d = est.estimate_detailed(&coll, &table, &Jaccard, 0.35, &mut rng);
        assert!(!d.l_reliable);
        if d.l_positives > 0 {
            let cs = d.l_positives as f64 / 1000.0;
            let full = d.l_positives as f64 * (table.nl() as f64 / d.l_samples as f64);
            assert!((d.jl - (cs * full).max(d.l_positives as f64)).abs() < 1e-9);
        } else {
            assert_eq!(d.jl, 0.0);
        }
    }

    #[test]
    fn strata_decompose_exactly() {
        // J = J_H + J_L must hold for the *true* quantities; verify the
        // estimator's strata against brute force on a small instance.
        let coll = corpus(120, 13);
        let table = minhash_table(&coll, 6, 17);
        let tau = 0.5;
        let n = coll.len() as u32;
        let (mut jh_true, mut jl_true) = (0u64, 0u64);
        for a in 0..n {
            for b in (a + 1)..n {
                if Jaccard.sim(coll.vector(a), coll.vector(b)) >= tau {
                    if table.same_bucket(a, b) {
                        jh_true += 1;
                    } else {
                        jl_true += 1;
                    }
                }
            }
        }
        assert_eq!(jh_true + jl_true, exact(&coll, tau));
        // With exhaustive sampling budgets the estimates converge to the
        // per-stratum truths.
        let est = LshSs {
            config: LshSsConfig {
                m_h: 60_000,
                m_l: 60_000,
                delta: 30,
                dampening: Dampening::SafeLowerBound,
            },
        };
        let mut rng = Xoshiro256::seeded(14);
        let mut jh_sum = 0.0;
        let mut jl_sum = 0.0;
        let trials = 15;
        for _ in 0..trials {
            let d = est.estimate_detailed(&coll, &table, &Jaccard, tau, &mut rng);
            jh_sum += d.jh;
            jl_sum += d.jl;
        }
        let jh_mean = jh_sum / trials as f64;
        let jl_mean = jl_sum / trials as f64;
        if jh_true > 0 {
            assert!(
                (jh_mean - jh_true as f64).abs() / jh_true as f64 > -1.0
                    && (jh_mean - jh_true as f64).abs() < jh_true as f64 * 0.5 + 3.0,
                "ĴH {jh_mean} vs {jh_true}"
            );
        }
        if jl_true > 0 {
            assert!(
                (jl_mean - jl_true as f64).abs() < jl_true as f64 * 0.5 + 3.0,
                "ĴL {jl_mean} vs {jl_true}"
            );
        }
    }

    #[test]
    fn works_with_simhash_and_cosine() {
        // The paper's actual configuration: SimHash buckets + cosine.
        let coll = corpus(500, 15);
        let n = coll.len();
        let hasher = Arc::new(Composite::derive(SimHashFamily::new(), 21, 0, 12));
        let table = LshTable::build(&coll, hasher, Some(1));
        let tau = 0.9;
        let n_ids = coll.len() as u32;
        let mut truth = 0u64;
        for a in 0..n_ids {
            for b in (a + 1)..n_ids {
                if Cosine.sim(coll.vector(a), coll.vector(b)) >= tau {
                    truth += 1;
                }
            }
        }
        assert!(truth >= 5, "fixture needs a cosine tail: {truth}");
        let est = LshSs::with_defaults(n);
        let mut rng = Xoshiro256::seeded(16);
        let mut sum = 0.0;
        for _ in 0..20 {
            sum += est.estimate(&coll, &table, &Cosine, tau, &mut rng).value;
        }
        let mean = sum / 20.0;
        assert!(
            mean > truth as f64 * 0.3 && mean < truth as f64 * 3.0,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn empty_strata_are_handled() {
        // All-identical collection: S_L empty.
        let coll =
            VectorCollection::from_vectors(vec![SparseVector::binary_from_members(vec![1, 2]); 5]);
        let table = minhash_table(&coll, 4, 19);
        assert_eq!(table.nl(), 0);
        let est = LshSs::with_defaults(5);
        let mut rng = Xoshiro256::seeded(18);
        let d = est.estimate_detailed(&coll, &table, &Jaccard, 0.5, &mut rng);
        assert_eq!(d.jl, 0.0);
        assert!(
            (d.jh - 10.0).abs() < 1e-9,
            "all 10 pairs are true: {}",
            d.jh
        );

        // All-distinct collection at high k: S_H empty.
        let coll2 = VectorCollection::from_vectors(
            (0..6)
                .map(|i| SparseVector::binary_from_members(vec![100 * i]))
                .collect(),
        );
        let table2 = minhash_table(&coll2, 24, 23);
        assert_eq!(table2.nh(), 0);
        let d2 = est.estimate_detailed(&coll2, &table2, &Jaccard, 0.5, &mut rng);
        assert_eq!(d2.jh, 0.0);
    }

    #[test]
    #[should_panic(expected = "exactly this collection")]
    fn mismatched_table_rejected() {
        let coll = corpus(50, 17);
        let other = corpus(60, 19);
        let table = minhash_table(&other, 4, 25);
        let est = LshSs::with_defaults(50);
        let mut rng = Xoshiro256::seeded(20);
        est.estimate(&coll, &table, &Jaccard, 0.5, &mut rng);
    }

    #[test]
    fn curve_replay_semantics() {
        // Direct test of the per-τ accounting over crafted similarities.
        let est = LshSs {
            config: LshSsConfig {
                m_h: 4,
                m_l: 6,
                delta: 2,
                dampening: Dampening::SafeLowerBound,
            },
        };
        let h_sims = [0.9, 0.2, 0.9, 0.5];
        let l_sims = [0.1, 0.6, 0.1, 0.7, 0.1, 0.1];
        let (nh, nl, m) = (100u64, 1000u64, 10_000u64);
        // τ = 0.5: SampleH sees 3/4 positives -> jh = 75. SampleL reaches
        // δ = 2 at draw 4 (0.6 and 0.7) -> jl = 2 * 1000/4 = 500.
        let e = est.replay(&h_sims, &l_sims, nh, nl, 0.5, m);
        assert_eq!(e.kind, EstimateKind::Scaled);
        assert!((e.value - (75.0 + 500.0)).abs() < 1e-9, "{}", e.value);
        // τ = 0.8: SampleH 2/4 -> jh = 50. SampleL finds 0 positives ->
        // exhausted -> safe lower bound 0.
        let e = est.replay(&h_sims, &l_sims, nh, nl, 0.8, m);
        assert_eq!(e.kind, EstimateKind::SafeLowerBound);
        assert!((e.value - 50.0).abs() < 1e-9, "{}", e.value);
        // τ = 0.65: SampleL finds exactly 1 positive (0.7) < δ -> safe
        // bound contributes the raw count 1.
        let e = est.replay(&h_sims, &l_sims, nh, nl, 0.65, m);
        assert!((e.value - (50.0 + 1.0)).abs() < 1e-9, "{}", e.value);
    }

    #[test]
    fn replay_variance_pins() {
        // Same crafted fixture as curve_replay_semantics, now pinning the
        // variance components (Jeffreys-smoothed p̃ = (k + ½)/(m + 1)).
        let est = LshSs {
            config: LshSsConfig {
                m_h: 4,
                m_l: 6,
                delta: 2,
                dampening: Dampening::SafeLowerBound,
            },
        };
        let h_sims = [0.9, 0.2, 0.9, 0.5];
        let l_sims = [0.1, 0.6, 0.1, 0.7, 0.1, 0.1];
        let (nh, nl, m) = (100u64, 1000u64, 10_000u64);

        // τ = 0.5: SampleH sees 3/4 -> p̃ = 3.5/5 = 0.7,
        // var_h = 100² · 0.7 · 0.3 / 4 = 525. SampleL stops at draw 4
        // with 2 positives -> p̃ = 2.5/5 = 0.5,
        // var_l = 1000² · 0.25 / 4 = 62500.
        let d = est.replay_detailed(&h_sims, &l_sims, nh, nl, 0.5, m);
        assert!((d.h_variance - 525.0).abs() < 1e-9, "{}", d.h_variance);
        assert!((d.l_variance - 62_500.0).abs() < 1e-9, "{}", d.l_variance);
        assert!((d.variance() - 63_025.0).abs() < 1e-9);
        assert!((d.std_err() - 63_025.0_f64.sqrt()).abs() < 1e-9);

        // τ = 0.8: SampleL exhausts all 6 draws with 0 positives. The
        // smoothing keeps the interval open: p̃ = 0.5/7,
        // var_l = 1000² · p̃(1 − p̃) / 6 > 0 even on a degenerate sample.
        let d = est.replay_detailed(&h_sims, &l_sims, nh, nl, 0.8, m);
        let p = 0.5 / 7.0;
        let want = 1000.0 * 1000.0 * p * (1.0 - p) / 6.0;
        assert!((d.l_variance - want).abs() < 1e-6, "{}", d.l_variance);
        assert!(d.std_err() > 0.0, "degenerate sample must keep CI open");

        // Empty strata contribute zero variance.
        let d = est.replay_detailed(&[], &l_sims, 0, nl, 0.5, m);
        assert_eq!(d.h_variance, 0.0);
        let d = est.replay_detailed(&h_sims, &[], nh, 0, 0.5, m);
        assert_eq!(d.l_variance, 0.0);
    }

    #[test]
    fn curve_detailed_is_bit_identical_to_curve() {
        // estimate_curve is a thin wrapper over estimate_curve_detailed;
        // the point estimates must agree bit-for-bit from equal RNG state.
        let coll = corpus(400, 41);
        let table = minhash_table(&coll, 8, 43);
        let est = LshSs::with_defaults(coll.len());
        let taus = [0.2, 0.5, 0.8, 0.95];
        let mut rng_a = Xoshiro256::seeded(77);
        let mut rng_b = Xoshiro256::seeded(77);
        let curve = est.estimate_curve(&coll, &table, &Jaccard, &taus, &mut rng_a);
        let detailed = est.estimate_curve_detailed(&coll, &table, &Jaccard, &taus, &mut rng_b);
        assert_eq!(curve.len(), detailed.len());
        for (e, d) in curve.iter().zip(&detailed) {
            assert_eq!(e.value.to_bits(), d.estimate.value.to_bits());
            assert_eq!(e.kind, d.estimate.kind);
            assert!(d.h_variance >= 0.0 && d.l_variance >= 0.0);
            assert!(d.std_err().is_finite());
        }
    }

    #[test]
    fn pooled_curve_is_bit_identical_to_serial() {
        // The pool must not change a single bit of any curve point — the
        // whole parallel estimate path rests on this equivalence. Checked
        // at several thread counts, RNG states, and a τ grid wide enough
        // to exercise both strata and the adaptive stop.
        let coll = corpus(500, 61);
        let table = minhash_table(&coll, 6, 67);
        let est = LshSs::with_defaults(coll.len());
        let taus = [0.05, 0.2, 0.5, 0.8, 0.95, 1.0];
        for seed in [7u64, 77, 777] {
            let mut serial_rng = Xoshiro256::seeded(seed);
            let serial =
                est.estimate_curve_detailed(&coll, &table, &Jaccard, &taus, &mut serial_rng);
            for threads in [1usize, 2, 8] {
                let pool = vsj_pool::WorkPool::new(threads);
                let mut rng = Xoshiro256::seeded(seed);
                let pooled = est.estimate_curve_detailed_pooled(
                    &coll, &table, &Jaccard, &taus, &mut rng, &pool,
                );
                // The pooled pass consumes the RNG identically.
                assert_eq!(rng, serial_rng, "threads={threads} seed={seed}");
                assert_eq!(pooled.len(), serial.len());
                for (p, s) in pooled.iter().zip(&serial) {
                    assert_eq!(
                        p.estimate.value.to_bits(),
                        s.estimate.value.to_bits(),
                        "threads={threads} seed={seed}"
                    );
                    assert_eq!(p.estimate.kind, s.estimate.kind);
                    assert_eq!(p.h_variance.to_bits(), s.h_variance.to_bits());
                    assert_eq!(p.l_variance.to_bits(), s.l_variance.to_bits());
                }
            }
        }
    }

    #[test]
    fn estimate_detailed_variance_is_positive_on_real_corpora() {
        let coll = corpus(300, 47);
        let table = minhash_table(&coll, 8, 53);
        let est = LshSs::with_defaults(coll.len());
        let mut rng = Xoshiro256::seeded(91);
        let d = est.estimate_detailed(&coll, &table, &Jaccard, 0.7, &mut rng);
        assert!(d.h_variance >= 0.0);
        assert!(d.l_variance >= 0.0);
        assert!(
            d.std_err() > 0.0,
            "a sampled estimate on a non-degenerate corpus carries spread"
        );
        assert!((d.variance() - (d.h_variance + d.l_variance)).abs() < 1e-12);
    }

    #[test]
    fn curve_matches_componentwise_bounds_and_h_monotonicity() {
        let coll = corpus(500, 21);
        let table = minhash_table(&coll, 8, 27);
        let est = LshSs::with_defaults(coll.len());
        let taus = [0.1, 0.3, 0.5, 0.7, 0.9];
        let mut rng = Xoshiro256::seeded(30);
        let curve = est.estimate_curve(&coll, &table, &Jaccard, &taus, &mut rng);
        assert_eq!(curve.len(), taus.len());
        let m = coll.total_pairs() as f64;
        for e in &curve {
            assert!(e.value.is_finite() && e.value >= 0.0 && e.value <= m);
        }
        // Same recorded sample ⇒ the stratum-H component is monotone in τ,
        // and here S_H dominates at high τ: spot-check global ordering on
        // the high end where jl is a lower bound.
        assert!(
            curve[4].value <= curve[2].value + 1e-9,
            "curve rose from τ=0.5 to τ=0.9: {:?}",
            curve.iter().map(|e| e.value).collect::<Vec<_>>()
        );
    }

    #[test]
    fn curve_mean_matches_single_tau_estimates() {
        // Distributional agreement: curve estimates at one τ average to
        // the same place as independent single-τ runs.
        let coll = corpus(600, 23);
        let table = minhash_table(&coll, 8, 29);
        let est = LshSs::with_defaults(coll.len());
        let tau = 0.85;
        let mut rng = Xoshiro256::seeded(31);
        let trials = 15;
        let mut curve_sum = 0.0;
        let mut single_sum = 0.0;
        for _ in 0..trials {
            curve_sum += est.estimate_curve(&coll, &table, &Jaccard, &[tau], &mut rng)[0].value;
            single_sum += est.estimate(&coll, &table, &Jaccard, tau, &mut rng).value;
        }
        let (mc, ms) = (curve_sum / trials as f64, single_sum / trials as f64);
        // Same estimator, same distribution: means within 50% of each
        // other (both near truth per the accuracy tests).
        assert!(
            (mc - ms).abs() <= 0.5 * ms.max(1.0),
            "curve mean {mc} vs single-τ mean {ms}"
        );
    }

    #[test]
    fn paper_defaults_shape() {
        let c = LshSsConfig::paper_defaults(34_000);
        assert_eq!(c.m_h, 34_000);
        assert_eq!(c.m_l, 34_000);
        assert_eq!(c.delta, 16);
        assert_eq!(c.dampening, Dampening::SafeLowerBound);
        let d = LshSs::dampened_with_defaults(34_000);
        assert_eq!(d.config.dampening, Dampening::NlOverDelta);
    }
}
