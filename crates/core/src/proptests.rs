//! Property-based invariants of the estimator layer.
//!
//! Complements the per-module unit tests: here proptest generates
//! arbitrary small corpora, index parameters, thresholds and seeds, and
//! checks the contracts every estimator must keep *unconditionally* —
//! range, determinism, stratum algebra, and the monotonicities the math
//! implies.

use std::sync::Arc;

use proptest::prelude::*;

use crate::lshss::{Dampening, LshSs, LshSsConfig};
use crate::rs::{RsCross, RsPop};
use crate::uniform::ju_closed_form;
use vsj_lsh::{Composite, LshTable, MinHashFamily};
use vsj_sampling::Xoshiro256;
use vsj_vector::{Jaccard, SparseVector, VectorCollection};

/// Arbitrary small binary corpus: windows over a compact universe give a
/// realistic mix of disjoint, overlapping and duplicate vectors.
fn arb_collection() -> impl Strategy<Value = VectorCollection> {
    proptest::collection::vec((0u32..60, 2u32..10), 3..40).prop_map(|specs| {
        specs
            .into_iter()
            .map(|(start, len)| SparseVector::binary_from_members((start..start + len).collect()))
            .collect()
    })
}

fn table_for(coll: &VectorCollection, k: usize, seed: u64) -> LshTable {
    let hasher = Arc::new(Composite::derive(MinHashFamily::new(), seed, 0, k));
    LshTable::build(coll, hasher, Some(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_lshss_estimate_in_range_and_deterministic(
        coll in arb_collection(),
        k in 1usize..10,
        tau in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let table = table_for(&coll, k, seed);
        let est = LshSs::with_defaults(coll.len());
        let m = coll.total_pairs() as f64;
        let run = || {
            let mut rng = Xoshiro256::seeded(seed ^ 0xD00D);
            est.estimate(&coll, &table, &Jaccard, tau, &mut rng)
        };
        let (a, b) = (run(), run());
        prop_assert!(a.value.is_finite());
        prop_assert!((0.0..=m).contains(&a.value), "estimate {} outside [0, {m}]", a.value);
        prop_assert_eq!(a, b, "same seed must reproduce the estimate exactly");
    }

    #[test]
    fn prop_lshss_breakdown_consistent(
        coll in arb_collection(),
        k in 1usize..8,
        tau in 0.1f64..0.95,
        seed in 0u64..500,
    ) {
        let table = table_for(&coll, k, seed);
        let est = LshSs::with_defaults(coll.len());
        let mut rng = Xoshiro256::seeded(seed);
        let d = est.estimate_detailed(&coll, &table, &Jaccard, tau, &mut rng);
        // Components are individually bounded by their stratum sizes.
        prop_assert!(d.jh >= 0.0 && d.jh <= table.nh() as f64 + 1e-9);
        prop_assert!(d.jl >= 0.0 && d.jl <= table.nl() as f64 + 1e-9);
        // The combined estimate is the clamped sum.
        prop_assert!((d.estimate().value - (d.jh + d.jl).min(d.total_pairs as f64)).abs() < 1e-9);
        // Safe lower bound: when unreliable, jl never exceeds δ (it is a
        // raw count below the answer-size threshold).
        if !d.l_reliable {
            prop_assert!(d.l_positives < est.config.delta);
            prop_assert!(d.jl <= est.config.delta as f64);
        }
    }

    #[test]
    fn prop_dampening_ordering_holds_pointwise(
        coll in arb_collection(),
        k in 1usize..8,
        tau in 0.3f64..0.95,
        seed in 0u64..500,
        cs in 0.05f64..1.0,
    ) {
        // On identical sample paths: safe ≤ dampened(cs) for any cs, and
        // dampened is monotone in cs.
        let table = table_for(&coll, k, seed);
        let base = LshSsConfig {
            m_h: 16,
            m_l: 64,
            delta: 1_000, // force exhaustion
            dampening: Dampening::SafeLowerBound,
        };
        let run = |dampening| {
            let est = LshSs {
                config: LshSsConfig { dampening, ..base },
            };
            let mut rng = Xoshiro256::seeded(seed ^ 0xCAFE);
            est.estimate_detailed(&coll, &table, &Jaccard, tau, &mut rng).jl
        };
        let safe = run(Dampening::SafeLowerBound);
        let damp_lo = run(Dampening::Constant(cs * 0.5));
        let damp_hi = run(Dampening::Constant(cs));
        prop_assert!(safe <= damp_lo + 1e-9, "safe {safe} > dampened {damp_lo}");
        prop_assert!(damp_lo <= damp_hi + 1e-9, "dampening not monotone in cs");
    }

    #[test]
    fn prop_rs_estimates_in_range(
        coll in arb_collection(),
        tau in 0.0f64..1.0,
        seed in 0u64..1000,
        samples in 1u64..400,
    ) {
        let m = coll.total_pairs() as f64;
        let mut rng = Xoshiro256::seeded(seed);
        let pop = RsPop::new(samples).estimate(&coll, &Jaccard, tau, &mut rng);
        prop_assert!((0.0..=m).contains(&pop.value));
        let cross = RsCross::new(2 + (samples % 16) as usize)
            .estimate(&coll, &Jaccard, tau, &mut rng);
        prop_assert!((0.0..=m).contains(&cross.value));
    }

    #[test]
    fn prop_ju_closed_form_monotone_in_nh(
        m in 1_000f64..1e9,
        k in 1usize..40,
        tau in 0.05f64..0.99,
        nh_frac_a in 0.0f64..1.0,
        nh_frac_b in 0.0f64..1.0,
    ) {
        // More same-bucket pairs ⇒ more estimated true pairs (Eq. 4's
        // numerator is increasing in N_H, denominator constant).
        let (lo, hi) = if nh_frac_a <= nh_frac_b {
            (nh_frac_a, nh_frac_b)
        } else {
            (nh_frac_b, nh_frac_a)
        };
        let j_lo = ju_closed_form(lo * m, m, k, tau);
        let j_hi = ju_closed_form(hi * m, m, k, tau);
        prop_assert!(j_lo <= j_hi + 1e-6 * j_hi.abs().max(1.0));
    }

    #[test]
    fn prop_exhaustive_sample_h_is_exact(
        coll in arb_collection(),
        k in 1usize..6,
        seed in 0u64..200,
    ) {
        // With τ = 0 every sampled pair in S_H is true, so SampleH's
        // scaled estimate equals N_H exactly regardless of the sample.
        let table = table_for(&coll, k, seed);
        let est = LshSs {
            config: LshSsConfig {
                m_h: 32,
                m_l: 0,
                delta: 1,
                dampening: Dampening::SafeLowerBound,
            },
        };
        let mut rng = Xoshiro256::seeded(seed);
        let d = est.estimate_detailed(&coll, &table, &Jaccard, 0.0, &mut rng);
        if table.nh() > 0 {
            prop_assert!((d.jh - table.nh() as f64).abs() < 1e-9);
        } else {
            prop_assert_eq!(d.jh, 0.0);
        }
    }
}
