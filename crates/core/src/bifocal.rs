//! Bifocal sampling adapted to the VSJ problem.
//!
//! Ganguly, Gibbons, Matias & Silberschatz's bifocal sampling (SIGMOD
//! 1996; reference \[9\] of the paper) estimates equi-join sizes by
//! treating *dense* and *sparse* join values with separate procedures.
//! The paper cites it as the closest prior art whose guarantees do **not**
//! transfer: bifocal assumes a join size of `Ω(n log n)`, which at DBLP
//! scale corresponds to τ ≈ 0.4 — far below the interesting range (§3.1).
//!
//! This module is the natural adaptation, included as an extra baseline
//! (and to let the bench harness demonstrate the §3.1 claim): buckets of
//! an LSH table play the role of join values,
//!
//! * **dense focus** — buckets with `b_j ≥ threshold` members: their pair
//!   populations are sampled (or enumerated when small) bucket by bucket;
//! * **sparse focus** — all remaining pairs, estimated by plain random
//!   sampling over the complement.
//!
//! At high τ the sparse focus inherits RS's collapse — the same
//! fluctuation LSH-SS's SampleL guards against with its safe bound.

use crate::estimate::Estimate;
use vsj_lsh::LshTable;
use vsj_sampling::{pairs::sample_distinct_pair, AliasTable, Rng};
use vsj_vector::{pairs_of, Similarity, VectorCollection};

/// Bifocal estimator over an LSH table's bucket structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bifocal {
    /// Buckets with at least this many members form the dense focus.
    pub dense_threshold: usize,
    /// Samples spent inside the dense focus.
    pub dense_samples: u64,
    /// Samples spent on the sparse focus.
    pub sparse_samples: u64,
}

impl Bifocal {
    /// A budget-matched default: dense threshold `√n`, `n` samples per
    /// focus.
    pub fn with_defaults(n: usize) -> Self {
        Self {
            dense_threshold: ((n as f64).sqrt().ceil() as usize).max(2),
            dense_samples: n as u64,
            sparse_samples: n as u64,
        }
    }

    /// Estimates the self-join size at `τ`.
    pub fn estimate<S, R>(
        &self,
        collection: &VectorCollection,
        table: &LshTable,
        measure: &S,
        tau: f64,
        rng: &mut R,
    ) -> Estimate
    where
        S: Similarity,
        R: Rng + ?Sized,
    {
        assert_eq!(collection.len(), table.len(), "table/collection mismatch");
        let m_total = table.total_pairs();
        let n = collection.len() as u64;
        if n < 2 {
            return Estimate::scaled(0.0, m_total);
        }

        // Dense focus: per-bucket pair populations of the large buckets.
        let dense: Vec<&vsj_lsh::table::Bucket> = table
            .buckets()
            .filter(|b| b.count() >= self.dense_threshold)
            .collect();
        let dense_pairs: u64 = dense.iter().map(|b| b.pair_weight()).sum();
        let j_dense = if dense_pairs == 0 || self.dense_samples == 0 {
            0.0
        } else {
            let alias = AliasTable::new(
                &dense
                    .iter()
                    .map(|b| b.pair_weight() as f64)
                    .collect::<Vec<_>>(),
            )
            .expect("dense buckets have positive pair weights");
            let mut hits = 0u64;
            for _ in 0..self.dense_samples {
                let bucket = dense[alias.sample(rng)];
                let sz = bucket.members.len();
                let i = rng.below_usize(sz);
                let mut j = rng.below_usize(sz - 1);
                if j >= i {
                    j += 1;
                }
                if collection.sim(measure, bucket.members[i], bucket.members[j]) >= tau {
                    hits += 1;
                }
            }
            hits as f64 * (dense_pairs as f64 / self.dense_samples as f64)
        };

        // Sparse focus: uniform pairs, rejecting dense-bucket pairs.
        let sparse_pairs = m_total - dense_pairs;
        let j_sparse = if sparse_pairs == 0 || self.sparse_samples == 0 {
            0.0
        } else {
            let dense_floor = self.dense_threshold;
            let mut hits = 0u64;
            let mut taken = 0u64;
            while taken < self.sparse_samples {
                let (i, j) = sample_distinct_pair(rng, n);
                let (i, j) = (i as u32, j as u32);
                let in_dense =
                    table.same_bucket(i, j) && table.bucket_count(table.key_of(i)) >= dense_floor;
                if in_dense {
                    continue;
                }
                taken += 1;
                if collection.sim(measure, i, j) >= tau {
                    hits += 1;
                }
            }
            hits as f64 * (sparse_pairs as f64 / self.sparse_samples as f64)
        };

        Estimate::scaled(j_dense + j_sparse, m_total)
    }

    /// The number of pairs in the dense focus (diagnostic; `Ω(n log n)`
    /// is the regime bifocal's guarantees assume).
    pub fn dense_pair_count(&self, table: &LshTable) -> u64 {
        table
            .buckets()
            .filter(|b| b.count() >= self.dense_threshold)
            .map(|b| pairs_of(b.count() as u64))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vsj_lsh::{Composite, MinHashFamily};
    use vsj_sampling::Xoshiro256;
    use vsj_vector::{Jaccard, SparseVector};

    fn corpus() -> VectorCollection {
        let mut rng = Xoshiro256::seeded(21);
        let mut vectors = Vec::new();
        for _ in 0..300 {
            let start = rng.below(150) as u32;
            let len = 6 + rng.below(6) as u32;
            vectors.push(SparseVector::binary_from_members(
                (start..start + len).collect(),
            ));
        }
        // A big duplicate cluster -> one dense bucket.
        for _ in 0..25 {
            vectors.push(SparseVector::binary_from_members((900..910).collect()));
        }
        VectorCollection::from_vectors(vectors)
    }

    fn table(coll: &VectorCollection) -> LshTable {
        let hasher = Arc::new(Composite::derive(MinHashFamily::new(), 5, 0, 6));
        LshTable::build(coll, hasher, Some(1))
    }

    fn exact(coll: &VectorCollection, tau: f64) -> u64 {
        let n = coll.len() as u32;
        let mut c = 0;
        for a in 0..n {
            for b in (a + 1)..n {
                if Jaccard.sim(coll.vector(a), coll.vector(b)) >= tau {
                    c += 1;
                }
            }
        }
        c
    }

    #[test]
    fn dense_focus_detects_large_buckets() {
        let coll = corpus();
        let t = table(&coll);
        let bf = Bifocal {
            dense_threshold: 20,
            dense_samples: 1000,
            sparse_samples: 1000,
        };
        // The 25-duplicate cluster forms a dense bucket: C(25,2) = 300.
        assert!(bf.dense_pair_count(&t) >= 300);
    }

    #[test]
    fn accurate_at_moderate_tau() {
        let coll = corpus();
        let t = table(&coll);
        let tau = 0.4;
        let truth = exact(&coll, tau) as f64;
        assert!(truth > 50.0);
        let bf = Bifocal::with_defaults(coll.len());
        let mut rng = Xoshiro256::seeded(22);
        let mut sum = 0.0;
        let trials = 20;
        for _ in 0..trials {
            sum += bf.estimate(&coll, &t, &Jaccard, tau, &mut rng).value;
        }
        let mean = sum / trials as f64;
        assert!(
            (mean - truth).abs() / truth < 0.3,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn dense_cluster_estimated_reliably_at_high_tau() {
        // The duplicate cluster dominates J(0.95); bifocal's dense focus
        // must capture it even when the sparse focus sees nothing.
        let coll = corpus();
        let t = table(&coll);
        let tau = 0.95;
        let truth = exact(&coll, tau) as f64;
        assert!(truth >= 300.0);
        let bf = Bifocal::with_defaults(coll.len());
        let mut rng = Xoshiro256::seeded(23);
        let mut sum = 0.0;
        for _ in 0..20 {
            sum += bf.estimate(&coll, &t, &Jaccard, tau, &mut rng).value;
        }
        let mean = sum / 20.0;
        assert!(
            mean > truth * 0.5 && mean < truth * 2.0,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        let coll = VectorCollection::from_vectors(vec![SparseVector::binary_from_members(vec![1])]);
        let t = table(&coll);
        let bf = Bifocal::with_defaults(1);
        let mut rng = Xoshiro256::seeded(24);
        assert_eq!(bf.estimate(&coll, &t, &Jaccard, 0.5, &mut rng).value, 0.0);
    }
}
