//! Similarity-join size estimators — the contribution of *"Similarity
//! Join Size Estimation using Locality Sensitive Hashing"* (Lee, Ng,
//! Shim; PVLDB 4(6), 2011).
//!
//! Estimators, in the order the paper develops them:
//!
//! | Paper | Type | Idea |
//! |---|---|---|
//! | §3.1 | [`RsPop`] | uniform pair sampling, scaled by `M/m` |
//! | §3.1 | [`RsCross`] | sample `√m` records, compare all their pairs |
//! | §4.2 | [`UniformLsh`] | closed-form `ĴU` from `N_H` under a uniform similarity assumption (Eq. 4) |
//! | §4.3 | [`LshS`] | `ĴU`'s conditional probabilities re-weighted by a pair sample (Eqs. 5–6), both variants of §4.3 |
//! | §5 | [`LshSs`] | **LSH-SS**: stratified sampling over `S_H`/`S_L` with adaptive sampling and a safe lower bound (Algorithm 1) |
//! | §5.1.2 | [`LshSs`] with [`Dampening`] | LSH-SS(D): dampened scale-up `c_s` |
//! | App. B.2.1 | [`MedianEstimator`], [`VirtualBucketEstimator`] | multi-table extensions |
//! | App. B.2.2 | [`general_join`] | non-self joins `U ⋈ V` |
//! | App. B.1 | [`optimal_k`] | the Optimal-k search problem |
//! | §2 | [`bifocal`] | bifocal sampling \[9\] adapted to VSJ (related-work baseline) |
//!
//! Plus [`probabilities`] — exact/sampled measurement of `P(T)`,
//! `P(T|H)`, `P(H|T)`, `P(T|L)` (`α`, `β`), reproducing Tables 1 and 2.
//!
//! All estimators are deterministic given their RNG, take the threshold
//! `τ` per call (indexes and samples are reusable across thresholds where
//! the paper allows it), and return an [`Estimate`] carrying the value
//! plus how it was formed (scaled / lower-bounded / dampened / analytic).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bifocal;
pub mod estimate;
pub mod estimator;
pub mod general_join;
pub mod lshs;
pub mod lshss;
pub mod multi_table;
pub mod optimal_k;
pub mod probabilities;
#[cfg(test)]
mod proptests;
pub mod rs;
pub mod uniform;
pub mod view;

pub use estimate::{Estimate, EstimateKind};
pub use estimator::{EstimationContext, Estimator};
pub use lshs::{LshS, LshSVariant};
pub use lshss::{CurveEstimate, Dampening, LshSs, LshSsConfig, LshSsEstimate};
pub use multi_table::{MedianEstimator, VirtualBucketEstimator};
pub use rs::{RsCross, RsPop};
pub use uniform::{CollisionModel, UniformLsh};
pub use view::IndexView;
