//! Random-sampling baselines (§3.1 of the paper).
//!
//! * [`RsPop`] — `RS(pop)`: draw `m` unordered pairs uniformly (with
//!   replacement) from the population of `M = C(n,2)` pairs, count those
//!   with `sim ≥ τ`, scale by `M/m`.
//! * [`RsCross`] — `RS(cross)`: draw `⌈√m⌉` *records* and evaluate all
//!   pairs among them (cross sampling of Haas et al. \[10\]). Same budget in
//!   similarity evaluations, very different variance structure: pair
//!   samples are dependent, but each record contributes to many pairs.
//!
//! Both are unbiased at every `τ` and both collapse at high thresholds:
//! with selectivity `1e-7` and `m = n` samples, the hit count is almost
//! always 0 (estimate 0) and occasionally 1 (estimate `M/m ≫ J`) — the
//! fluctuation Figures 2–3 of the paper display.

use crate::estimate::Estimate;
use vsj_sampling::{pair_count, sample_distinct_pair, Rng};
use vsj_vector::{Similarity, VectorCollection};

/// Uniform pair sampling, `RS(pop)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RsPop {
    /// Number of pair samples `m`. The paper's experiments use
    /// `m = 1.5 n` to match LSH-SS's total budget.
    pub samples: u64,
}

impl RsPop {
    /// Creates the estimator.
    pub fn new(samples: u64) -> Self {
        assert!(samples > 0, "need at least one sample");
        Self { samples }
    }

    /// The paper's budget-matched default: `m = 1.5 n`.
    pub fn paper_default(n: usize) -> Self {
        Self::new(((n as f64) * 1.5).ceil() as u64)
    }

    /// Estimates the self-join size at `τ`.
    pub fn estimate<S, R>(
        &self,
        collection: &VectorCollection,
        measure: &S,
        tau: f64,
        rng: &mut R,
    ) -> Estimate
    where
        S: Similarity,
        R: Rng + ?Sized,
    {
        let n = collection.len() as u64;
        let m_total = pair_count(n);
        if n < 2 {
            return Estimate::scaled(0.0, m_total);
        }
        let mut hits = 0u64;
        for _ in 0..self.samples {
            let (i, j) = sample_distinct_pair(rng, n);
            if collection.sim(measure, i as u32, j as u32) >= tau {
                hits += 1;
            }
        }
        Estimate::scaled(
            hits as f64 * (m_total as f64 / self.samples as f64),
            m_total,
        )
    }
}

/// Cross sampling, `RS(cross)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RsCross {
    /// Number of records drawn; all `C(records, 2)` pairs among them are
    /// evaluated.
    pub records: usize,
}

impl RsCross {
    /// Creates the estimator from a record count.
    pub fn new(records: usize) -> Self {
        assert!(records >= 2, "cross sampling needs at least two records");
        Self { records }
    }

    /// Budget-matched construction: `⌈√m⌉` records for a target of `m`
    /// pair comparisons (the paper's `d·n` with `d = 1.5`).
    pub fn with_pair_budget(m: u64) -> Self {
        Self::new(((m as f64).sqrt().ceil() as usize).max(2))
    }

    /// Estimates the self-join size at `τ`.
    pub fn estimate<S, R>(
        &self,
        collection: &VectorCollection,
        measure: &S,
        tau: f64,
        rng: &mut R,
    ) -> Estimate
    where
        S: Similarity,
        R: Rng + ?Sized,
    {
        let n = collection.len();
        let m_total = pair_count(n as u64);
        if n < 2 {
            return Estimate::scaled(0.0, m_total);
        }
        let r = self.records.min(n);
        // Sample r distinct record ids (Floyd's algorithm keeps this O(r)
        // even when r ≈ n).
        let mut chosen: Vec<u32> = Vec::with_capacity(r);
        let mut seen = std::collections::HashSet::with_capacity(r);
        for j in (n - r)..n {
            let t = rng.below_usize(j + 1);
            let pick = if seen.contains(&t) { j } else { t };
            seen.insert(pick);
            chosen.push(pick as u32);
        }
        let mut hits = 0u64;
        for a in 0..chosen.len() {
            for b in (a + 1)..chosen.len() {
                if collection.sim(measure, chosen[a], chosen[b]) >= tau {
                    hits += 1;
                }
            }
        }
        let sampled_pairs = pair_count(r as u64);
        if sampled_pairs == 0 {
            return Estimate::scaled(0.0, m_total);
        }
        Estimate::scaled(
            hits as f64 * (m_total as f64 / sampled_pairs as f64),
            m_total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsj_sampling::Xoshiro256;
    use vsj_vector::{Cosine, SparseVector};

    fn corpus(n: u32) -> VectorCollection {
        VectorCollection::from_vectors(
            (0..n)
                .map(|i| {
                    let entries: Vec<(u32, f32)> = (0..5u32)
                        .map(|w| ((i.wrapping_mul(2654435761).wrapping_add(w * 97)) % 40, 1.0))
                        .collect();
                    SparseVector::from_entries(entries).unwrap()
                })
                .collect(),
        )
    }

    fn exact(coll: &VectorCollection, tau: f64) -> u64 {
        let n = coll.len() as u32;
        let mut c = 0;
        for a in 0..n {
            for b in (a + 1)..n {
                if coll.sim(&Cosine, a, b) >= tau {
                    c += 1;
                }
            }
        }
        c
    }

    #[test]
    fn rs_pop_unbiased_at_moderate_tau() {
        let coll = corpus(200);
        let truth = exact(&coll, 0.4) as f64;
        assert!(truth > 100.0, "fixture needs joining pairs, got {truth}");
        let est = RsPop::new(60_000);
        let mut rng = Xoshiro256::seeded(1);
        let mut sum = 0.0;
        let trials = 20;
        for _ in 0..trials {
            sum += est.estimate(&coll, &Cosine, 0.4, &mut rng).value;
        }
        let mean = sum / trials as f64;
        assert!(
            (mean - truth).abs() / truth < 0.1,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn rs_pop_fluctuates_at_high_tau() {
        // The §3.1 failure mode: tiny selectivity ⇒ estimates are either
        // 0 or enormous. Wide vocabulary keeps vectors nearly orthogonal;
        // a single planted duplicate pair carries the τ=0.999 join.
        let mut vectors: Vec<SparseVector> = (0..300u32)
            .map(|i| {
                let entries: Vec<(u32, f32)> = (0..5u32)
                    .map(|w| {
                        (
                            (i.wrapping_mul(2654435761).wrapping_add(w * 977)) % 40_000,
                            1.0,
                        )
                    })
                    .collect();
                SparseVector::from_entries(entries).unwrap()
            })
            .collect();
        vectors.push(vectors[0].clone());
        let coll = VectorCollection::from_vectors(vectors);
        let truth = exact(&coll, 0.999);
        assert!((1..=3).contains(&truth), "tail must be thin: {truth}");
        let est = RsPop::new(100);
        let mut rng = Xoshiro256::seeded(2);
        let mut zeros = 0;
        let mut huge = 0;
        for _ in 0..50 {
            let v = est.estimate(&coll, &Cosine, 0.999, &mut rng).value;
            if v == 0.0 {
                zeros += 1;
            } else if v > truth as f64 * 50.0 {
                huge += 1;
            }
        }
        assert!(zeros > 40, "expected mostly-zero estimates, got {zeros}");
        assert_eq!(zeros + huge, 50, "estimates must be all-or-nothing");
    }

    #[test]
    fn rs_cross_unbiased_at_moderate_tau() {
        let coll = corpus(200);
        let truth = exact(&coll, 0.4) as f64;
        let est = RsCross::new(80);
        let mut rng = Xoshiro256::seeded(3);
        let mut sum = 0.0;
        let trials = 60;
        for _ in 0..trials {
            sum += est.estimate(&coll, &Cosine, 0.4, &mut rng).value;
        }
        let mean = sum / trials as f64;
        assert!(
            (mean - truth).abs() / truth < 0.15,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn rs_cross_record_budget() {
        let c = RsCross::with_pair_budget(10_000);
        assert_eq!(c.records, 100);
        let c2 = RsCross::with_pair_budget(1);
        assert_eq!(c2.records, 2);
    }

    #[test]
    fn rs_cross_caps_records_at_n() {
        let coll = corpus(10);
        let est = RsCross::new(500); // more records than vectors
        let mut rng = Xoshiro256::seeded(4);
        // With r capped at n the sample is the whole population: estimate
        // must equal the exact count.
        let v = est.estimate(&coll, &Cosine, 0.3, &mut rng).value;
        assert_eq!(v, exact(&coll, 0.3) as f64);
    }

    #[test]
    fn degenerate_collections() {
        let empty = VectorCollection::new();
        let mut rng = Xoshiro256::seeded(5);
        assert_eq!(
            RsPop::new(10)
                .estimate(&empty, &Cosine, 0.5, &mut rng)
                .value,
            0.0
        );
        assert_eq!(
            RsCross::new(2)
                .estimate(&empty, &Cosine, 0.5, &mut rng)
                .value,
            0.0
        );
    }

    #[test]
    fn paper_default_budget() {
        assert_eq!(RsPop::paper_default(1000).samples, 1500);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        RsPop::new(0);
    }

    #[test]
    #[should_panic(expected = "at least two records")]
    fn one_record_rejected() {
        RsCross::new(1);
    }

    #[test]
    fn estimates_never_exceed_m() {
        let coll = corpus(20);
        let m = coll.total_pairs() as f64;
        let mut rng = Xoshiro256::seeded(6);
        for _ in 0..20 {
            let v = RsPop::new(3).estimate(&coll, &Cosine, 0.0, &mut rng).value;
            assert!(v <= m);
        }
    }
}
