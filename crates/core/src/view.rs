//! The index-view abstraction estimators sample through.
//!
//! The paper's estimators only ever interact with the LSH index through a
//! narrow read surface: the stratum constants (`N_H`, `N_L`, `M`), the
//! composite width `k`, the same-bucket predicate `H`, and the three
//! sampling primitives of Algorithm 1. [`IndexView`] names exactly that
//! surface, so the estimators are decoupled from *who owns* the index:
//!
//! * an owned, offline [`LshTable`] (the original one-shot path);
//! * an epoch snapshot published by the `vsj-service` engine, shared
//!   `Arc`-style across reader threads while writers keep ingesting;
//! * test doubles with scripted statistics.
//!
//! Every method takes `&self`: a view is a *read* interface, safe to
//! sample from concurrently ([`LshTable`]'s interior mutability is a
//! lazily rebuilt sampler cache behind a lock, nothing observable).

use vsj_lsh::LshTable;
use vsj_sampling::Rng;
use vsj_vector::VectorId;

/// Read surface of a bucket-counted LSH table (one hash table `D_g`).
///
/// Implementations must keep the strata consistent: `nh() + nl() ==
/// total_pairs()`, sampling methods draw uniformly within their stratum,
/// and `same_bucket` agrees with the stratum the sampling methods assign
/// pairs to.
///
/// # Example
///
/// The same estimator code runs against any view — here an owned
/// [`LshTable`], but a `vsj-service` epoch snapshot works identically:
///
/// ```
/// use std::sync::Arc;
/// use vsj_core::{IndexView, LshSs};
/// use vsj_lsh::{Composite, LshTable, MinHashFamily};
/// use vsj_sampling::Xoshiro256;
/// use vsj_vector::{Jaccard, SparseVector, VectorCollection};
///
/// let coll = VectorCollection::from_vectors(
///     (0..40u32)
///         .map(|i| SparseVector::binary_from_members(vec![i % 8, 100 + i % 5]))
///         .collect(),
/// );
/// let hasher = Arc::new(Composite::derive(MinHashFamily::new(), 7, 0, 8));
/// let table = LshTable::build(&coll, hasher, Some(1));
///
/// // The strata partition all C(n, 2) pairs...
/// assert_eq!(IndexView::nh(&table) + IndexView::nl(&table), IndexView::total_pairs(&table));
///
/// // ...and estimators only ever touch the index through the view.
/// let est = LshSs::with_defaults(IndexView::len(&table));
/// let answer = est.estimate(&coll, &table, &Jaccard, 0.8, &mut Xoshiro256::seeded(1));
/// assert!(answer.value >= 0.0);
/// ```
pub trait IndexView {
    /// Number of indexed vectors `n`.
    fn len(&self) -> usize;

    /// True when no vector is indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total pairs `M = C(n, 2)`.
    fn total_pairs(&self) -> u64;

    /// `N_H = Σ_j C(b_j, 2)` — pairs sharing a bucket.
    fn nh(&self) -> u64;

    /// `N_L = M − N_H` — pairs in different buckets.
    fn nl(&self) -> u64 {
        self.total_pairs() - self.nh()
    }

    /// Number of hash functions `k` composed into the bucket key.
    fn k(&self) -> usize;

    /// Whether two indexed vectors share a bucket — the event `H`.
    fn same_bucket(&self, a: VectorId, b: VectorId) -> bool;

    /// Uniform pair from stratum `S_H`; `None` when `N_H = 0`.
    fn sample_same_bucket_pair<R: Rng + ?Sized>(&self, rng: &mut R)
        -> Option<(VectorId, VectorId)>;

    /// Uniform pair from stratum `S_L`; `None` when `N_L = 0`.
    fn sample_cross_bucket_pair<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Option<(VectorId, VectorId)>;

    /// Uniform pair from the full population plus its stratum flag.
    fn sample_any_pair<R: Rng + ?Sized>(&self, rng: &mut R) -> (VectorId, VectorId, bool);
}

impl IndexView for LshTable {
    #[inline]
    fn len(&self) -> usize {
        LshTable::len(self)
    }

    #[inline]
    fn total_pairs(&self) -> u64 {
        LshTable::total_pairs(self)
    }

    #[inline]
    fn nh(&self) -> u64 {
        LshTable::nh(self)
    }

    #[inline]
    fn nl(&self) -> u64 {
        LshTable::nl(self)
    }

    #[inline]
    fn k(&self) -> usize {
        self.hasher().k()
    }

    #[inline]
    fn same_bucket(&self, a: VectorId, b: VectorId) -> bool {
        LshTable::same_bucket(self, a, b)
    }

    #[inline]
    fn sample_same_bucket_pair<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Option<(VectorId, VectorId)> {
        LshTable::sample_same_bucket_pair(self, rng)
    }

    #[inline]
    fn sample_cross_bucket_pair<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Option<(VectorId, VectorId)> {
        LshTable::sample_cross_bucket_pair(self, rng)
    }

    #[inline]
    fn sample_any_pair<R: Rng + ?Sized>(&self, rng: &mut R) -> (VectorId, VectorId, bool) {
        LshTable::sample_any_pair(self, rng)
    }
}

impl<V: IndexView + ?Sized> IndexView for &V {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn total_pairs(&self) -> u64 {
        (**self).total_pairs()
    }

    fn nh(&self) -> u64 {
        (**self).nh()
    }

    fn nl(&self) -> u64 {
        (**self).nl()
    }

    fn k(&self) -> usize {
        (**self).k()
    }

    fn same_bucket(&self, a: VectorId, b: VectorId) -> bool {
        (**self).same_bucket(a, b)
    }

    fn sample_same_bucket_pair<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Option<(VectorId, VectorId)> {
        (**self).sample_same_bucket_pair(rng)
    }

    fn sample_cross_bucket_pair<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Option<(VectorId, VectorId)> {
        (**self).sample_cross_bucket_pair(rng)
    }

    fn sample_any_pair<R: Rng + ?Sized>(&self, rng: &mut R) -> (VectorId, VectorId, bool) {
        (**self).sample_any_pair(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vsj_lsh::{Composite, MinHashFamily};
    use vsj_sampling::Xoshiro256;
    use vsj_vector::{SparseVector, VectorCollection};

    fn table() -> LshTable {
        let coll = VectorCollection::from_vectors(
            (0..20u32)
                .map(|i| SparseVector::binary_from_members(vec![i % 4, 50 + i % 4]))
                .collect(),
        );
        let hasher = Arc::new(Composite::derive(MinHashFamily::new(), 5, 0, 8));
        LshTable::build(&coll, hasher, Some(1))
    }

    #[test]
    fn lsh_table_view_delegates() {
        let t = table();
        assert_eq!(IndexView::len(&t), LshTable::len(&t));
        assert_eq!(IndexView::nh(&t), LshTable::nh(&t));
        assert_eq!(IndexView::nl(&t), LshTable::nl(&t));
        assert_eq!(IndexView::total_pairs(&t), LshTable::total_pairs(&t));
        assert_eq!(IndexView::k(&t), t.hasher().k());
        assert!(!IndexView::is_empty(&t));
        let mut r1 = Xoshiro256::seeded(1);
        let mut r2 = Xoshiro256::seeded(1);
        assert_eq!(
            IndexView::sample_same_bucket_pair(&t, &mut r1),
            LshTable::sample_same_bucket_pair(&t, &mut r2)
        );
        assert_eq!(
            IndexView::sample_cross_bucket_pair(&t, &mut r1),
            LshTable::sample_cross_bucket_pair(&t, &mut r2)
        );
        assert_eq!(
            IndexView::sample_any_pair(&t, &mut r1),
            LshTable::sample_any_pair(&t, &mut r2)
        );
    }

    #[test]
    fn reference_view_is_transparent() {
        let t = table();
        let by_ref: &LshTable = &t;
        assert_eq!(IndexView::nh(&by_ref), IndexView::nh(&t));
        assert_eq!(IndexView::k(&by_ref), IndexView::k(&t));
        let (a, b) = (0u32, 1u32);
        assert_eq!(
            IndexView::same_bucket(&by_ref, a, b),
            IndexView::same_bucket(&t, a, b)
        );
    }
}
