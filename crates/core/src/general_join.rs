//! Non-self joins `U ⋈ V` (Appendix B.2.2 of the paper).
//!
//! Two collections, two LSH tables `D_g` (on `U`) and `E_g` (on `V`)
//! built with the *same* composite `g`. The population is `U × V`
//! (`N = n₁·n₂` ordered cross pairs), and the strata become:
//!
//! * `S_H = {(u,v) : g(u) = g(v)}` with
//!   `N_H = Σ_{keys} b_j·c_j` over key-matched buckets;
//! * `S_L` — the rest, sampled by rejection.
//!
//! `SampleH` draws a matched key pair with weight `b_j·c_j` (alias
//! table), then one member uniformly from each side. Everything else —
//! adaptive SampleL, safe lower bound, dampening — carries over from
//! Algorithm 1 unchanged.

use std::sync::Arc;

use crate::estimate::{clamp_estimate, Estimate, EstimateKind};
use crate::lshss::{Dampening, LshSsConfig};
use vsj_lsh::{BucketHasher, LshTable};
use vsj_sampling::{AdaptiveSampler, AliasTable, Rng};
use vsj_vector::{Similarity, VectorCollection, VectorId};

/// The paired-table structure for a general join.
pub struct GeneralJoinIndex {
    table_u: LshTable,
    table_v: LshTable,
    /// Matched-key bucket pairs: (key, b_j, c_j).
    matched: Vec<(u64, u32, u32)>,
    /// `N_H = Σ b_j·c_j`.
    nh: u64,
    /// Alias over `matched` with weight `b_j·c_j`.
    alias: Option<AliasTable>,
}

impl GeneralJoinIndex {
    /// Builds both tables with one shared hasher and matches their
    /// buckets by key.
    pub fn build(
        u: &VectorCollection,
        v: &VectorCollection,
        hasher: Arc<dyn BucketHasher>,
        threads: Option<usize>,
    ) -> Self {
        let table_u = LshTable::build(u, Arc::clone(&hasher), threads);
        let table_v = LshTable::build(v, hasher, threads);
        let mut matched = Vec::new();
        let mut nh = 0u64;
        for bucket in table_u.buckets() {
            let c = table_v.bucket_count(bucket.key);
            if c > 0 {
                let b = bucket.count();
                matched.push((bucket.key, b as u32, c as u32));
                nh += b as u64 * c as u64;
            }
        }
        let alias = if matched.is_empty() {
            None
        } else {
            Some(
                AliasTable::new(
                    &matched
                        .iter()
                        .map(|&(_, b, c)| u64::from(b) as f64 * u64::from(c) as f64)
                        .collect::<Vec<_>>(),
                )
                .expect("positive b·c weights"),
            )
        };
        Self {
            table_u,
            table_v,
            matched,
            nh,
            alias,
        }
    }

    /// `N_H` — cross pairs sharing a `g` value.
    pub fn nh(&self) -> u64 {
        self.nh
    }

    /// Total cross pairs `N = n₁·n₂`.
    pub fn total_pairs(&self) -> u64 {
        self.table_u.len() as u64 * self.table_v.len() as u64
    }

    /// `N_L = N − N_H`.
    pub fn nl(&self) -> u64 {
        self.total_pairs() - self.nh
    }

    /// The `U`-side table.
    pub fn table_u(&self) -> &LshTable {
        &self.table_u
    }

    /// The `V`-side table.
    pub fn table_v(&self) -> &LshTable {
        &self.table_v
    }

    /// Whether a cross pair shares a `g` value.
    #[inline]
    pub fn same_bucket(&self, u: VectorId, v: VectorId) -> bool {
        self.table_u.key_of(u) == self.table_v.key_of(v)
    }

    /// Uniform cross pair from `S_H` (`None` when `N_H = 0`).
    pub fn sample_same_bucket_pair<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Option<(VectorId, VectorId)> {
        let alias = self.alias.as_ref()?;
        let (key, _, _) = self.matched[alias.sample(rng)];
        let bu = self
            .table_u
            .bucket_by_key(key)
            .expect("matched bucket in U");
        let bv = self
            .table_v
            .bucket_by_key(key)
            .expect("matched bucket in V");
        Some((*rng.choose(&bu.members), *rng.choose(&bv.members)))
    }

    /// Uniform cross pair from `S_L` by rejection (`None` when
    /// `N_L = 0`).
    pub fn sample_cross_bucket_pair<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Option<(VectorId, VectorId)> {
        if self.nl() == 0 {
            return None;
        }
        let (n1, n2) = (self.table_u.len() as u64, self.table_v.len() as u64);
        loop {
            let u = rng.below(n1) as VectorId;
            let v = rng.below(n2) as VectorId;
            if !self.same_bucket(u, v) {
                return Some((u, v));
            }
        }
    }
}

/// LSH-SS for general joins (Algorithm 1 with the B.2.2 modifications).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneralLshSs {
    /// Sampling parameters (`m_H`, `m_L`, `δ`, dampening).
    pub config: LshSsConfig,
}

impl GeneralLshSs {
    /// Paper-style defaults: Appendix B.2.2 gives no explicit budgets, so
    /// mirror the self-join rule (`m = n`, `δ = log₂ n`) with `n` the
    /// *larger* relation — the population is `n₁·n₂` pairs and the
    /// smaller relation alone under-samples it.
    pub fn with_defaults(n1: usize, n2: usize) -> Self {
        Self {
            config: LshSsConfig::paper_defaults(n1.max(n2).max(2)),
        }
    }

    /// Estimates `|{(u,v) ∈ U×V : sim(u,v) ≥ τ}|`.
    pub fn estimate<S, R>(
        &self,
        u: &VectorCollection,
        v: &VectorCollection,
        index: &GeneralJoinIndex,
        measure: &S,
        tau: f64,
        rng: &mut R,
    ) -> Estimate
    where
        S: Similarity,
        R: Rng + ?Sized,
    {
        assert_eq!(u.len(), index.table_u.len(), "U/table mismatch");
        assert_eq!(v.len(), index.table_v.len(), "V/table mismatch");
        let total = index.total_pairs();

        // SampleH.
        let jh = if index.nh() == 0 || self.config.m_h == 0 {
            0.0
        } else {
            let mut positives = 0u64;
            for _ in 0..self.config.m_h {
                let (a, b) = index
                    .sample_same_bucket_pair(rng)
                    .expect("nh > 0 yields pairs");
                if measure.sim(u.vector(a), v.vector(b)) >= tau {
                    positives += 1;
                }
            }
            positives as f64 * (index.nh() as f64 / self.config.m_h as f64)
        };

        // SampleL (adaptive).
        let mut lower_bound_used = false;
        let jl = if index.nl() == 0 || self.config.m_l == 0 {
            0.0
        } else {
            let sampler = AdaptiveSampler::new(self.config.delta, self.config.m_l);
            let outcome = sampler.run(index.nl(), || {
                let (a, b) = index
                    .sample_cross_bucket_pair(rng)
                    .expect("nl > 0 yields pairs");
                measure.sim(u.vector(a), v.vector(b)) >= tau
            });
            lower_bound_used = !outcome.is_reliable();
            match self.config.dampening {
                Dampening::SafeLowerBound => outcome.safe_estimate(),
                Dampening::Constant(cs) => {
                    outcome.dampened_estimate(index.nl(), cs.clamp(0.0, 1.0))
                }
                Dampening::NlOverDelta => {
                    let cs = if self.config.delta == 0 {
                        1.0
                    } else {
                        outcome.positives() as f64 / self.config.delta as f64
                    };
                    outcome.dampened_estimate(index.nl(), cs.clamp(0.0, 1.0))
                }
            }
        };

        Estimate {
            value: clamp_estimate(jh + jl, total),
            kind: if lower_bound_used {
                match self.config.dampening {
                    Dampening::SafeLowerBound => EstimateKind::SafeLowerBound,
                    _ => EstimateKind::Dampened,
                }
            } else {
                EstimateKind::Scaled
            },
        }
    }
}

/// `RS(pop)` for general joins — the natural baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneralRsPop {
    /// Number of cross-pair samples.
    pub samples: u64,
}

impl GeneralRsPop {
    /// Estimates the general join size by uniform cross-pair sampling.
    pub fn estimate<S, R>(
        &self,
        u: &VectorCollection,
        v: &VectorCollection,
        measure: &S,
        tau: f64,
        rng: &mut R,
    ) -> Estimate
    where
        S: Similarity,
        R: Rng + ?Sized,
    {
        let total = u.len() as u64 * v.len() as u64;
        if total == 0 || self.samples == 0 {
            return Estimate::scaled(0.0, total);
        }
        let mut hits = 0u64;
        for _ in 0..self.samples {
            let a = rng.below(u.len() as u64) as VectorId;
            let b = rng.below(v.len() as u64) as VectorId;
            if measure.sim(u.vector(a), v.vector(b)) >= tau {
                hits += 1;
            }
        }
        Estimate::scaled(hits as f64 * (total as f64 / self.samples as f64), total)
    }
}

/// Exact general join size (nested loop) — testing/ground-truth helper.
pub fn exact_general_join<S: Similarity>(
    u: &VectorCollection,
    v: &VectorCollection,
    measure: &S,
    tau: f64,
) -> u64 {
    let mut count = 0u64;
    for (_, a) in u.iter() {
        for (_, b) in v.iter() {
            if measure.sim(a, b) >= tau {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsj_lsh::{Composite, MinHashFamily};
    use vsj_sampling::Xoshiro256;
    use vsj_vector::{Jaccard, SparseVector};

    fn collection(seed: u64, n: u32, shared_pool: u32) -> VectorCollection {
        let mut rng = Xoshiro256::seeded(seed);
        VectorCollection::from_vectors(
            (0..n)
                .map(|_| {
                    let start = rng.below(u64::from(shared_pool)) as u32;
                    let len = 5 + rng.below(6) as u32;
                    SparseVector::binary_from_members((start..start + len).collect())
                })
                .collect(),
        )
    }

    fn build_index(u: &VectorCollection, v: &VectorCollection, k: usize) -> GeneralJoinIndex {
        let hasher = Arc::new(Composite::derive(MinHashFamily::new(), 17, 0, k));
        GeneralJoinIndex::build(u, v, hasher, Some(1))
    }

    #[test]
    fn nh_matches_enumeration() {
        let u = collection(1, 120, 80);
        let v = collection(2, 90, 80);
        let idx = build_index(&u, &v, 4);
        let mut nh = 0u64;
        for a in 0..u.len() as u32 {
            for b in 0..v.len() as u32 {
                if idx.same_bucket(a, b) {
                    nh += 1;
                }
            }
        }
        assert_eq!(idx.nh(), nh);
        assert_eq!(idx.total_pairs(), 120 * 90);
        assert_eq!(idx.nl(), idx.total_pairs() - nh);
    }

    #[test]
    fn same_bucket_pairs_are_uniform() {
        let u = collection(3, 40, 30);
        let v = collection(4, 35, 30);
        let idx = build_index(&u, &v, 3);
        if idx.nh() < 4 {
            return; // fixture too sparse for a distribution check
        }
        let mut counts = std::collections::HashMap::new();
        let mut rng = Xoshiro256::seeded(5);
        let trials = 30_000 * idx.nh().min(50);
        for _ in 0..trials {
            let (a, b) = idx.sample_same_bucket_pair(&mut rng).unwrap();
            assert!(idx.same_bucket(a, b));
            *counts.entry((a, b)).or_insert(0u64) += 1;
        }
        assert_eq!(counts.len() as u64, idx.nh());
        let expected = trials as f64 / idx.nh() as f64;
        for (&pair, &c) in &counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.2, "pair {pair:?} deviates {dev}");
        }
    }

    #[test]
    fn cross_bucket_pairs_valid() {
        let u = collection(6, 50, 40);
        let v = collection(7, 45, 40);
        let idx = build_index(&u, &v, 4);
        let mut rng = Xoshiro256::seeded(8);
        for _ in 0..2000 {
            let (a, b) = idx.sample_cross_bucket_pair(&mut rng).unwrap();
            assert!(!idx.same_bucket(a, b));
        }
    }

    #[test]
    fn general_lshss_accurate() {
        // Shared pool gives substantial cross-join mass at moderate τ.
        let u = collection(9, 300, 100);
        let v = collection(10, 250, 100);
        let idx = build_index(&u, &v, 4);
        let tau = 0.5;
        let truth = exact_general_join(&u, &v, &Jaccard, tau) as f64;
        assert!(truth > 20.0, "fixture needs join mass: {truth}");
        let est = GeneralLshSs::with_defaults(u.len(), v.len());
        let mut rng = Xoshiro256::seeded(11);
        let mut sum = 0.0;
        let trials = 20;
        for _ in 0..trials {
            sum += est.estimate(&u, &v, &idx, &Jaccard, tau, &mut rng).value;
        }
        let mean = sum / trials as f64;
        assert!(
            mean > truth * 0.4 && mean < truth * 2.5,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn general_rs_unbiased_at_moderate_tau() {
        let u = collection(12, 200, 90);
        let v = collection(13, 180, 90);
        let tau = 0.4;
        let truth = exact_general_join(&u, &v, &Jaccard, tau) as f64;
        assert!(truth > 10.0);
        let est = GeneralRsPop { samples: 50_000 };
        let mut rng = Xoshiro256::seeded(14);
        let mut sum = 0.0;
        for _ in 0..10 {
            sum += est.estimate(&u, &v, &Jaccard, tau, &mut rng).value;
        }
        let mean = sum / 10.0;
        assert!(
            (mean - truth).abs() / truth < 0.25,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn disjoint_collections_have_empty_sh() {
        let u = VectorCollection::from_vectors(
            (0..10)
                .map(|i| SparseVector::binary_from_members(vec![i]))
                .collect(),
        );
        let v = VectorCollection::from_vectors(
            (0..10)
                .map(|i| SparseVector::binary_from_members(vec![5000 + i]))
                .collect(),
        );
        let idx = build_index(&u, &v, 8);
        assert_eq!(idx.nh(), 0);
        let mut rng = Xoshiro256::seeded(15);
        assert!(idx.sample_same_bucket_pair(&mut rng).is_none());
        let est = GeneralLshSs::with_defaults(10, 10);
        let e = est.estimate(&u, &v, &idx, &Jaccard, 0.5, &mut rng);
        assert_eq!(e.value, 0.0);
    }

    #[test]
    fn empty_collection_handled() {
        let u = VectorCollection::new();
        let v = collection(16, 10, 20);
        let idx = build_index(&u, &v, 4);
        assert_eq!(idx.total_pairs(), 0);
        let mut rng = Xoshiro256::seeded(17);
        let est = GeneralRsPop { samples: 10 };
        assert_eq!(est.estimate(&u, &v, &Jaccard, 0.5, &mut rng).value, 0.0);
    }
}
