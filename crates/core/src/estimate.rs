//! The estimate type shared by all estimators.

/// How an estimate was formed — consumers (query optimizers, the
/// experiment harness) treat a safe lower bound differently from a fully
/// scaled estimate, exactly as §5.1.2 of the paper prescribes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateKind {
    /// Every component was scaled by its sampling fraction with the
    /// estimator's full guarantees in force.
    Scaled,
    /// At least one component is an *unscaled* positive count: the value
    /// is a safe lower bound on that component (Algorithm 1, line 10).
    SafeLowerBound,
    /// At least one component used a dampened scale-up factor `c_s`
    /// (LSH-SS(D), Theorem 2).
    Dampened,
    /// Closed-form, no sampling (the JU estimator of Eq. 4).
    Analytic,
}

/// A join-size estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimated number of joining pairs `Ĵ` (always finite, ≥ 0).
    pub value: f64,
    /// How the value was formed.
    pub kind: EstimateKind,
}

impl Estimate {
    /// A scaled estimate, clamped to the valid range `[0, M]`.
    pub fn scaled(value: f64, total_pairs: u64) -> Self {
        Self {
            value: clamp_estimate(value, total_pairs),
            kind: EstimateKind::Scaled,
        }
    }

    /// An estimate containing a safe-lower-bound component.
    pub fn lower_bounded(value: f64, total_pairs: u64) -> Self {
        Self {
            value: clamp_estimate(value, total_pairs),
            kind: EstimateKind::SafeLowerBound,
        }
    }

    /// An estimate containing a dampened component.
    pub fn dampened(value: f64, total_pairs: u64) -> Self {
        Self {
            value: clamp_estimate(value, total_pairs),
            kind: EstimateKind::Dampened,
        }
    }

    /// A closed-form estimate.
    pub fn analytic(value: f64, total_pairs: u64) -> Self {
        Self {
            value: clamp_estimate(value, total_pairs),
            kind: EstimateKind::Analytic,
        }
    }
}

/// Clamps a raw estimator output into the feasible join-size range:
/// negative values (possible for the analytic estimators when `N_H` is
/// below its expectation) truncate to 0, values above `M` to `M`, and
/// non-finite intermediate results (empty-sample degeneracies) to 0.
pub fn clamp_estimate(value: f64, total_pairs: u64) -> f64 {
    if !value.is_finite() {
        return 0.0;
    }
    value.clamp(0.0, total_pairs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamping_rules() {
        assert_eq!(clamp_estimate(-5.0, 100), 0.0);
        assert_eq!(clamp_estimate(150.0, 100), 100.0);
        assert_eq!(clamp_estimate(42.0, 100), 42.0);
        assert_eq!(clamp_estimate(f64::NAN, 100), 0.0);
        assert_eq!(clamp_estimate(f64::INFINITY, 100), 0.0);
    }

    #[test]
    fn constructors_set_kind() {
        assert_eq!(Estimate::scaled(1.0, 10).kind, EstimateKind::Scaled);
        assert_eq!(
            Estimate::lower_bounded(1.0, 10).kind,
            EstimateKind::SafeLowerBound
        );
        assert_eq!(Estimate::dampened(1.0, 10).kind, EstimateKind::Dampened);
        assert_eq!(Estimate::analytic(1.0, 10).kind, EstimateKind::Analytic);
    }

    #[test]
    fn constructors_clamp() {
        assert_eq!(Estimate::analytic(-3.0, 10).value, 0.0);
        assert_eq!(Estimate::scaled(1e12, 10).value, 10.0);
    }
}
