//! LSH-S: sample-weighted conditional probabilities (§4.3 of the paper).
//!
//! JU's weakness is the uniformity assumption — real similarity
//! distributions are heavily skewed toward 0. LSH-S replaces the
//! uniform-measure integrals with a *sample* of pairs. The paper sketches
//! two variants and evaluates the second:
//!
//! * [`LshSVariant::Direct`] — estimate `P(H|T)` and `P(H|F)` by directly
//!   counting, among sampled true (resp. false) pairs, how many share a
//!   bucket ("the first method" of §4.3).
//! * [`LshSVariant::Weighted`] — weight the *analytic* collision curve
//!   by the sampled similarity values (Eqs. 5–6):
//!   `P̂(H|T) = Σ_{(u,v)∈S_T} f(sim(u,v)) / |S_T|`, `f(s) = p(s)^k`.
//!
//! Both plug into Eq. 1. Both inherit random sampling's high-threshold
//! problem — `S_T` is empty almost surely when the selectivity is tiny —
//! which is exactly the failure mode Figure 4 shows and LSH-SS repairs.

use crate::estimate::Estimate;
use crate::uniform::CollisionModel;
use crate::view::IndexView;
use vsj_sampling::{sample_distinct_pair, Rng};
use vsj_vector::{Similarity, VectorStore};

/// Which §4.3 variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LshSVariant {
    /// Count same-bucket fractions among sampled true/false pairs.
    Direct,
    /// Weight `f(s) = p(s)^k` by sampled similarities (Eqs. 5–6) — the
    /// variant the paper reports as LSH-S.
    Weighted,
}

/// The LSH-S estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LshS {
    /// Pair sample size.
    pub samples: u64,
    /// Variant (the paper's default is `Weighted`).
    pub variant: LshSVariant,
    /// Collision model for the weighted variant's `f(s)`.
    pub model: CollisionModel,
}

impl LshS {
    /// The paper's configuration: weighted variant, idealized `f(s)=s^k`,
    /// `m = n` samples.
    pub fn paper_default(n: usize) -> Self {
        Self {
            samples: n as u64,
            variant: LshSVariant::Weighted,
            model: CollisionModel::Idealized,
        }
    }

    /// Estimates the join size at `τ` using the bucket-counted `table`.
    pub fn estimate<C, V, S, R>(
        &self,
        collection: &C,
        measure: &S,
        table: &V,
        tau: f64,
        rng: &mut R,
    ) -> Estimate
    where
        C: VectorStore + ?Sized,
        V: IndexView + ?Sized,
        S: Similarity,
        R: Rng + ?Sized,
    {
        assert_eq!(
            collection.len(),
            table.len(),
            "table must index exactly this collection"
        );
        let n = collection.len() as u64;
        let m_total = table.total_pairs();
        if n < 2 {
            return Estimate::scaled(0.0, m_total);
        }
        let k = table.k();
        let f = |s: f64| self.model.p(s).powi(k as i32);

        // One pass of uniform pair samples, split into S_T and S_F.
        let mut t_count = 0u64; // |S_T|
        let mut f_count = 0u64; // |S_F|
        let mut t_stat = 0.0f64; // Σ f(sim) or same-bucket count over S_T
        let mut f_stat = 0.0f64; // likewise over S_F
        for _ in 0..self.samples {
            let (i, j) = sample_distinct_pair(rng, n);
            let (i, j) = (i as u32, j as u32);
            let s = collection.sim(measure, i, j);
            let contribution = match self.variant {
                LshSVariant::Weighted => f(s),
                LshSVariant::Direct => f64::from(u8::from(table.same_bucket(i, j))),
            };
            if s >= tau {
                t_count += 1;
                t_stat += contribution;
            } else {
                f_count += 1;
                f_stat += contribution;
            }
        }

        // P̂(H|T), P̂(H|F); when a stratum was never sampled fall back to
        // the analytic uniform-measure value — the documented degradation
        // path at extreme thresholds.
        let p_h_given_t = if t_count > 0 {
            t_stat / t_count as f64
        } else {
            analytic_conditional(&f, tau, 1.0)
        };
        let p_h_given_f = if f_count > 0 {
            f_stat / f_count as f64
        } else {
            analytic_conditional(&f, 0.0, tau)
        };

        let denom = p_h_given_t - p_h_given_f;
        if denom <= 0.0 {
            // The sample carried no bucket signal (e.g. every sampled
            // pair equally (un)likely to collide): no usable estimate.
            return Estimate::scaled(0.0, m_total);
        }
        let nh = table.nh() as f64;
        let value = (nh - m_total as f64 * p_h_given_f) / denom;
        Estimate::scaled(value, m_total)
    }
}

/// Mean of `f` over `[lo, hi]` (midpoint rule, 512 cells) — the uniform
/// fallback when a stratum has no samples.
fn analytic_conditional(f: &impl Fn(f64) -> f64, lo: f64, hi: f64) -> f64 {
    if hi <= lo {
        return f(lo.clamp(0.0, 1.0));
    }
    let cells = 512;
    let h = (hi - lo) / cells as f64;
    let sum: f64 = (0..cells).map(|i| f(lo + h * (i as f64 + 0.5))).sum();
    sum / cells as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vsj_lsh::{Composite, LshTable, MinHashFamily};
    use vsj_sampling::Xoshiro256;
    use vsj_vector::{Jaccard, SparseVector, VectorCollection};

    /// Collection with graded Jaccard overlap (sliding windows) plus
    /// duplicate clusters.
    fn corpus() -> VectorCollection {
        let mut rng = Xoshiro256::seeded(7);
        let mut vectors = Vec::new();
        for _ in 0..500 {
            let start = rng.below(300) as u32;
            let len = 8 + rng.below(8) as u32;
            vectors.push(SparseVector::binary_from_members(
                (start..start + len).collect(),
            ));
        }
        // Duplicate cluster for a τ≈1 tail.
        for _ in 0..6 {
            vectors.push(SparseVector::binary_from_members((1000..1012).collect()));
        }
        VectorCollection::from_vectors(vectors)
    }

    fn exact(coll: &VectorCollection, tau: f64) -> u64 {
        let n = coll.len() as u32;
        let mut c = 0;
        for a in 0..n {
            for b in (a + 1)..n {
                if Jaccard.sim(coll.vector(a), coll.vector(b)) >= tau {
                    c += 1;
                }
            }
        }
        c
    }

    fn minhash_table(coll: &VectorCollection, k: usize) -> LshTable {
        let hasher = Arc::new(Composite::derive(MinHashFamily::new(), 3, 0, k));
        LshTable::build(coll, hasher, Some(1))
    }

    #[test]
    fn weighted_variant_reasonable_at_low_tau() {
        // MinHash + Jaccard is the setting where f(s) = s^k is exact, so
        // LSH-S should be in the right regime at thresholds where true
        // pairs are sampled.
        let coll = corpus();
        let table = minhash_table(&coll, 6);
        let tau = 0.25;
        let truth = exact(&coll, tau) as f64;
        assert!(
            truth > 50.0,
            "fixture needs joining mass at τ={tau}: {truth}"
        );
        let est = LshS {
            samples: 40_000,
            variant: LshSVariant::Weighted,
            model: CollisionModel::Idealized,
        };
        let mut rng = Xoshiro256::seeded(1);
        let mut vals = Vec::new();
        for _ in 0..10 {
            vals.push(est.estimate(&coll, &Jaccard, &table, tau, &mut rng).value);
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(
            mean > truth * 0.3 && mean < truth * 3.0,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn direct_variant_also_works_at_low_tau() {
        let coll = corpus();
        let table = minhash_table(&coll, 6);
        let tau = 0.25;
        let truth = exact(&coll, tau) as f64;
        let est = LshS {
            samples: 40_000,
            variant: LshSVariant::Direct,
            model: CollisionModel::Idealized,
        };
        let mut rng = Xoshiro256::seeded(2);
        let mut vals = Vec::new();
        for _ in 0..10 {
            vals.push(est.estimate(&coll, &Jaccard, &table, tau, &mut rng).value);
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(
            mean > truth * 0.2 && mean < truth * 5.0,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn high_tau_estimates_are_unreliable_by_design() {
        // §6.2: "LSH-S has large errors at high thresholds … because the
        // estimations of conditional probabilities are not reliable due
        // to insufficient number of true pairs sampled." With no true
        // pair in the sample the weighted variant falls back to the
        // uniform-measure conditional — i.e. JU behaviour, typically far
        // from truth on skewed data. The contract here is graceful
        // degradation: finite, clamped, no panic.
        let coll = corpus();
        let table = minhash_table(&coll, 12);
        let est = LshS {
            samples: 200, // too few to hit the thin τ=0.95 tail
            variant: LshSVariant::Weighted,
            model: CollisionModel::Idealized,
        };
        let mut rng = Xoshiro256::seeded(3);
        let e = est.estimate(&coll, &Jaccard, &table, 0.95, &mut rng);
        assert!(e.value.is_finite() && e.value >= 0.0);
        assert!(e.value <= coll.total_pairs() as f64);
    }

    #[test]
    fn paper_default_shape() {
        let est = LshS::paper_default(34_000);
        assert_eq!(est.samples, 34_000);
        assert_eq!(est.variant, LshSVariant::Weighted);
    }

    #[test]
    fn degenerate_collection() {
        let coll = VectorCollection::from_vectors(vec![SparseVector::binary_from_members(vec![1])]);
        let table = minhash_table(&coll, 4);
        let est = LshS::paper_default(1);
        let mut rng = Xoshiro256::seeded(4);
        assert_eq!(
            est.estimate(&coll, &Jaccard, &table, 0.5, &mut rng).value,
            0.0
        );
    }

    #[test]
    fn analytic_conditional_is_mean_of_f() {
        let f = |s: f64| s * s;
        // Mean of s² on [0,1] is 1/3.
        assert!((analytic_conditional(&f, 0.0, 1.0) - 1.0 / 3.0).abs() < 1e-5);
        // Degenerate interval returns the point value.
        assert!((analytic_conditional(&f, 0.5, 0.5) - 0.25).abs() < 1e-12);
    }
}
