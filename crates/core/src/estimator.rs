//! The uniform estimator interface the experiment harness drives.
//!
//! Each paper algorithm has a natural inherent API (different estimators
//! need different resources — a table, an index, only the collection).
//! The harness, however, runs *rows of estimators* through identical
//! trial loops, so this module provides the object-safe common
//! denominator: an [`EstimationContext`] bundling everything any of them
//! might need, and the [`Estimator`] trait dispatching on it.

use crate::bifocal::Bifocal;
use crate::estimate::Estimate;
use crate::lshs::LshS;
use crate::lshss::LshSs;
use crate::multi_table::{MedianEstimator, VirtualBucketEstimator};
use crate::rs::{RsCross, RsPop};
use crate::uniform::UniformLsh;
use vsj_lsh::LshIndex;
use vsj_sampling::Xoshiro256;
use vsj_vector::{Cosine, Similarity, VectorCollection};

/// Everything an estimator might need for one experiment configuration.
/// The similarity measure is fixed to the paper's cosine; estimators'
/// inherent methods stay generic for other measures.
pub struct EstimationContext<'a> {
    /// The vector database `V`.
    pub collection: &'a VectorCollection,
    /// A pre-built LSH index (estimators that need one panic with a clear
    /// message when absent, mirroring a missing-index plan error).
    pub index: Option<&'a LshIndex>,
}

impl<'a> EstimationContext<'a> {
    /// Context with an index.
    pub fn with_index(collection: &'a VectorCollection, index: &'a LshIndex) -> Self {
        Self {
            collection,
            index: Some(index),
        }
    }

    /// Context without an index (pure-sampling baselines).
    pub fn sampling_only(collection: &'a VectorCollection) -> Self {
        Self {
            collection,
            index: None,
        }
    }

    fn require_index(&self) -> &'a LshIndex {
        self.index
            .expect("this estimator requires an LSH index in the EstimationContext")
    }

    /// The cosine measure used throughout the paper's evaluation.
    pub fn measure(&self) -> impl Similarity + Copy {
        Cosine
    }
}

/// Object-safe estimator interface for the harness.
pub trait Estimator {
    /// Short stable name for table rows ("LSH-SS", "RS(pop)", …).
    fn name(&self) -> String;

    /// Produces one estimate at `τ`.
    fn estimate(&self, ctx: &EstimationContext<'_>, tau: f64, rng: &mut Xoshiro256) -> Estimate;
}

impl Estimator for RsPop {
    fn name(&self) -> String {
        "RS(pop)".into()
    }

    fn estimate(&self, ctx: &EstimationContext<'_>, tau: f64, rng: &mut Xoshiro256) -> Estimate {
        RsPop::estimate(self, ctx.collection, &Cosine, tau, rng)
    }
}

impl Estimator for RsCross {
    fn name(&self) -> String {
        "RS(cross)".into()
    }

    fn estimate(&self, ctx: &EstimationContext<'_>, tau: f64, rng: &mut Xoshiro256) -> Estimate {
        RsCross::estimate(self, ctx.collection, &Cosine, tau, rng)
    }
}

impl Estimator for UniformLsh {
    fn name(&self) -> String {
        "JU".into()
    }

    fn estimate(&self, ctx: &EstimationContext<'_>, tau: f64, _rng: &mut Xoshiro256) -> Estimate {
        UniformLsh::estimate(self, ctx.require_index().table(0), tau)
    }
}

impl Estimator for LshS {
    fn name(&self) -> String {
        "LSH-S".into()
    }

    fn estimate(&self, ctx: &EstimationContext<'_>, tau: f64, rng: &mut Xoshiro256) -> Estimate {
        LshS::estimate(
            self,
            ctx.collection,
            &Cosine,
            ctx.require_index().table(0),
            tau,
            rng,
        )
    }
}

impl Estimator for LshSs {
    fn name(&self) -> String {
        match self.config.dampening {
            crate::lshss::Dampening::SafeLowerBound => "LSH-SS".into(),
            _ => "LSH-SS(D)".into(),
        }
    }

    fn estimate(&self, ctx: &EstimationContext<'_>, tau: f64, rng: &mut Xoshiro256) -> Estimate {
        LshSs::estimate(
            self,
            ctx.collection,
            ctx.require_index().table(0),
            &Cosine,
            tau,
            rng,
        )
    }
}

impl Estimator for MedianEstimator {
    fn name(&self) -> String {
        "LSH-SS(median)".into()
    }

    fn estimate(&self, ctx: &EstimationContext<'_>, tau: f64, rng: &mut Xoshiro256) -> Estimate {
        MedianEstimator::estimate(self, ctx.collection, ctx.require_index(), &Cosine, tau, rng)
    }
}

impl Estimator for VirtualBucketEstimator {
    fn name(&self) -> String {
        "LSH-SS(virtual)".into()
    }

    fn estimate(&self, ctx: &EstimationContext<'_>, tau: f64, rng: &mut Xoshiro256) -> Estimate {
        VirtualBucketEstimator::estimate(
            self,
            ctx.collection,
            ctx.require_index(),
            &Cosine,
            tau,
            rng,
        )
    }
}

impl Estimator for Bifocal {
    fn name(&self) -> String {
        "Bifocal".into()
    }

    fn estimate(&self, ctx: &EstimationContext<'_>, tau: f64, rng: &mut Xoshiro256) -> Estimate {
        Bifocal::estimate(
            self,
            ctx.collection,
            ctx.require_index().table(0),
            &Cosine,
            tau,
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsj_lsh::LshParams;
    use vsj_vector::SparseVector;

    fn fixture() -> (VectorCollection, LshIndex) {
        let mut vectors = Vec::new();
        for i in 0..200u32 {
            let entries: Vec<(u32, f32)> = (0..6u32)
                .map(|w| ((i.wrapping_mul(97).wrapping_add(w * 31)) % 64, 1.0))
                .collect();
            vectors.push(SparseVector::from_entries(entries).unwrap());
        }
        let coll = VectorCollection::from_vectors(vectors);
        let idx = LshIndex::build(&coll, LshParams::new(10, 2).with_seed(3).with_threads(1));
        (coll, idx)
    }

    #[test]
    fn all_estimators_run_through_the_trait() {
        let (coll, idx) = fixture();
        let ctx = EstimationContext::with_index(&coll, &idx);
        let n = coll.len();
        let estimators: Vec<Box<dyn Estimator>> = vec![
            Box::new(RsPop::paper_default(n)),
            Box::new(RsCross::with_pair_budget((n as u64) * 3 / 2)),
            Box::new(UniformLsh::idealized()),
            Box::new(LshS::paper_default(n)),
            Box::new(LshSs::with_defaults(n)),
            Box::new(LshSs::dampened_with_defaults(n)),
            Box::new(MedianEstimator::with_defaults(n)),
            Box::new(VirtualBucketEstimator::with_defaults(n)),
            Box::new(Bifocal::with_defaults(n)),
        ];
        let mut rng = Xoshiro256::seeded(1);
        for e in &estimators {
            let est = e.estimate(&ctx, 0.5, &mut rng);
            assert!(
                est.value.is_finite() && est.value >= 0.0,
                "{} produced {est:?}",
                e.name()
            );
            assert!(!e.name().is_empty());
        }
    }

    #[test]
    fn names_distinguish_damping() {
        let a = LshSs::with_defaults(100);
        let b = LshSs::dampened_with_defaults(100);
        assert_eq!(Estimator::name(&a), "LSH-SS");
        assert_eq!(Estimator::name(&b), "LSH-SS(D)");
    }

    #[test]
    #[should_panic(expected = "requires an LSH index")]
    fn index_requirement_enforced() {
        let (coll, _) = fixture();
        let ctx = EstimationContext::sampling_only(&coll);
        let mut rng = Xoshiro256::seeded(2);
        Estimator::estimate(&LshSs::with_defaults(coll.len()), &ctx, 0.5, &mut rng);
    }

    #[test]
    fn sampling_only_context_serves_rs() {
        let (coll, _) = fixture();
        let ctx = EstimationContext::sampling_only(&coll);
        let mut rng = Xoshiro256::seeded(3);
        let e = Estimator::estimate(&RsPop::paper_default(coll.len()), &ctx, 0.3, &mut rng);
        assert!(e.value >= 0.0);
    }
}
