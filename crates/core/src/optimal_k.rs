//! The Optimal-k problem (Definition 4, Appendix B.1 of the paper).
//!
//! `k` trades precision for recall in the bucket stratum:
//!
//! * larger `k` → sharper buckets → higher `P(T|H)` (precision), lower
//!   `P(H|T)` (recall);
//! * smaller `k` → fatter buckets → the reverse; at `k = 0` the stratum
//!   is the whole population and LSH contributes nothing.
//!
//! Definition 4 asks for the minimum `k` with `P(T|H) ≥ ρ`: the smallest
//! (cheapest, highest-recall) table that still makes SampleH reliable.
//! The paper notes the optimum is data-dependent; this module solves it
//! empirically — build tables of increasing `k`, measure `α̂ = P(T|H)` by
//! stratum sampling, return the first `k` that clears `ρ`.

use std::sync::Arc;

use vsj_lsh::{BucketHasher, Composite, LshFamily, LshTable};
use vsj_sampling::Rng;
use vsj_vector::{Similarity, VectorCollection};

/// One probed `k` with its measured precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KProbe {
    /// Number of hash functions.
    pub k: usize,
    /// Estimated `α = P(T|H)`.
    pub alpha: f64,
    /// Same-bucket pairs `N_H` at this `k` (the recall proxy: larger is
    /// better as long as `α` clears ρ).
    pub nh: u64,
}

/// Result of an optimal-k search.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalKResult {
    /// The minimum probed `k` with `α ≥ ρ`, if any cleared it.
    pub optimal_k: Option<usize>,
    /// Every probe, in increasing `k` (diagnostics / ablation plots).
    pub probes: Vec<KProbe>,
}

/// The search configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalKSearch {
    /// Required bucket precision `ρ = ρ(ε, p)` of Definition 4.
    pub rho: f64,
    /// Largest `k` to probe.
    pub k_max: usize,
    /// Stratum-H samples per probe.
    pub samples: u64,
}

impl OptimalKSearch {
    /// Runs the search over `k = 1..=k_max` for the given family.
    pub fn run<F, S, R>(
        &self,
        collection: &VectorCollection,
        family: F,
        measure: &S,
        tau: f64,
        seed: u64,
        rng: &mut R,
    ) -> OptimalKResult
    where
        F: LshFamily + Clone + 'static,
        S: Similarity,
        R: Rng + ?Sized,
    {
        assert!(self.k_max >= 1, "need k_max ≥ 1");
        assert!((0.0..=1.0).contains(&self.rho), "ρ must be a probability");
        let mut probes = Vec::with_capacity(self.k_max);
        let mut optimal_k = None;
        for k in 1..=self.k_max {
            let hasher: Arc<dyn BucketHasher> =
                Arc::new(Composite::derive(family.clone(), seed, 0, k));
            let table = LshTable::build(collection, hasher, Some(1));
            let alpha = estimate_alpha(collection, &table, measure, tau, self.samples, rng);
            probes.push(KProbe {
                k,
                alpha,
                nh: table.nh(),
            });
            if optimal_k.is_none() && alpha >= self.rho && table.nh() > 0 {
                optimal_k = Some(k);
                // Keep probing to fill the diagnostic curve only if the
                // caller asked for a small k_max; large sweeps stop here.
                if self.k_max > 16 {
                    break;
                }
            }
        }
        OptimalKResult { optimal_k, probes }
    }
}

/// `α̂ = P(T|H)` by uniform stratum-H sampling (0 when the stratum is
/// empty).
pub fn estimate_alpha<S, R>(
    collection: &VectorCollection,
    table: &LshTable,
    measure: &S,
    tau: f64,
    samples: u64,
    rng: &mut R,
) -> f64
where
    S: Similarity,
    R: Rng + ?Sized,
{
    if table.nh() == 0 || samples == 0 {
        return 0.0;
    }
    let mut hits = 0u64;
    for _ in 0..samples {
        let (u, v) = table
            .sample_same_bucket_pair(rng)
            .expect("nh > 0 yields pairs");
        if collection.sim(measure, u, v) >= tau {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsj_lsh::MinHashFamily;
    use vsj_sampling::Xoshiro256;
    use vsj_vector::{Jaccard, SparseVector};

    /// Corpus where larger k visibly sharpens buckets: noisy duplicate
    /// clusters over a backdrop of overlapping sets.
    fn corpus() -> VectorCollection {
        let mut rng = Xoshiro256::seeded(31);
        let mut vectors = Vec::new();
        for _ in 0..250 {
            let start = rng.below(120) as u32;
            vectors.push(SparseVector::binary_from_members(
                (start..start + 8).collect(),
            ));
        }
        for c in 0..10u32 {
            let base: Vec<u32> = (0..10).map(|j| 5000 + c * 30 + j).collect();
            for _ in 0..3 {
                vectors.push(SparseVector::binary_from_members(base.clone()));
            }
        }
        VectorCollection::from_vectors(vectors)
    }

    #[test]
    fn alpha_grows_with_k() {
        // The B.1 trade-off: precision P(T|H) increases with k.
        let coll = corpus();
        let mut rng = Xoshiro256::seeded(1);
        let search = OptimalKSearch {
            rho: 1.0, // k_max ≤ 16 keeps probing after clearing ρ
            k_max: 12,
            samples: 20_000,
        };
        let res = search.run(&coll, MinHashFamily::new(), &Jaccard, 0.8, 3, &mut rng);
        assert_eq!(res.probes.len(), 12);
        // Compare small-k and large-k precision.
        let early = res.probes[0].alpha;
        let late = res.probes[11].alpha;
        assert!(
            late > early,
            "α must grow with k: α(1) = {early}, α(12) = {late}"
        );
        // Recall proxy N_H shrinks with k.
        assert!(res.probes[0].nh > res.probes[11].nh);
    }

    #[test]
    fn finds_minimum_k_clearing_rho() {
        let coll = corpus();
        let mut rng = Xoshiro256::seeded(2);
        let search = OptimalKSearch {
            rho: 0.5,
            k_max: 16,
            samples: 20_000,
        };
        let res = search.run(&coll, MinHashFamily::new(), &Jaccard, 0.8, 3, &mut rng);
        let k_star = res.optimal_k.expect("ρ = 0.5 must be reachable");
        // Minimality: every probed smaller k fell short.
        for p in &res.probes {
            if p.k < k_star {
                assert!(p.alpha < 0.5, "k = {} already clears ρ", p.k);
            }
        }
        // And k* itself clears it.
        let at = res.probes.iter().find(|p| p.k == k_star).unwrap();
        assert!(at.alpha >= 0.5);
    }

    #[test]
    fn alpha_estimator_handles_empty_stratum() {
        let coll = VectorCollection::from_vectors(
            (0..5)
                .map(|i| SparseVector::binary_from_members(vec![i * 99]))
                .collect(),
        );
        let hasher: Arc<dyn BucketHasher> =
            Arc::new(Composite::derive(MinHashFamily::new(), 1, 0, 16));
        let table = LshTable::build(&coll, hasher, Some(1));
        let mut rng = Xoshiro256::seeded(3);
        assert_eq!(
            estimate_alpha(&coll, &table, &Jaccard, 0.5, 100, &mut rng),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_rho_rejected() {
        let search = OptimalKSearch {
            rho: 1.5,
            k_max: 4,
            samples: 10,
        };
        search.run(
            &corpus(),
            MinHashFamily::new(),
            &Jaccard,
            0.5,
            0,
            &mut Xoshiro256::seeded(0),
        );
    }
}
