//! Multi-table estimators (Appendix B.2.1 of the paper).
//!
//! A production LSH index carries `ℓ > 1` tables. Two ways to exploit
//! them:
//!
//! * [`MedianEstimator`] — run LSH-SS independently per table and take
//!   the median. By the Chernoff median argument, if each per-table
//!   estimate deviates with probability `p < 1/2`, the median deviates
//!   with probability `≤ 2^(−ℓ/2)` — reliability amplification at the
//!   cost of splitting the sample budget.
//! * [`VirtualBucketEstimator`] — redefine the `H` event as *sharing a
//!   bucket in any table*. `S_H` grows (union over tables), capturing
//!   more of the true-pair mass when `k` is larger than necessary; the
//!   estimator is the same stratified scheme run against the union
//!   stratum, with `N_H^∪` estimated by multiplicity-corrected union
//!   sampling (see `vsj_lsh::LshIndex`).

use crate::estimate::{clamp_estimate, Estimate, EstimateKind};
use crate::lshss::{Dampening, LshSs, LshSsConfig};
use vsj_lsh::LshIndex;
use vsj_sampling::{AdaptiveSampler, Rng};
use vsj_vector::{Similarity, VectorCollection};

/// Median-of-tables LSH-SS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MedianEstimator {
    /// Per-table LSH-SS configuration (the paper samples `n` pairs per
    /// table, multiplying the effective sample size by `ℓ`).
    pub per_table: LshSsConfig,
}

impl MedianEstimator {
    /// Paper defaults for database size `n`.
    pub fn with_defaults(n: usize) -> Self {
        Self {
            per_table: LshSsConfig::paper_defaults(n),
        }
    }

    /// Median of per-table LSH-SS estimates over all tables of `index`.
    pub fn estimate<S, R>(
        &self,
        collection: &VectorCollection,
        index: &LshIndex,
        measure: &S,
        tau: f64,
        rng: &mut R,
    ) -> Estimate
    where
        S: Similarity,
        R: Rng + ?Sized,
    {
        let est = LshSs {
            config: self.per_table,
        };
        let mut values: Vec<f64> = Vec::with_capacity(index.num_tables());
        let mut any_lower_bound = false;
        for t in index.tables() {
            let d = est.estimate_detailed(collection, t, measure, tau, rng);
            any_lower_bound |= !d.l_reliable;
            values.push(d.estimate().value);
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("estimates are finite"));
        let mid = values.len() / 2;
        let median = if values.len() % 2 == 1 {
            values[mid]
        } else {
            (values[mid - 1] + values[mid]) / 2.0
        };
        Estimate {
            value: clamp_estimate(median, collection.total_pairs()),
            kind: if any_lower_bound {
                EstimateKind::SafeLowerBound
            } else {
                EstimateKind::Scaled
            },
        }
    }
}

/// Virtual-bucket LSH-SS over the union stratum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirtualBucketEstimator {
    /// Sampling parameters (same roles as in plain LSH-SS).
    pub config: LshSsConfig,
    /// Union-size estimation samples for `N_H^∪` (exact when `ℓ = 1`).
    pub union_samples: u64,
}

impl VirtualBucketEstimator {
    /// Paper defaults for database size `n`.
    pub fn with_defaults(n: usize) -> Self {
        Self {
            config: LshSsConfig::paper_defaults(n),
            union_samples: (n as u64).max(1000),
        }
    }

    /// Runs the stratified scheme against virtual buckets.
    pub fn estimate<S, R>(
        &self,
        collection: &VectorCollection,
        index: &LshIndex,
        measure: &S,
        tau: f64,
        rng: &mut R,
    ) -> Estimate
    where
        S: Similarity,
        R: Rng + ?Sized,
    {
        assert_eq!(collection.len(), index.len(), "index/collection mismatch");
        let m_total = collection.total_pairs();
        let n = collection.len() as u64;

        // N_H^∪ (estimated; exact for one table).
        let nh_virtual = index.estimate_virtual_nh(rng, self.union_samples.max(1));

        // SampleH over the union stratum.
        let jh = if nh_virtual <= 0.0 || self.config.m_h == 0 {
            0.0
        } else {
            let mut positives = 0u64;
            for _ in 0..self.config.m_h {
                let (u, v) = index
                    .sample_virtual_bucket_pair(rng)
                    .expect("nh_virtual > 0 implies pairs exist");
                if collection.sim(measure, u, v) >= tau {
                    positives += 1;
                }
            }
            positives as f64 * (nh_virtual / self.config.m_h as f64)
        };

        // SampleL over the complement: uniform pairs rejected while in
        // *any* common bucket.
        let nl_virtual = (m_total as f64 - nh_virtual).max(0.0);
        let mut lower_bound_used = false;
        let jl = if nl_virtual <= 0.0 || self.config.m_l == 0 || n < 2 {
            0.0
        } else {
            let sampler = AdaptiveSampler::new(self.config.delta, self.config.m_l);
            let outcome = sampler.run(nl_virtual.round() as u64, || loop {
                let (i, j) = vsj_sampling::sample_distinct_pair(rng, n);
                let (i, j) = (i as u32, j as u32);
                if !index.same_bucket_any(i, j) {
                    return collection.sim(measure, i, j) >= tau;
                }
            });
            lower_bound_used = !outcome.is_reliable();
            match self.config.dampening {
                Dampening::SafeLowerBound => outcome.safe_estimate(),
                Dampening::Constant(cs) => {
                    outcome.dampened_estimate(nl_virtual.round() as u64, cs.clamp(0.0, 1.0))
                }
                Dampening::NlOverDelta => {
                    let cs = if self.config.delta == 0 {
                        1.0
                    } else {
                        outcome.positives() as f64 / self.config.delta as f64
                    };
                    outcome.dampened_estimate(nl_virtual.round() as u64, cs.clamp(0.0, 1.0))
                }
            }
        };

        Estimate {
            value: clamp_estimate(jh + jl, m_total),
            kind: if lower_bound_used {
                match self.config.dampening {
                    Dampening::SafeLowerBound => EstimateKind::SafeLowerBound,
                    _ => EstimateKind::Dampened,
                }
            } else {
                EstimateKind::Scaled
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsj_lsh::{LshIndex, LshParams, MinHashFamily};
    use vsj_sampling::Xoshiro256;
    use vsj_vector::{Jaccard, SparseVector};

    fn corpus(seed: u64) -> VectorCollection {
        let mut rng = Xoshiro256::seeded(seed);
        let mut vectors = Vec::new();
        for _ in 0..400 {
            let start = rng.below(250) as u32;
            let len = 6 + rng.below(8) as u32;
            vectors.push(SparseVector::binary_from_members(
                (start..start + len).collect(),
            ));
        }
        for c in 0..12u32 {
            let base: Vec<u32> = (0..10).map(|j| 3000 + c * 25 + j).collect();
            vectors.push(SparseVector::binary_from_members(base.clone()));
            vectors.push(SparseVector::binary_from_members(base));
        }
        VectorCollection::from_vectors(vectors)
    }

    fn exact(coll: &VectorCollection, tau: f64) -> u64 {
        let n = coll.len() as u32;
        let mut c = 0;
        for a in 0..n {
            for b in (a + 1)..n {
                if Jaccard.sim(coll.vector(a), coll.vector(b)) >= tau {
                    c += 1;
                }
            }
        }
        c
    }

    fn index(coll: &VectorCollection, k: usize, l: usize) -> LshIndex {
        LshIndex::build_with_family(
            coll,
            MinHashFamily::new(),
            LshParams::new(k, l).with_seed(31).with_threads(1),
        )
    }

    #[test]
    fn median_estimator_accurate_and_stable() {
        let coll = corpus(1);
        let idx = index(&coll, 8, 3);
        let tau = 0.9;
        let truth = exact(&coll, tau) as f64;
        assert!(truth >= 10.0, "need duplicate tail, got {truth}");
        let est = MedianEstimator::with_defaults(coll.len());
        let mut rng = Xoshiro256::seeded(2);
        let mut vals = Vec::new();
        for _ in 0..15 {
            vals.push(est.estimate(&coll, &idx, &Jaccard, tau, &mut rng).value);
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(
            mean > truth * 0.4 && mean < truth * 2.5,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn median_of_even_table_count() {
        let coll = corpus(3);
        let idx = index(&coll, 8, 2);
        let est = MedianEstimator::with_defaults(coll.len());
        let mut rng = Xoshiro256::seeded(4);
        let e = est.estimate(&coll, &idx, &Jaccard, 0.5, &mut rng);
        assert!(e.value.is_finite() && e.value >= 0.0);
    }

    #[test]
    fn virtual_buckets_capture_more_tail_when_k_too_large() {
        // The B.2.1 motivation: at over-selective k, a single table's S_H
        // misses true pairs that *some* table catches. The virtual
        // stratum must be at least as large as any single table's.
        let coll = corpus(5);
        let idx = index(&coll, 16, 4);
        let single_nh = idx.table(0).nh();
        let mut rng = Xoshiro256::seeded(6);
        let union_nh = idx.estimate_virtual_nh(&mut rng, 40_000);
        assert!(
            union_nh >= single_nh as f64 * 0.99,
            "union {union_nh} < single {single_nh}"
        );
    }

    #[test]
    fn virtual_estimator_accurate_at_high_tau() {
        let coll = corpus(7);
        let idx = index(&coll, 12, 3);
        let tau = 0.9;
        let truth = exact(&coll, tau) as f64;
        assert!(truth >= 10.0);
        let est = VirtualBucketEstimator::with_defaults(coll.len());
        let mut rng = Xoshiro256::seeded(8);
        let mut sum = 0.0;
        let trials = 15;
        for _ in 0..trials {
            sum += est.estimate(&coll, &idx, &Jaccard, tau, &mut rng).value;
        }
        let mean = sum / trials as f64;
        assert!(
            mean > truth * 0.4 && mean < truth * 2.5,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn virtual_estimator_single_table_equals_lshss_regime() {
        // With ℓ = 1 the virtual stratum is exactly the table stratum;
        // the estimator must behave like plain LSH-SS (same expected
        // value; compare means).
        let coll = corpus(9);
        let idx = index(&coll, 8, 1);
        let tau = 0.5;
        let est_v = VirtualBucketEstimator::with_defaults(coll.len());
        let est_p = LshSs::with_defaults(coll.len());
        let mut rng = Xoshiro256::seeded(10);
        let trials = 20;
        let mut sv = 0.0;
        let mut sp = 0.0;
        for _ in 0..trials {
            sv += est_v.estimate(&coll, &idx, &Jaccard, tau, &mut rng).value;
            sp += est_p
                .estimate(&coll, idx.table(0), &Jaccard, tau, &mut rng)
                .value;
        }
        let (mv, mp) = (sv / trials as f64, sp / trials as f64);
        assert!(
            (mv - mp).abs() < 0.5 * mp.max(1.0),
            "virtual {mv} vs plain {mp}"
        );
    }

    #[test]
    fn empty_index_handled() {
        let coll = VectorCollection::from_vectors(
            (0..4)
                .map(|i| SparseVector::binary_from_members(vec![i * 100]))
                .collect(),
        );
        let idx = index(&coll, 24, 2);
        assert_eq!(idx.sum_nh(), 0);
        let est = VirtualBucketEstimator::with_defaults(4);
        let mut rng = Xoshiro256::seeded(12);
        let e = est.estimate(&coll, &idx, &Jaccard, 0.9, &mut rng);
        assert!(e.value >= 0.0);
    }
}
