//! Sparse vector kernel for vector similarity joins.
//!
//! This crate is the data-model substrate of the `vsj` workspace, the
//! reproduction of *"Similarity Join Size Estimation using Locality
//! Sensitive Hashing"* (Lee, Ng, Shim; PVLDB 4(6), 2011). The paper's VSJ
//! problem (Definition 1) operates on a collection of real-valued vectors
//! under cosine similarity; its SSJ predecessor operates on sets under
//! Jaccard similarity. Everything downstream (LSH indexing, sampling
//! estimators, exact joins) is built on the types defined here:
//!
//! * [`SparseVector`] — an immutable sparse vector with sorted `u32`
//!   coordinates and `f32` weights. Sets are represented as binary vectors
//!   (all weights 1), exactly as the paper treats a set as "a special case
//!   of a binary vector" (§1).
//! * [`Similarity`] implementations — [`Cosine`] (the paper's measure),
//!   [`Jaccard`] (for the SSJ baseline track), and weighted variants.
//! * [`VectorCollection`] — the vector database `V = {v1, ..., vn}` with
//!   summary statistics.
//! * [`SharedVectorCollection`] / [`VectorStore`] — `Arc`-shared payload
//!   storage and the read trait that lets estimators run against either
//!   collection flavor (an owned offline database or a service epoch
//!   snapshot sharing payloads with the mutable shards).
//! * [`embedding`] — the vector ↔ multiset rounding embedding the paper
//!   discusses (§1) when adapting SSJ techniques to VSJ.
//!
//! Similarities are computed in `f64` from `f32` storage: collections are
//! large (storage matters) but estimator math is sensitive to cancellation
//! (Eq. 1 of the paper divides by a difference of probabilities).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod embedding;
pub mod shared;
pub mod similarity;
pub mod sparse;

pub use collection::{CollectionStats, VectorCollection};
pub use shared::{SharedVectorCollection, VectorStore};
pub use similarity::{AngularKernel, Cosine, DotProduct, Jaccard, Overlap, Similarity};
pub use sparse::{SparseVector, SparseVectorBuilder};

/// Identifier of a vector inside a [`VectorCollection`].
///
/// `u32` bounds collections to ~4.29 billion vectors, far above the paper's
/// largest dataset (DBLP, n = 794,016) while halving index memory relative
/// to `usize` ids.
pub type VectorId = u32;

/// Number of unordered pairs `C(n, 2)` as an exact `u64`.
///
/// Twin of `vsj_sampling::pair_count` — kept as two dependency-free
/// copies on purpose (neither foundation crate depends on the other);
/// the `vsj-lsh` test suite pins their agreement.
///
/// This is the paper's `M` (with `n = |V|`) and `N_H` building block
/// (`N_H = Σ_j C(b_j, 2)`). Computed as `n * (n - 1) / 2` with the even
/// factor divided first so the intermediate cannot overflow for any
/// `n ≤ u32::MAX`.
#[inline]
pub fn pairs_of(n: u64) -> u64 {
    if n.is_multiple_of(2) {
        (n / 2) * n.saturating_sub(1)
    } else {
        n * (n.saturating_sub(1) / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_of_small_values() {
        assert_eq!(pairs_of(0), 0);
        assert_eq!(pairs_of(1), 0);
        assert_eq!(pairs_of(2), 1);
        assert_eq!(pairs_of(3), 3);
        assert_eq!(pairs_of(4), 6);
        assert_eq!(pairs_of(5), 10);
    }

    #[test]
    fn pairs_of_paper_scale() {
        // DBLP: n = 794,016 -> M ≈ 3.15e11 (the paper's "more than 100
        // billion true pairs at τ=0.1" is consistent with this M).
        assert_eq!(pairs_of(794_016), 794_016u64 * 794_015 / 2);
    }

    #[test]
    fn pairs_of_no_overflow_at_u32_max() {
        let n = u32::MAX as u64;
        // n(n-1)/2 for n = 2^32-1 fits comfortably in u64.
        let expected = n * ((n - 1) / 2);
        assert_eq!(pairs_of(n), expected);
    }
}
