//! Arc-shared vector storage — the payload substrate of incremental
//! epoch publication.
//!
//! The service layer's epoch snapshots and mutable shards both need the
//! same vector payloads, but a snapshot must be immutable while shards
//! keep mutating. Deep-copying every [`SparseVector`] into each snapshot
//! (what the original `publish()` did) makes publication O(corpus
//! bytes); holding the payloads behind [`Arc`]s makes it pointer work:
//!
//! * [`SharedVectorCollection`] — an ordered collection over
//!   `Arc<SparseVector>` payloads. Cloning the collection, or extending
//!   a clone with a delta, never copies vector data — only refcounted
//!   pointers move.
//! * [`VectorStore`] — the read trait estimators actually need
//!   (`len` + `vector` + derived `sim`), implemented by both
//!   [`VectorCollection`] and [`SharedVectorCollection`], so the same
//!   estimator code runs against an owned offline collection or an
//!   Arc-shared epoch snapshot.

use std::sync::Arc;

use crate::collection::VectorCollection;
use crate::similarity::Similarity;
use crate::sparse::SparseVector;
use crate::{pairs_of, VectorId};

/// Read access to an ordered vector database `V = {v1, ..., vn}`.
///
/// This is the surface every sampling estimator needs from the
/// collection: the size `n` and id → vector resolution (from which
/// pairwise similarity derives). Who *owns* the payloads — an inline
/// [`VectorCollection`] or an Arc-sharing [`SharedVectorCollection`] —
/// is invisible behind it, which is what lets service snapshots share
/// payloads with the mutable shards instead of deep-copying them.
pub trait VectorStore {
    /// Number of vectors `n = |V|`.
    fn len(&self) -> usize;

    /// True when the store holds no vectors.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The vector with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range; ids come from the store itself,
    /// so an out-of-range id is an upstream logic error.
    fn vector(&self, id: VectorId) -> &SparseVector;

    /// Total number of unordered pairs `M = C(n, 2)`.
    fn total_pairs(&self) -> u64 {
        pairs_of(self.len() as u64)
    }

    /// Similarity between two members by id.
    #[inline]
    fn sim<S: Similarity + ?Sized>(&self, measure: &S, a: VectorId, b: VectorId) -> f64 {
        measure.sim(self.vector(a), self.vector(b))
    }
}

impl VectorStore for VectorCollection {
    #[inline]
    fn len(&self) -> usize {
        VectorCollection::len(self)
    }

    #[inline]
    fn vector(&self, id: VectorId) -> &SparseVector {
        VectorCollection::vector(self, id)
    }
}

impl<T: VectorStore + ?Sized> VectorStore for &T {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn vector(&self, id: VectorId) -> &SparseVector {
        (**self).vector(id)
    }
}

/// Maximum payload runs before [`SharedVectorCollection::extended`]
/// coalesces them into one — bounds per-lookup run-search depth while
/// keeping the per-epoch extension cost O(delta) (the flatten is an
/// O(n) pointer pass amortized over this many epochs).
const COALESCE_RUNS: usize = 32;

/// An ordered collection of `Arc`-shared sparse vectors, stored as a
/// short list of immutable, `Arc`-shared **runs**.
///
/// Same id discipline as [`VectorCollection`] (dense [`VectorId`]s
/// `0..n` in insertion order) but nothing is owned exclusively: runs
/// are shared between collections, and the payloads inside them are
/// shared with whoever else holds them (mutable shards, neighboring
/// epoch snapshots, checkpoint rows).
/// [`SharedVectorCollection::extended`] produces a new collection that
/// reuses every existing run *by pointer* and appends one run holding
/// the delta — the O(changed) payload half of epoch publication.
#[derive(Debug, Clone, Default)]
pub struct SharedVectorCollection {
    runs: Vec<Arc<Vec<Arc<SparseVector>>>>,
    /// Id of the first vector of each run (parallel to `runs`).
    starts: Vec<u32>,
    len: u32,
}

impl SharedVectorCollection {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a collection from already-shared payloads (one run).
    pub fn from_arcs(vectors: Vec<Arc<SparseVector>>) -> Self {
        let len = u32::try_from(vectors.len()).expect("collection exceeds u32 ids");
        Self {
            runs: vec![Arc::new(vectors)],
            starts: vec![0],
            len,
        }
    }

    /// Run containing `id`.
    #[inline]
    fn run_of(&self, id: VectorId) -> usize {
        if self.runs.len() == 1 {
            0
        } else {
            self.starts.partition_point(|&s| s <= id) - 1
        }
    }

    /// Appends a shared vector, returning its id.
    pub fn push(&mut self, v: Arc<SparseVector>) -> VectorId {
        let id = self.len;
        assert!(id != u32::MAX, "collection exceeds u32 ids");
        match self.runs.last_mut() {
            Some(run) => Arc::make_mut(run).push(v),
            None => {
                self.runs.push(Arc::new(vec![v]));
                self.starts.push(0);
            }
        }
        self.len += 1;
        id
    }

    /// A new collection holding this one's payloads followed by `tail`:
    /// existing runs are reused by `Arc` (O(#runs), not O(n)) and the
    /// tail becomes one appended run — no payload is copied. Runs are
    /// flattened once the list passes an internal bound, keeping lookups
    /// shallow.
    pub fn extended<I>(&self, tail: I) -> Self
    where
        I: IntoIterator<Item = Arc<SparseVector>>,
    {
        let tail: Vec<Arc<SparseVector>> = tail.into_iter().collect();
        let added = u32::try_from(tail.len()).expect("collection exceeds u32 ids");
        let len = self
            .len
            .checked_add(added)
            .expect("collection exceeds u32 ids");
        let mut runs = Vec::with_capacity(self.runs.len() + 1);
        let mut starts = Vec::with_capacity(self.runs.len() + 1);
        runs.extend(self.runs.iter().cloned());
        starts.extend_from_slice(&self.starts);
        if !tail.is_empty() {
            starts.push(self.len);
            runs.push(Arc::new(tail));
        }
        if runs.len() > COALESCE_RUNS {
            let mut flat = Vec::with_capacity(len as usize);
            for run in &runs {
                flat.extend(run.iter().cloned());
            }
            return Self::from_arcs(flat);
        }
        Self { runs, starts, len }
    }

    /// The shared handle of a vector (for re-sharing into another owner,
    /// e.g. a checkpoint row or the next epoch's snapshot).
    #[inline]
    pub fn arc(&self, id: VectorId) -> &Arc<SparseVector> {
        let run = self.run_of(id);
        &self.runs[run][(id - self.starts[run]) as usize]
    }

    /// Iterates the shared handles in id order.
    pub fn iter_arcs(&self) -> impl Iterator<Item = &Arc<SparseVector>> {
        self.runs.iter().flat_map(|run| run.iter())
    }

    /// Iterates `(id, vector)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VectorId, &SparseVector)> {
        self.iter_arcs()
            .enumerate()
            .map(|(i, v)| (i as VectorId, v.as_ref()))
    }

    /// Deep-copies into an owned [`VectorCollection`] (offline tooling
    /// that needs exclusive payloads; the service itself never does
    /// this).
    pub fn to_owned_collection(&self) -> VectorCollection {
        VectorCollection::from_vectors(self.iter_arcs().map(|v| (**v).clone()).collect())
    }
}

impl VectorStore for SharedVectorCollection {
    #[inline]
    fn len(&self) -> usize {
        self.len as usize
    }

    #[inline]
    fn vector(&self, id: VectorId) -> &SparseVector {
        self.arc(id)
    }
}

impl From<VectorCollection> for SharedVectorCollection {
    /// Moves the owned payloads behind `Arc`s (no vector-data copies).
    fn from(collection: VectorCollection) -> Self {
        Self::from_arcs(
            collection
                .into_vectors()
                .into_iter()
                .map(Arc::new)
                .collect(),
        )
    }
}

impl FromIterator<Arc<SparseVector>> for SharedVectorCollection {
    fn from_iter<T: IntoIterator<Item = Arc<SparseVector>>>(iter: T) -> Self {
        Self::from_arcs(iter.into_iter().collect())
    }
}

impl std::ops::Index<VectorId> for SharedVectorCollection {
    type Output = SparseVector;

    fn index(&self, id: VectorId) -> &SparseVector {
        self.arc(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::Cosine;

    fn sv(entries: &[(u32, f32)]) -> Arc<SparseVector> {
        Arc::new(SparseVector::from_entries(entries.to_vec()).expect("valid test vector"))
    }

    fn sample() -> SharedVectorCollection {
        SharedVectorCollection::from_arcs(vec![
            sv(&[(0, 1.0), (1, 1.0)]),
            sv(&[(0, 1.0)]),
            sv(&[(2, 2.0), (3, 2.0)]),
        ])
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let mut c = SharedVectorCollection::new();
        assert_eq!(c.push(sv(&[(0, 1.0)])), 0);
        assert_eq!(c.push(sv(&[(1, 1.0)])), 1);
        assert_eq!(VectorStore::len(&c), 2);
        assert!(!VectorStore::is_empty(&c));
    }

    #[test]
    fn store_trait_agrees_with_owned_collection() {
        let shared = sample();
        let owned = shared.to_owned_collection();
        assert_eq!(VectorStore::len(&shared), VectorStore::len(&owned));
        assert_eq!(shared.total_pairs(), owned.total_pairs());
        for id in 0..3u32 {
            assert_eq!(
                VectorStore::vector(&shared, id),
                VectorStore::vector(&owned, id)
            );
        }
        let s1 = VectorStore::sim(&shared, &Cosine, 0, 1);
        let s2 = VectorStore::sim(&owned, &Cosine, 0, 1);
        assert_eq!(s1.to_bits(), s2.to_bits(), "sim must be bit-identical");
    }

    #[test]
    fn extended_shares_existing_payloads() {
        let base = sample();
        let next = base.extended([sv(&[(9, 1.0)])]);
        assert_eq!(VectorStore::len(&next), 4);
        for id in 0..3u32 {
            assert!(
                Arc::ptr_eq(base.arc(id), next.arc(id)),
                "payload {id} was copied, not shared"
            );
        }
        // The parent is untouched.
        assert_eq!(VectorStore::len(&base), 3);
    }

    #[test]
    fn clone_is_pointer_work() {
        let base = sample();
        let cloned = base.clone();
        for id in 0..3u32 {
            assert!(Arc::ptr_eq(base.arc(id), cloned.arc(id)));
        }
    }

    #[test]
    fn from_owned_collection_wraps_without_reordering() {
        let owned = VectorCollection::from_vectors(vec![
            (*sv(&[(0, 1.0)])).clone(),
            (*sv(&[(5, 2.0)])).clone(),
        ]);
        let shared = SharedVectorCollection::from(owned.clone());
        for id in 0..2u32 {
            assert_eq!(shared[id], owned[id]);
        }
    }

    #[test]
    fn reference_store_is_transparent() {
        let c = sample();
        let by_ref: &SharedVectorCollection = &c;
        assert_eq!(VectorStore::len(&by_ref), VectorStore::len(&c));
        assert_eq!(
            VectorStore::sim(&by_ref, &Cosine, 0, 2).to_bits(),
            VectorStore::sim(&c, &Cosine, 0, 2).to_bits()
        );
    }
}
