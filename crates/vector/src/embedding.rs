//! Vector ↔ set embeddings.
//!
//! Section 1 of the paper discusses the "straightforward extension of SSJ
//! techniques for the VSJ problem": *"We convert a vector into a set by
//! treating a dimension as an element and repeating the element as many
//! times as the dimension value, using standard rounding techniques if
//! values are not integral"* (following Arasu et al. \[2\]). The paper then
//! argues this embedding has adverse effects in practice — we implement it
//! so that claim can be exercised (the LC baseline can run on either the
//! native vectors or on embedded sets, and the `bench` crate has an
//! ablation comparing the two).

use crate::sparse::SparseVector;

/// A multiset produced by embedding a weighted vector: each `(dimension,
/// multiplicity)` entry represents `multiplicity` copies of the element.
///
/// Elements of the expanded set are encoded as `dimension * stride + copy`
/// so two multisets can be intersected with plain set semantics (see
/// [`MultisetEmbedding::to_expanded_binary`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Multiset {
    entries: Vec<(u32, u32)>,
}

impl Multiset {
    /// `(dimension, multiplicity)` entries with multiplicity ≥ 1, sorted by
    /// dimension.
    pub fn entries(&self) -> &[(u32, u32)] {
        &self.entries
    }

    /// Total multiset cardinality `Σ multiplicity`.
    pub fn cardinality(&self) -> u64 {
        self.entries.iter().map(|&(_, m)| u64::from(m)).sum()
    }

    /// Multiset intersection size with another multiset:
    /// `Σ_d min(m_a(d), m_b(d))`.
    pub fn intersection_size(&self, other: &Self) -> u64 {
        let (mut i, mut j, mut acc) = (0usize, 0usize, 0u64);
        while i < self.entries.len() && j < other.entries.len() {
            let (da, ma) = self.entries[i];
            let (db, mb) = other.entries[j];
            match da.cmp(&db) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += u64::from(ma.min(mb));
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Multiset Jaccard similarity `|A ∩ B| / |A ∪ B|` with
    /// `|A ∪ B| = |A| + |B| − |A ∩ B|`.
    pub fn jaccard(&self, other: &Self) -> f64 {
        let inter = self.intersection_size(other);
        let union = self.cardinality() + other.cardinality() - inter;
        if union == 0 {
            return 1.0;
        }
        inter as f64 / union as f64
    }
}

/// The rounding embedding of a real-valued vector into a multiset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultisetEmbedding {
    /// Weights are multiplied by this factor before rounding, controlling
    /// quantization error: a weight `w` becomes `round(w * scale)` copies.
    pub scale: f64,
    /// Multiplicities are capped here to bound the expansion of heavy
    /// dimensions (the "required resources" downside the paper mentions).
    pub max_multiplicity: u32,
}

impl Default for MultisetEmbedding {
    fn default() -> Self {
        Self {
            scale: 1.0,
            max_multiplicity: 64,
        }
    }
}

impl MultisetEmbedding {
    /// Embeds a vector; dimensions whose scaled weight rounds to zero are
    /// dropped (matching the paper's "standard rounding techniques").
    /// Negative weights are clamped to zero — multisets cannot represent
    /// them, which is one of the embedding's documented losses.
    pub fn embed(&self, v: &SparseVector) -> Multiset {
        let entries = v
            .iter()
            .filter_map(|(dim, w)| {
                let m = (f64::from(w) * self.scale).round();
                if m < 1.0 {
                    None
                } else {
                    Some((dim, (m as u64).min(u64::from(self.max_multiplicity)) as u32))
                }
            })
            .collect();
        Multiset { entries }
    }

    /// Expands a multiset into a plain binary vector over a strided
    /// dimension space (`dimension * (max_multiplicity+1) + copy`), so SSJ
    /// machinery that only understands sets (e.g. MinHash) can run on it.
    ///
    /// Note the expansion is exactly where the embedding's cost explodes:
    /// nnz multiplies by the average multiplicity.
    pub fn to_expanded_binary(&self, m: &Multiset) -> SparseVector {
        let stride = u64::from(self.max_multiplicity) + 1;
        let mut members = Vec::with_capacity(m.cardinality() as usize);
        for &(dim, mult) in m.entries() {
            for copy in 0..mult {
                let encoded = u64::from(dim) * stride + u64::from(copy);
                members.push(u32::try_from(encoded).expect(
                    "expanded dimension exceeds u32; reduce max_multiplicity or dimensionality",
                ));
            }
        }
        SparseVector::binary_from_members(members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::{Jaccard, Similarity};
    use proptest::prelude::*;

    fn sv(entries: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_entries(entries.to_vec()).expect("valid test vector")
    }

    #[test]
    fn embed_integral_weights_is_exact() {
        let v = sv(&[(0, 2.0), (3, 1.0)]);
        let m = MultisetEmbedding::default().embed(&v);
        assert_eq!(m.entries(), &[(0, 2), (3, 1)]);
        assert_eq!(m.cardinality(), 3);
    }

    #[test]
    fn embed_rounds_fractional_weights() {
        let v = sv(&[(0, 1.4), (1, 1.6), (2, 0.4)]);
        let m = MultisetEmbedding::default().embed(&v);
        // 1.4 -> 1, 1.6 -> 2, 0.4 -> dropped.
        assert_eq!(m.entries(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn embed_scale_refines_quantization() {
        let v = sv(&[(0, 1.4)]);
        let m = MultisetEmbedding {
            scale: 10.0,
            ..Default::default()
        }
        .embed(&v);
        assert_eq!(m.entries(), &[(0, 14)]);
    }

    #[test]
    fn embed_caps_multiplicity() {
        let v = sv(&[(0, 1000.0)]);
        let e = MultisetEmbedding {
            scale: 1.0,
            max_multiplicity: 8,
        };
        assert_eq!(e.embed(&v).entries(), &[(0, 8)]);
    }

    #[test]
    fn embed_drops_negative_weights() {
        let v = sv(&[(0, -3.0), (1, 2.0)]);
        let m = MultisetEmbedding::default().embed(&v);
        assert_eq!(m.entries(), &[(1, 2)]);
    }

    #[test]
    fn multiset_jaccard_known_value() {
        // A = {a,a,b}, B = {a,b,b}: |∩| = min(2,1)+min(1,2) = 2, |∪| = 4.
        let a = Multiset {
            entries: vec![(0, 2), (1, 1)],
        };
        let b = Multiset {
            entries: vec![(0, 1), (1, 2)],
        };
        assert!((a.jaccard(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn expanded_binary_preserves_multiset_jaccard() {
        let e = MultisetEmbedding::default();
        let a = e.embed(&sv(&[(0, 2.0), (1, 1.0)]));
        let b = e.embed(&sv(&[(0, 1.0), (1, 2.0)]));
        let ea = e.to_expanded_binary(&a);
        let eb = e.to_expanded_binary(&b);
        assert!((Jaccard.sim(&ea, &eb) - a.jaccard(&b)).abs() < 1e-12);
    }

    #[test]
    fn expansion_blows_up_nnz() {
        // Documents the paper's resource complaint: a single heavy
        // dimension becomes many set elements.
        let v = sv(&[(0, 50.0)]);
        let e = MultisetEmbedding::default();
        let expanded = e.to_expanded_binary(&e.embed(&v));
        assert_eq!(expanded.nnz(), 50);
    }

    proptest! {
        #[test]
        fn prop_embedding_jaccard_matches_expanded_jaccard(
            a in proptest::collection::vec((0u32..32, 1.0f32..5.0), 1..10),
            b in proptest::collection::vec((0u32..32, 1.0f32..5.0), 1..10),
        ) {
            let e = MultisetEmbedding::default();
            let (va, vb) = (SparseVector::from_entries(a).unwrap(), SparseVector::from_entries(b).unwrap());
            let (ma, mb) = (e.embed(&va), e.embed(&vb));
            let (xa, xb) = (e.to_expanded_binary(&ma), e.to_expanded_binary(&mb));
            prop_assert!((Jaccard.sim(&xa, &xb) - ma.jaccard(&mb)).abs() < 1e-12);
        }

        #[test]
        fn prop_multiset_intersection_symmetric_and_bounded(
            a in proptest::collection::vec((0u32..32, 1.0f32..5.0), 0..10),
            b in proptest::collection::vec((0u32..32, 1.0f32..5.0), 0..10),
        ) {
            let e = MultisetEmbedding::default();
            let ma = e.embed(&SparseVector::from_entries(a).unwrap());
            let mb = e.embed(&SparseVector::from_entries(b).unwrap());
            let i = ma.intersection_size(&mb);
            prop_assert_eq!(i, mb.intersection_size(&ma));
            prop_assert!(i <= ma.cardinality().min(mb.cardinality()));
        }
    }
}
