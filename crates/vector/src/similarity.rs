//! Similarity measures over sparse vectors.
//!
//! The paper fixes cosine similarity for the VSJ problem (§1) but notes the
//! algorithms "can easily support other similarity measures by using an
//! appropriate LSH family" (§4.1). We therefore expose similarity as a
//! trait; the LSH crate pairs each [`Similarity`] with a hash family whose
//! collision probability is a known function of it.

use crate::sparse::SparseVector;

/// A symmetric similarity measure `sim : V × V → [0, 1]` (or ℝ for
/// [`DotProduct`]).
pub trait Similarity {
    /// Computes the similarity of `u` and `v`.
    fn sim(&self, u: &SparseVector, v: &SparseVector) -> f64;

    /// Short stable name used in reports and experiment CSVs.
    fn name(&self) -> &'static str;
}

/// Cosine similarity `cos(u,v) = u·v / (‖u‖·‖v‖)` — the paper's measure.
///
/// Conventions for degenerate inputs: if either vector is zero the
/// similarity is 0 (no direction to agree on). Floating-point results are
/// clamped to `[-1, 1]` so that `acos` in the angular LSH model never
/// receives an out-of-domain argument.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cosine;

impl Similarity for Cosine {
    #[inline]
    fn sim(&self, u: &SparseVector, v: &SparseVector) -> f64 {
        let denom = u.norm() * v.norm();
        if denom == 0.0 {
            return 0.0;
        }
        (u.dot(v) / denom).clamp(-1.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "cosine"
    }
}

/// Jaccard similarity over the *coordinate sets*:
/// `|u ∩ v| / |u ∪ v|` (weights ignored).
///
/// This is the SSJ measure (Definition 2) used by the Lattice Counting
/// baseline and by MinHash, for which Definition 3 holds exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Jaccard;

impl Similarity for Jaccard {
    #[inline]
    fn sim(&self, u: &SparseVector, v: &SparseVector) -> f64 {
        let inter = u.intersection_size(v);
        let union = u.nnz() + v.nnz() - inter;
        if union == 0 {
            // Both empty: conventionally identical.
            return 1.0;
        }
        inter as f64 / union as f64
    }

    fn name(&self) -> &'static str {
        "jaccard"
    }
}

/// Set-overlap similarity `|u ∩ v| / min(|u|, |v|)` (weights ignored);
/// included for completeness of the SSJ track.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Overlap;

impl Similarity for Overlap {
    #[inline]
    fn sim(&self, u: &SparseVector, v: &SparseVector) -> f64 {
        let m = u.nnz().min(v.nnz());
        if m == 0 {
            return if u.nnz() == v.nnz() { 1.0 } else { 0.0 };
        }
        u.intersection_size(v) as f64 / m as f64
    }

    fn name(&self) -> &'static str {
        "overlap"
    }
}

/// Raw dot product (not normalized to `[0,1]`; useful on pre-normalized
/// collections where it coincides with cosine but skips two divisions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DotProduct;

impl Similarity for DotProduct {
    #[inline]
    fn sim(&self, u: &SparseVector, v: &SparseVector) -> f64 {
        u.dot(v)
    }

    fn name(&self) -> &'static str {
        "dot"
    }
}

/// The angular collision kernel of Charikar's random-hyperplane (SimHash)
/// family: for one hash bit,
///
/// `P(h(u) = h(v)) = 1 − θ(u,v)/π`, with `θ = arccos(cos(u,v))`.
///
/// The paper's Definition 3 idealizes this to `P = sim` directly; the
/// difference matters when converting between similarities and collision
/// probabilities in the JU / LSH-S estimators, so both directions of the
/// mapping live here and are unit-tested against each other.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AngularKernel;

impl AngularKernel {
    /// Collision probability of one SimHash bit for a pair at cosine
    /// similarity `s ∈ [-1, 1]`.
    #[inline]
    pub fn collision_probability(self, s: f64) -> f64 {
        1.0 - s.clamp(-1.0, 1.0).acos() / std::f64::consts::PI
    }

    /// Inverse map: the cosine similarity at which one bit collides with
    /// probability `p ∈ [0, 1]`.
    #[inline]
    pub fn similarity_for_probability(self, p: f64) -> f64 {
        ((1.0 - p.clamp(0.0, 1.0)) * std::f64::consts::PI).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sv(entries: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_entries(entries.to_vec()).expect("valid test vector")
    }

    #[test]
    fn cosine_identical_vectors_is_one() {
        let v = sv(&[(0, 1.0), (3, 2.0)]);
        assert!((Cosine.sim(&v, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_orthogonal_vectors_is_zero() {
        let a = sv(&[(0, 1.0)]);
        let b = sv(&[(1, 1.0)]);
        assert_eq!(Cosine.sim(&a, &b), 0.0);
    }

    #[test]
    fn cosine_opposite_vectors_is_minus_one() {
        let a = sv(&[(0, 1.0)]);
        let b = sv(&[(0, -1.0)]);
        assert!((Cosine.sim(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        let a = SparseVector::empty();
        let b = sv(&[(0, 1.0)]);
        assert_eq!(Cosine.sim(&a, &b), 0.0);
        assert_eq!(Cosine.sim(&a, &a), 0.0);
    }

    #[test]
    fn cosine_known_value() {
        // (1,1) vs (1,0): cos = 1/√2.
        let a = sv(&[(0, 1.0), (1, 1.0)]);
        let b = sv(&[(0, 1.0)]);
        assert!((Cosine.sim(&a, &b) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn jaccard_known_values() {
        let a = sv(&[(1, 1.0), (2, 1.0), (3, 1.0)]);
        let b = sv(&[(2, 1.0), (3, 1.0), (4, 1.0)]);
        // |∩|=2, |∪|=4.
        assert!((Jaccard.sim(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(Jaccard.sim(&a, &a), 1.0);
        assert_eq!(
            Jaccard.sim(&SparseVector::empty(), &SparseVector::empty()),
            1.0
        );
        assert_eq!(Jaccard.sim(&a, &SparseVector::empty()), 0.0);
    }

    #[test]
    fn jaccard_ignores_weights() {
        let a = sv(&[(1, 5.0), (2, 0.1)]);
        let b = sv(&[(1, 1.0), (2, 9.0)]);
        assert_eq!(Jaccard.sim(&a, &b), 1.0);
    }

    #[test]
    fn overlap_known_values() {
        let a = sv(&[(1, 1.0), (2, 1.0)]);
        let b = sv(&[(2, 1.0), (3, 1.0), (4, 1.0)]);
        assert!((Overlap.sim(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(Overlap.sim(&a, &SparseVector::empty()), 0.0);
    }

    #[test]
    fn angular_kernel_fixed_points() {
        let k = AngularKernel;
        // Identical vectors: θ=0, p=1.
        assert!((k.collision_probability(1.0) - 1.0).abs() < 1e-12);
        // Orthogonal: θ=π/2, p=1/2.
        assert!((k.collision_probability(0.0) - 0.5).abs() < 1e-12);
        // Opposite: θ=π, p=0.
        assert!(k.collision_probability(-1.0).abs() < 1e-12);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Cosine.name(), "cosine");
        assert_eq!(Jaccard.name(), "jaccard");
        assert_eq!(Overlap.name(), "overlap");
        assert_eq!(DotProduct.name(), "dot");
    }

    proptest! {
        #[test]
        fn prop_cosine_in_unit_interval_for_nonneg(
            a in proptest::collection::vec((0u32..64, 0.01f32..10.0), 1..16),
            b in proptest::collection::vec((0u32..64, 0.01f32..10.0), 1..16),
        ) {
            let a = SparseVector::from_entries(a).unwrap();
            let b = SparseVector::from_entries(b).unwrap();
            let s = Cosine.sim(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s), "cosine {s} outside [0,1] for non-negative vectors");
        }

        #[test]
        fn prop_cosine_symmetric(
            a in proptest::collection::vec((0u32..64, -5.0f32..5.0), 0..16),
            b in proptest::collection::vec((0u32..64, -5.0f32..5.0), 0..16),
        ) {
            let a = SparseVector::from_entries(a).unwrap();
            let b = SparseVector::from_entries(b).unwrap();
            prop_assert!((Cosine.sim(&a, &b) - Cosine.sim(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn prop_jaccard_bounds_cosine_for_binary(
            members_a in proptest::collection::vec(0u32..48, 1..16),
            members_b in proptest::collection::vec(0u32..48, 1..16),
        ) {
            // For binary vectors, jaccard ≤ cosine (standard inequality:
            // |∩|/|∪| ≤ |∩|/√(|A||B|) since |∪| ≥ max ≥ √(|A||B|)).
            let a = SparseVector::binary_from_members(members_a);
            let b = SparseVector::binary_from_members(members_b);
            prop_assert!(Jaccard.sim(&a, &b) <= Cosine.sim(&a, &b) + 1e-12);
        }

        #[test]
        fn prop_angular_kernel_roundtrip(s in -1.0f64..1.0) {
            let k = AngularKernel;
            let p = k.collision_probability(s);
            prop_assert!((0.0..=1.0).contains(&p));
            let s2 = k.similarity_for_probability(p);
            prop_assert!((s - s2).abs() < 1e-9, "roundtrip {s} -> {p} -> {s2}");
        }

        #[test]
        fn prop_angular_kernel_monotone(s1 in -1.0f64..1.0, s2 in -1.0f64..1.0) {
            let k = AngularKernel;
            if s1 <= s2 {
                prop_assert!(k.collision_probability(s1) <= k.collision_probability(s2) + 1e-12);
            }
        }
    }
}
