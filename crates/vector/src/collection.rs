//! The vector database `V = {v1, ..., vn}`.

use crate::similarity::Similarity;
use crate::sparse::SparseVector;
use crate::{pairs_of, VectorId};

/// An ordered collection of sparse vectors — the join relation of the VSJ
/// problem. Vectors are addressed by dense [`VectorId`]s (`0..n`), which is
/// what the LSH buckets and all samplers store.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VectorCollection {
    vectors: Vec<SparseVector>,
}

impl VectorCollection {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a collection from existing vectors.
    pub fn from_vectors(vectors: Vec<SparseVector>) -> Self {
        Self { vectors }
    }

    /// Appends a vector, returning its id.
    pub fn push(&mut self, v: SparseVector) -> VectorId {
        let id = u32::try_from(self.vectors.len()).expect("collection exceeds u32 ids");
        self.vectors.push(v);
        id
    }

    /// Number of vectors `n = |V|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if the collection has no vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Total number of unordered pairs `M = C(n, 2)` — the denominator of
    /// every population-level estimate in the paper.
    #[inline]
    pub fn total_pairs(&self) -> u64 {
        pairs_of(self.vectors.len() as u64)
    }

    /// The vector with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range; ids come from this collection, so an
    /// out-of-range id is a logic error upstream, not a recoverable state.
    #[inline]
    pub fn vector(&self, id: VectorId) -> &SparseVector {
        &self.vectors[id as usize]
    }

    /// The underlying slice of vectors.
    #[inline]
    pub fn vectors(&self) -> &[SparseVector] {
        &self.vectors
    }

    /// Consumes the collection, yielding the owned vectors in id order
    /// (the zero-copy path into
    /// [`SharedVectorCollection`](crate::SharedVectorCollection)).
    pub fn into_vectors(self) -> Vec<SparseVector> {
        self.vectors
    }

    /// Iterates `(id, vector)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VectorId, &SparseVector)> {
        self.vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (i as VectorId, v))
    }

    /// Similarity between two members by id.
    #[inline]
    pub fn sim<S: Similarity>(&self, measure: &S, a: VectorId, b: VectorId) -> f64 {
        measure.sim(self.vector(a), self.vector(b))
    }

    /// Returns a copy with every vector scaled to unit norm. Cosine
    /// similarity is invariant under this; the prefix-filtering exact join
    /// requires it.
    pub fn normalized(&self) -> Self {
        Self {
            vectors: self.vectors.iter().map(SparseVector::normalized).collect(),
        }
    }

    /// Summary statistics (dimensionality, feature counts) — the numbers
    /// the paper reports for each dataset in Appendix C.1.
    pub fn stats(&self) -> CollectionStats {
        let mut stats = CollectionStats {
            n: self.vectors.len(),
            ..CollectionStats::default()
        };
        if self.vectors.is_empty() {
            return stats;
        }
        stats.min_nnz = usize::MAX;
        let mut total_nnz = 0usize;
        let mut all_binary = true;
        for v in &self.vectors {
            let nnz = v.nnz();
            total_nnz += nnz;
            stats.min_nnz = stats.min_nnz.min(nnz);
            stats.max_nnz = stats.max_nnz.max(nnz);
            stats.dimensionality = stats.dimensionality.max(v.dim_bound());
            all_binary &= v.is_binary();
        }
        stats.total_nnz = total_nnz;
        stats.avg_nnz = total_nnz as f64 / self.vectors.len() as f64;
        stats.is_binary = all_binary;
        stats
    }
}

impl FromIterator<SparseVector> for VectorCollection {
    fn from_iter<T: IntoIterator<Item = SparseVector>>(iter: T) -> Self {
        Self {
            vectors: iter.into_iter().collect(),
        }
    }
}

impl std::ops::Index<VectorId> for VectorCollection {
    type Output = SparseVector;

    fn index(&self, id: VectorId) -> &SparseVector {
        self.vector(id)
    }
}

/// Dataset summary statistics, mirroring the descriptions in Appendix C.1
/// of the paper (e.g. DBLP: "average number of features is 14, the smallest
/// is 3 and the biggest is 219").
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CollectionStats {
    /// Number of vectors `n`.
    pub n: usize,
    /// Upper bound on dimensionality (max index + 1).
    pub dimensionality: u32,
    /// Sum of nnz over all vectors.
    pub total_nnz: usize,
    /// Mean features per vector.
    pub avg_nnz: f64,
    /// Minimum features in any vector (0 for an empty collection).
    pub min_nnz: usize,
    /// Maximum features in any vector.
    pub max_nnz: usize,
    /// True when every weight is 1.0 (a set collection).
    pub is_binary: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::Cosine;

    fn sv(entries: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_entries(entries.to_vec()).expect("valid test vector")
    }

    fn sample_collection() -> VectorCollection {
        VectorCollection::from_vectors(vec![
            sv(&[(0, 1.0), (1, 1.0)]),
            sv(&[(0, 1.0)]),
            sv(&[(2, 2.0), (3, 2.0), (4, 2.0)]),
        ])
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let mut c = VectorCollection::new();
        assert_eq!(c.push(sv(&[(0, 1.0)])), 0);
        assert_eq!(c.push(sv(&[(1, 1.0)])), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn total_pairs_matches_formula() {
        let c = sample_collection();
        assert_eq!(c.total_pairs(), 3); // C(3,2)
        assert_eq!(VectorCollection::new().total_pairs(), 0);
    }

    #[test]
    fn sim_by_id() {
        let c = sample_collection();
        let s = c.sim(&Cosine, 0, 1);
        assert!((s - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn stats_reports_feature_counts() {
        let c = sample_collection();
        let st = c.stats();
        assert_eq!(st.n, 3);
        assert_eq!(st.min_nnz, 1);
        assert_eq!(st.max_nnz, 3);
        assert_eq!(st.total_nnz, 6);
        assert!((st.avg_nnz - 2.0).abs() < 1e-12);
        assert_eq!(st.dimensionality, 5);
        assert!(!st.is_binary); // third vector has weight 2.0
    }

    #[test]
    fn stats_detects_binary_collections() {
        let c = VectorCollection::from_vectors(vec![
            SparseVector::binary_from_members(vec![1, 2]),
            SparseVector::binary_from_members(vec![3]),
        ]);
        assert!(c.stats().is_binary);
    }

    #[test]
    fn stats_of_empty_collection() {
        let st = VectorCollection::new().stats();
        assert_eq!(st.n, 0);
        assert_eq!(st.min_nnz, 0);
        assert_eq!(st.max_nnz, 0);
    }

    #[test]
    fn normalized_preserves_cosine() {
        let c = sample_collection();
        let n = c.normalized();
        for a in 0..c.len() as u32 {
            for b in 0..c.len() as u32 {
                let s1 = c.sim(&Cosine, a, b);
                let s2 = n.sim(&Cosine, a, b);
                assert!((s1 - s2).abs() < 1e-5, "cosine changed by normalization");
            }
        }
        for (_, v) in n.iter() {
            assert!((v.norm() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn from_iterator_collects() {
        let c: VectorCollection = (0..4).map(|i| sv(&[(i, 1.0)])).collect();
        assert_eq!(c.len(), 4);
        assert_eq!(c[2].indices(), &[2]);
    }
}
