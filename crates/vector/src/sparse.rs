//! Immutable sparse vectors with sorted coordinates.
//!
//! The representation is the classic coordinate-sorted pair of parallel
//! arrays (`indices[i]` ↔ `values[i]`, strictly increasing indices). All
//! pairwise kernels (dot product, overlap) are linear merges over the two
//! sorted index arrays — the dominant inner loop of both the exact join and
//! the sampling estimators, so it is kept allocation-free and branch-light.

use std::fmt;

/// An immutable sparse vector: strictly increasing `u32` dimension indices
/// with `f32` weights.
///
/// Invariants (enforced by every constructor):
/// * `indices.len() == values.len()`
/// * `indices` strictly increasing (no duplicates)
/// * every value is finite and non-zero (explicit zeros are dropped —
///   a stored zero would silently distort norms cached downstream)
///
/// The L2 norm is precomputed at construction: cosine similarity
/// (`dot(u,v) / (‖u‖·‖v‖)`, §1 of the paper) is evaluated billions of times
/// by the exact-join ground truth, and recomputing norms would double its
/// cost.
#[derive(Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SparseVector {
    indices: Box<[u32]>,
    values: Box<[f32]>,
    norm: f64,
}

impl fmt::Debug for SparseVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SparseVector[")?;
        for (i, (ix, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{ix}:{v}")?;
        }
        write!(f, "] (‖·‖={:.4})", self.norm)
    }
}

/// Error returned by the checked [`SparseVector`] constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseVectorError {
    /// `indices` and `values` have different lengths.
    LengthMismatch {
        /// Number of indices supplied.
        indices: usize,
        /// Number of values supplied.
        values: usize,
    },
    /// Indices are not strictly increasing at the reported position.
    UnsortedIndices {
        /// Position in the index array where monotonicity broke.
        position: usize,
    },
    /// A weight is NaN or infinite at the reported position.
    NonFiniteValue {
        /// Position of the offending weight.
        position: usize,
    },
}

impl fmt::Display for SparseVectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LengthMismatch { indices, values } => write!(
                f,
                "index/value length mismatch: {indices} indices vs {values} values"
            ),
            Self::UnsortedIndices { position } => {
                write!(f, "indices not strictly increasing at position {position}")
            }
            Self::NonFiniteValue { position } => {
                write!(f, "non-finite value at position {position}")
            }
        }
    }
}

impl std::error::Error for SparseVectorError {}

impl SparseVector {
    /// Builds a vector from pre-sorted parallel arrays.
    ///
    /// # Errors
    /// Returns [`SparseVectorError`] if the invariants documented on the
    /// type do not hold. Zero values are permitted here and silently
    /// dropped.
    pub fn from_sorted(indices: Vec<u32>, values: Vec<f32>) -> Result<Self, SparseVectorError> {
        if indices.len() != values.len() {
            return Err(SparseVectorError::LengthMismatch {
                indices: indices.len(),
                values: values.len(),
            });
        }
        for (pos, w) in indices.windows(2).enumerate() {
            if w[0] >= w[1] {
                return Err(SparseVectorError::UnsortedIndices { position: pos + 1 });
            }
        }
        for (pos, &v) in values.iter().enumerate() {
            if !v.is_finite() {
                return Err(SparseVectorError::NonFiniteValue { position: pos });
            }
        }
        let (indices, values): (Vec<u32>, Vec<f32>) = indices
            .into_iter()
            .zip(values)
            .filter(|&(_, v)| v != 0.0)
            .unzip();
        Ok(Self::trusted(indices, values))
    }

    /// Builds a vector from arbitrary `(index, value)` entries: entries are
    /// sorted and weights on duplicate indices are summed (the natural
    /// semantics for bag-of-words accumulation).
    ///
    /// # Errors
    /// Returns [`SparseVectorError::NonFiniteValue`] if any accumulated
    /// weight is NaN/∞.
    pub fn from_entries(mut entries: Vec<(u32, f32)>) -> Result<Self, SparseVectorError> {
        entries.sort_unstable_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(entries.len());
        let mut values: Vec<f32> = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            match indices.last() {
                Some(&last) if last == i => {
                    *values.last_mut().expect("parallel arrays") += v;
                }
                _ => {
                    indices.push(i);
                    values.push(v);
                }
            }
        }
        for (pos, &v) in values.iter().enumerate() {
            if !v.is_finite() {
                return Err(SparseVectorError::NonFiniteValue { position: pos });
            }
        }
        let (indices, values): (Vec<u32>, Vec<f32>) = indices
            .into_iter()
            .zip(values)
            .filter(|&(_, v)| v != 0.0)
            .unzip();
        Ok(Self::trusted(indices, values))
    }

    /// Builds a binary vector (all weights 1.0) from set members.
    /// Duplicate members are collapsed: this is the paper's "set as a
    /// binary vector" representation (§1).
    pub fn binary_from_members(mut members: Vec<u32>) -> Self {
        members.sort_unstable();
        members.dedup();
        let values = vec![1.0f32; members.len()];
        Self::trusted(members, values)
    }

    /// Internal constructor for inputs already known to satisfy the
    /// invariants (sorted, deduplicated, finite, non-zero).
    fn trusted(indices: Vec<u32>, values: Vec<f32>) -> Self {
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(values.iter().all(|v| v.is_finite() && *v != 0.0));
        let norm = values
            .iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum::<f64>()
            .sqrt();
        Self {
            indices: indices.into_boxed_slice(),
            values: values.into_boxed_slice(),
            norm,
        }
    }

    /// The empty vector (zero in every dimension).
    pub fn empty() -> Self {
        Self::trusted(Vec::new(), Vec::new())
    }

    /// Number of stored (non-zero) coordinates — the paper's "number of
    /// features".
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// True if no coordinate is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Sorted dimension indices.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Weights parallel to [`Self::indices`].
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Precomputed L2 norm `‖u‖ = sqrt(Σ u[i]²)`.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm
    }

    /// Largest dimension index plus one, or 0 for the empty vector.
    #[inline]
    pub fn dim_bound(&self) -> u32 {
        self.indices.last().map_or(0, |&i| i + 1)
    }

    /// Maximum stored weight (0 for the empty vector). Used by the
    /// prefix-filtering exact join for its upper bounds.
    #[inline]
    pub fn max_value(&self) -> f32 {
        self.values.iter().copied().fold(0.0f32, f32::max)
    }

    /// Iterates `(index, value)` pairs in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Weight at `dim` (0 when absent), by binary search.
    pub fn get(&self, dim: u32) -> f32 {
        match self.indices.binary_search(&dim) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// True if every stored weight equals 1.0 — the binary-vector (set)
    /// special case for which the paper's SSJ baselines apply directly.
    pub fn is_binary(&self) -> bool {
        self.values.iter().all(|&v| v == 1.0)
    }

    /// Dot product `u·v = Σ u[i]·v[i]` via sorted-merge intersection,
    /// accumulated in `f64`.
    pub fn dot(&self, other: &Self) -> f64 {
        // Iterate over the shorter vector and gallop on the longer one when
        // the length ratio is extreme; plain merge otherwise. The plain
        // merge is the hot path for text vectors of comparable length.
        let (a, b) = if self.nnz() <= other.nnz() {
            (self, other)
        } else {
            (other, self)
        };
        if a.is_empty() {
            return 0.0;
        }
        if b.nnz() / a.nnz().max(1) >= 32 {
            return a.dot_galloping(b);
        }
        let mut acc = 0.0f64;
        let (ai, av) = (&a.indices, &a.values);
        let (bi, bv) = (&b.indices, &b.values);
        let (mut i, mut j) = (0usize, 0usize);
        while i < ai.len() && j < bi.len() {
            match ai[i].cmp(&bi[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += f64::from(av[i]) * f64::from(bv[j]);
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Dot product when `self` is much shorter than `other`: binary search
    /// each of `self`'s coordinates inside the (shrinking) tail of `other`.
    fn dot_galloping(&self, other: &Self) -> f64 {
        let mut acc = 0.0f64;
        let mut lo = 0usize;
        for (idx, val) in self.iter() {
            match other.indices[lo..].binary_search(&idx) {
                Ok(pos) => {
                    acc += f64::from(val) * f64::from(other.values[lo + pos]);
                    lo += pos + 1;
                }
                Err(pos) => lo += pos,
            }
            if lo >= other.indices.len() {
                break;
            }
        }
        acc
    }

    /// Size of the coordinate-set intersection `|u ∩ v|` (ignores weights).
    pub fn intersection_size(&self, other: &Self) -> usize {
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        let (ai, bi) = (&self.indices, &other.indices);
        while i < ai.len() && j < bi.len() {
            match ai[i].cmp(&bi[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Returns a copy scaled to unit L2 norm. The empty vector is returned
    /// unchanged (there is no direction to preserve).
    pub fn normalized(&self) -> Self {
        if self.norm == 0.0 {
            return self.clone();
        }
        let inv = 1.0 / self.norm;
        let values: Vec<f32> = self
            .values
            .iter()
            .map(|&v| (f64::from(v) * inv) as f32)
            .collect();
        // Renormalize exactly: rounding to f32 perturbs the norm slightly.
        Self::trusted(self.indices.to_vec(), values)
    }
}

/// Incremental builder accumulating `(dimension, weight)` entries, e.g. one
/// token at a time when vectorizing a document.
#[derive(Default, Debug, Clone)]
pub struct SparseVectorBuilder {
    entries: Vec<(u32, f32)>,
}

impl SparseVectorBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Adds `weight` to dimension `dim` (accumulates across calls).
    pub fn add(&mut self, dim: u32, weight: f32) -> &mut Self {
        self.entries.push((dim, weight));
        self
    }

    /// Number of raw entries added so far (before deduplication).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finishes the vector, summing duplicate dimensions.
    ///
    /// # Errors
    /// Propagates [`SparseVectorError::NonFiniteValue`] from accumulation.
    pub fn build(self) -> Result<SparseVector, SparseVectorError> {
        SparseVector::from_entries(self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sv(entries: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_entries(entries.to_vec()).expect("valid test vector")
    }

    #[test]
    fn from_sorted_accepts_valid_input() {
        let v = SparseVector::from_sorted(vec![1, 5, 9], vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(v.nnz(), 3);
        assert_eq!(v.indices(), &[1, 5, 9]);
        assert!((v.norm() - f64::sqrt(1.0 + 4.0 + 9.0)).abs() < 1e-12);
    }

    #[test]
    fn from_sorted_rejects_unsorted() {
        let err = SparseVector::from_sorted(vec![5, 1], vec![1.0, 2.0]).unwrap_err();
        assert_eq!(err, SparseVectorError::UnsortedIndices { position: 1 });
    }

    #[test]
    fn from_sorted_rejects_duplicates() {
        let err = SparseVector::from_sorted(vec![3, 3], vec![1.0, 2.0]).unwrap_err();
        assert_eq!(err, SparseVectorError::UnsortedIndices { position: 1 });
    }

    #[test]
    fn from_sorted_rejects_length_mismatch() {
        let err = SparseVector::from_sorted(vec![1, 2], vec![1.0]).unwrap_err();
        assert_eq!(
            err,
            SparseVectorError::LengthMismatch {
                indices: 2,
                values: 1
            }
        );
    }

    #[test]
    fn from_sorted_rejects_nan() {
        let err = SparseVector::from_sorted(vec![1], vec![f32::NAN]).unwrap_err();
        assert_eq!(err, SparseVectorError::NonFiniteValue { position: 0 });
    }

    #[test]
    fn zeros_are_dropped() {
        let v = SparseVector::from_sorted(vec![1, 2, 3], vec![1.0, 0.0, 2.0]).unwrap();
        assert_eq!(v.indices(), &[1, 3]);
        assert_eq!(v.values(), &[1.0, 2.0]);
    }

    #[test]
    fn from_entries_sorts_and_accumulates() {
        let v = sv(&[(7, 1.0), (2, 3.0), (7, 2.0)]);
        assert_eq!(v.indices(), &[2, 7]);
        assert_eq!(v.values(), &[3.0, 3.0]);
    }

    #[test]
    fn from_entries_cancellation_to_zero_drops_dimension() {
        let v = sv(&[(4, 1.5), (4, -1.5), (9, 2.0)]);
        assert_eq!(v.indices(), &[9]);
    }

    #[test]
    fn binary_from_members_dedups() {
        let v = SparseVector::binary_from_members(vec![9, 1, 9, 4]);
        assert_eq!(v.indices(), &[1, 4, 9]);
        assert!(v.is_binary());
        assert!((v.norm() - 3.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_vector_behaves() {
        let e = SparseVector::empty();
        assert!(e.is_empty());
        assert_eq!(e.norm(), 0.0);
        assert_eq!(e.dim_bound(), 0);
        assert_eq!(e.dot(&sv(&[(1, 1.0)])), 0.0);
        assert_eq!(e.normalized(), e);
    }

    #[test]
    fn dot_product_matches_dense_computation() {
        let a = sv(&[(0, 1.0), (2, 2.0), (5, -1.0)]);
        let b = sv(&[(1, 4.0), (2, 0.5), (5, 2.0)]);
        // Only dims 2 and 5 overlap: 2.0*0.5 + (-1.0)*2.0 = -1.0
        assert!((a.dot(&b) + 1.0).abs() < 1e-12);
        assert!((b.dot(&a) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn dot_galloping_matches_merge() {
        // Short probe vs long target triggers the galloping path (ratio ≥ 32).
        let short = sv(&[(10, 1.0), (500, 2.0), (999, 3.0)]);
        let long_entries: Vec<(u32, f32)> = (0..1000).map(|i| (i, (i % 7) as f32 + 1.0)).collect();
        let long = sv(&long_entries);
        let expected: f64 = short
            .iter()
            .map(|(i, v)| f64::from(v) * f64::from(long.get(i)))
            .sum();
        assert!((short.dot(&long) - expected).abs() < 1e-9);
        assert!((long.dot(&short) - expected).abs() < 1e-9);
    }

    #[test]
    fn intersection_size_counts_common_dims() {
        let a = sv(&[(1, 1.0), (2, 1.0), (3, 1.0)]);
        let b = sv(&[(2, 5.0), (3, 5.0), (4, 5.0)]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(b.intersection_size(&a), 2);
        assert_eq!(a.intersection_size(&SparseVector::empty()), 0);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let v = sv(&[(0, 3.0), (1, 4.0)]);
        let n = v.normalized();
        assert!((n.norm() - 1.0).abs() < 1e-6);
        // Direction preserved: 3-4-5 triangle.
        assert!((f64::from(n.get(0)) - 0.6).abs() < 1e-6);
        assert!((f64::from(n.get(1)) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn get_returns_zero_for_absent_dims() {
        let v = sv(&[(2, 7.0)]);
        assert_eq!(v.get(1), 0.0);
        assert_eq!(v.get(2), 7.0);
        assert_eq!(v.get(3), 0.0);
    }

    #[test]
    fn max_value_and_dim_bound() {
        let v = sv(&[(3, 0.5), (10, 2.5), (20, 1.0)]);
        assert_eq!(v.max_value(), 2.5);
        assert_eq!(v.dim_bound(), 21);
    }

    #[test]
    fn builder_accumulates() {
        let mut b = SparseVectorBuilder::with_capacity(4);
        b.add(5, 1.0).add(5, 1.0).add(2, 3.0);
        assert_eq!(b.len(), 3);
        let v = b.build().unwrap();
        assert_eq!(v.get(5), 2.0);
        assert_eq!(v.get(2), 3.0);
    }

    #[test]
    fn debug_format_is_readable() {
        let v = sv(&[(1, 2.0)]);
        let s = format!("{v:?}");
        assert!(s.contains("1:2"), "{s}");
    }

    // ---- property tests ---------------------------------------------------

    fn arb_vector(max_dim: u32, max_nnz: usize) -> impl Strategy<Value = SparseVector> {
        proptest::collection::vec((0..max_dim, -10.0f32..10.0), 0..max_nnz)
            .prop_map(|entries| SparseVector::from_entries(entries).expect("finite entries"))
    }

    proptest! {
        #[test]
        fn prop_dot_is_symmetric(a in arb_vector(64, 24), b in arb_vector(64, 24)) {
            prop_assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-9);
        }

        #[test]
        fn prop_dot_with_self_is_norm_squared(a in arb_vector(64, 24)) {
            let d = a.dot(&a);
            prop_assert!((d - a.norm() * a.norm()).abs() < 1e-6 * (1.0 + d.abs()));
        }

        #[test]
        fn prop_cauchy_schwarz(a in arb_vector(64, 24), b in arb_vector(64, 24)) {
            prop_assert!(a.dot(&b).abs() <= a.norm() * b.norm() + 1e-9);
        }

        #[test]
        fn prop_entries_roundtrip_sorted(a in arb_vector(128, 32)) {
            let rebuilt = SparseVector::from_sorted(a.indices().to_vec(), a.values().to_vec())
                .expect("vector invariants hold");
            prop_assert_eq!(a, rebuilt);
        }

        #[test]
        fn prop_normalized_is_unit_or_empty(a in arb_vector(64, 24)) {
            let n = a.normalized();
            if a.norm() > 0.0 {
                prop_assert!((n.norm() - 1.0).abs() < 1e-5);
            } else {
                prop_assert!(n.is_empty());
            }
        }

        #[test]
        fn prop_intersection_bounded_by_nnz(a in arb_vector(64, 24), b in arb_vector(64, 24)) {
            let i = a.intersection_size(&b);
            prop_assert!(i <= a.nnz().min(b.nnz()));
        }
    }
}
