//! Adaptive sampling (Lipton, Naughton & Schneider, SIGMOD 1990).
//!
//! Reference \[15\] of the paper. The idea: instead of fixing the *sample*
//! size, fix the *answer* size — keep drawing until `δ` positive samples
//! have been seen (then the scaled estimate is reliable; Theorems 2.1/2.2
//! of \[15\]) or until a sample budget `m_L` is exhausted (then no guarantee
//! is possible).
//!
//! The paper's twist (§5.1.2) is what happens on budget exhaustion:
//! instead of the loose upper bound of \[15\], `SampleL` returns the raw
//! positive count as a **safe lower bound** (`Ĵ_L = n_L ≤ J_L` always), or
//! optionally a *dampened* scale-up `c_s · n_L · (N_L / m_L)` trading the
//! safety for less underestimation (Theorem 2 quantifies the trade).
//!
//! This module implements the generic loop over an arbitrary Bernoulli
//! oracle; the estimator crate instantiates it with "draw a pair from
//! stratum L, test `sim ≥ τ`".

/// Outcome of an adaptive sampling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdaptiveOutcome {
    /// The answer-size threshold `δ` was reached after `samples` draws:
    /// the scaled estimate `positives * population / samples` carries the
    /// guarantees of Lipton et al.
    Scaled {
        /// Estimated number of positives in the population.
        estimate: f64,
        /// Positive draws observed (= δ).
        positives: u64,
        /// Total draws consumed.
        samples: u64,
    },
    /// The sample budget ran out with fewer than `δ` positives. The
    /// reliable statement is only `J ≥ positives`.
    Exhausted {
        /// Positive draws observed (< δ).
        positives: u64,
        /// Total draws consumed (= the budget).
        samples: u64,
    },
}

impl AdaptiveOutcome {
    /// The paper's conservative reading (Algorithm 1 line 10/12): scaled
    /// estimate when reliable, otherwise the safe lower bound `n_L`.
    pub fn safe_estimate(&self) -> f64 {
        match *self {
            Self::Scaled { estimate, .. } => estimate,
            Self::Exhausted { positives, .. } => positives as f64,
        }
    }

    /// The dampened reading (Algorithm 1 line 10 comment): on exhaustion,
    /// scale up by the full factor `population/samples` multiplied by the
    /// dampening constant `0 < c_s ≤ 1`. `c_s = 1` recovers plain scaling;
    /// `c_s → 0` recovers the safe lower bound.
    pub fn dampened_estimate(&self, population: u64, cs: f64) -> f64 {
        match *self {
            Self::Scaled { estimate, .. } => estimate,
            Self::Exhausted { positives, samples } => {
                if samples == 0 {
                    return 0.0;
                }
                cs * positives as f64 * (population as f64 / samples as f64)
            }
        }
    }

    /// Positive draws regardless of outcome.
    pub fn positives(&self) -> u64 {
        match *self {
            Self::Scaled { positives, .. } | Self::Exhausted { positives, .. } => positives,
        }
    }

    /// Draws consumed regardless of outcome.
    pub fn samples(&self) -> u64 {
        match *self {
            Self::Scaled { samples, .. } | Self::Exhausted { samples, .. } => samples,
        }
    }

    /// True when the run ended by reaching `δ` (the guaranteed case).
    pub fn is_reliable(&self) -> bool {
        matches!(self, Self::Scaled { .. })
    }
}

/// The adaptive sampling loop: parameters `δ` (answer-size threshold) and
/// `m_L` (max samples), both in units of draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveSampler {
    /// Answer-size threshold `δ`: stop as soon as this many positives are
    /// seen. The paper uses `δ = log₂ n`.
    pub target_positives: u64,
    /// Sample budget `m_L`. The paper uses `m_L = n`.
    pub max_samples: u64,
}

impl AdaptiveSampler {
    /// Creates a sampler with the given `δ` and `m_L`.
    pub fn new(target_positives: u64, max_samples: u64) -> Self {
        Self {
            target_positives,
            max_samples,
        }
    }

    /// The paper's defaults for a database of `n` vectors:
    /// `δ = max(1, ⌈log₂ n⌉)`, `m_L = n`.
    pub fn paper_defaults(n: usize) -> Self {
        Self {
            target_positives: log2_ceil(n).max(1),
            max_samples: n as u64,
        }
    }

    /// Runs the loop against `population` total units, drawing from
    /// `oracle` (returns whether the draw was positive). Mirrors
    /// `SampleL` of Algorithm 1: `while n_L < δ and i < m_L`.
    pub fn run<F: FnMut() -> bool>(&self, population: u64, mut oracle: F) -> AdaptiveOutcome {
        let mut positives = 0u64;
        let mut samples = 0u64;
        while positives < self.target_positives && samples < self.max_samples {
            if oracle() {
                positives += 1;
            }
            samples += 1;
        }
        if positives >= self.target_positives && samples > 0 {
            AdaptiveOutcome::Scaled {
                estimate: positives as f64 * (population as f64 / samples as f64),
                positives,
                samples,
            }
        } else {
            AdaptiveOutcome::Exhausted { positives, samples }
        }
    }
}

/// `⌈log₂ n⌉` as used for the paper's `δ = log n` default (all logarithms
/// in the paper are base 2; returns 0 for n ≤ 1).
pub fn log2_ceil(n: usize) -> u64 {
    if n <= 1 {
        0
    } else {
        u64::from((usize::BITS - (n - 1).leading_zeros()).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, Xoshiro256};

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
        // DBLP-scale: log2(800_000) ≈ 19.6 -> 20.
        assert_eq!(log2_ceil(800_000), 20);
    }

    #[test]
    fn paper_defaults_shape() {
        let s = AdaptiveSampler::paper_defaults(34_000);
        assert_eq!(s.max_samples, 34_000);
        assert_eq!(s.target_positives, 16); // ceil(log2 34000) = 16
    }

    #[test]
    fn reaches_target_and_scales() {
        // Deterministic oracle: every 10th draw positive.
        let mut i = 0u64;
        let sampler = AdaptiveSampler::new(5, 1_000_000);
        let out = sampler.run(1_000_000, || {
            i += 1;
            i.is_multiple_of(10)
        });
        match out {
            AdaptiveOutcome::Scaled {
                estimate,
                positives,
                samples,
            } => {
                assert_eq!(positives, 5);
                assert_eq!(samples, 50);
                // 5/50 of 1M = 100k — matches the oracle's 10% rate.
                assert!((estimate - 100_000.0).abs() < 1e-9);
            }
            other => panic!("expected Scaled, got {other:?}"),
        }
        assert!(out.is_reliable());
        assert_eq!(out.safe_estimate(), 100_000.0);
    }

    #[test]
    fn exhaustion_returns_lower_bound() {
        // Oracle that never fires.
        let sampler = AdaptiveSampler::new(3, 100);
        let out = sampler.run(1_000_000, || false);
        assert_eq!(
            out,
            AdaptiveOutcome::Exhausted {
                positives: 0,
                samples: 100
            }
        );
        assert!(!out.is_reliable());
        assert_eq!(out.safe_estimate(), 0.0);
    }

    #[test]
    fn exhaustion_with_partial_positives() {
        // Example 1 of the paper: N_L = 1e6, one true pair, 10 samples.
        // If the true pair is not drawn: estimate 0; never 100_000.
        let sampler = AdaptiveSampler::new(10, 10);
        let mut calls = 0u64;
        let out = sampler.run(1_000_000, || {
            calls += 1;
            calls == 4 // exactly one positive among the ten draws
        });
        assert_eq!(out.positives(), 1);
        assert_eq!(out.samples(), 10);
        // Safe reading: 1. The catastrophic naive scale-up would be 100000.
        assert_eq!(out.safe_estimate(), 1.0);
        // Dampened with cs = 0.1: 0.1 * 1 * (1e6/10) = 10_000.
        assert!((out.dampened_estimate(1_000_000, 0.1) - 10_000.0).abs() < 1e-9);
        // cs = 1 recovers full scaling.
        assert!((out.dampened_estimate(1_000_000, 1.0) - 100_000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_budget_is_exhausted_empty() {
        let sampler = AdaptiveSampler::new(5, 0);
        let out = sampler.run(100, || panic!("oracle must not be called"));
        assert_eq!(
            out,
            AdaptiveOutcome::Exhausted {
                positives: 0,
                samples: 0
            }
        );
        assert_eq!(out.dampened_estimate(100, 0.5), 0.0);
    }

    #[test]
    fn zero_target_scales_immediately_nonsense_guard() {
        // δ = 0 means "no evidence required" — the loop must not divide by
        // zero; it reports Exhausted with zero samples instead of Scaled.
        let sampler = AdaptiveSampler::new(0, 10);
        let out = sampler.run(100, || true);
        assert!(!out.is_reliable());
    }

    #[test]
    fn stochastic_oracle_estimate_converges() {
        // True rate 2%: with δ=256 the scaled estimate has relative σ
        // ≈ 1/√256 ≈ 6%, so 25% is >4σ — essentially every run should land.
        let mut ok = 0;
        for seed in 0..20 {
            let mut rng = Xoshiro256::seeded(seed);
            let sampler = AdaptiveSampler::new(256, 1_000_000);
            let population = 500_000u64;
            let out = sampler.run(population, || rng.bernoulli(0.02));
            let truth = 0.02 * population as f64;
            if (out.safe_estimate() - truth).abs() / truth < 0.25 {
                ok += 1;
            }
        }
        assert!(ok >= 19, "only {ok}/20 runs within 25%");
    }

    #[test]
    fn expected_samples_tracks_inverse_rate() {
        // E[samples to δ positives] = δ/p; check within 20%.
        let mut rng = Xoshiro256::seeded(99);
        let sampler = AdaptiveSampler::new(100, u64::MAX);
        let p = 0.05;
        let out = sampler.run(1, || rng.bernoulli(p));
        let expected = 100.0 / p;
        let got = out.samples() as f64;
        assert!(
            (got - expected).abs() / expected < 0.2,
            "samples {got} vs expected {expected}"
        );
    }
}
