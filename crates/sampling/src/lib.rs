//! Deterministic sampling substrate for the `vsj` workspace.
//!
//! Every estimator in the paper is a sampling procedure; this crate owns
//! the shared machinery:
//!
//! * [`rng`] — seedable, fully deterministic PRNGs ([`SplitMix64`],
//!   [`Xoshiro256`]) and the counter-based hashing used to derive SimHash
//!   hyperplanes and MinHash permutations without materializing them.
//! * [`gauss`] — standard-normal sampling (Box–Muller), both streaming and
//!   counter-based.
//! * [`alias`] — Walker/Vose alias tables for O(1) weighted sampling; used
//!   by `SampleH` of Algorithm 1 to draw buckets with weight `C(b_j, 2)`.
//! * [`pairs`] — uniform sampling of unordered vector pairs and the
//!   pair ⟷ linear-index bijection.
//! * [`adaptive`] — the adaptive sampling loop of Lipton, Naughton &
//!   Schneider (SIGMOD 1990, \[15\] in the paper), used by `SampleL`.
//! * [`stats`] — streaming summaries (Welford), relative-error metrics
//!   matching the paper's evaluation protocol (§6.1).
//! * [`bounds`] — the Chernoff/Chebyshev constants from the paper's
//!   Theorems 1–3 (sample-size calculators used by defaults and tests).
//!
//! The library deliberately does **not** use the `rand` crate at runtime:
//! experiments must be reproducible bit-for-bit across platforms and crate
//! upgrades, so the generators are implemented here against their published
//! reference algorithms (and cross-checked in tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod alias;
pub mod bounds;
pub mod gauss;
pub mod pairs;
pub mod rng;
pub mod stats;

pub use adaptive::{AdaptiveOutcome, AdaptiveSampler};
pub use alias::AliasTable;
pub use pairs::{decode_pair, encode_pair, pair_count, sample_distinct_pair};
pub use rng::{Rng, RngStreams, SplitMix64, Xoshiro256};
pub use stats::{signed_relative_error, ErrorProfile, Summary};
